//! # trapezoid-quorum — facade crate
//!
//! One-stop re-export of the workspace implementing Relaza, Jorda &
//! M'zoughi, *Trapezoid Quorum Protocol Dedicated to Erasure Resilient
//! Coding Based Schemes* (IPDPSW 2015):
//!
//! | layer | crate | re-exported as |
//! |---|---|---|
//! | GF(2⁸) arithmetic | `tq-gf256` | [`gf256`] |
//! | (n, k) MDS codes + delta updates | `tq-erasure` | [`erasure`] |
//! | quorum systems + availability analysis | `tq-quorum` | [`quorum`] |
//! | simulated storage substrate | `tq-cluster` | [`cluster`] |
//! | TRAP-ERC / TRAP-FR protocols | `tq-trapezoid` | [`protocol`] |
//! | Monte-Carlo + figure regeneration | `tq-sim` | [`sim`] |
//!
//! The most common types are also lifted to the crate root — above all
//! the unified store API ([`Store`], [`QuorumStore`], [`BlockAddr`]),
//! which is how new code should construct and drive the protocols. See
//! the `examples/` directory for end-to-end walkthroughs:
//!
//! * `quickstart` — build a store, write, batch-write, lose a node,
//!   still read.
//! * `virtual_disk` — the paper's motivating scenario: a VM disk image
//!   with strict consistency over erasure-coded storage.
//! * `availability_study` — regenerate the Fig. 3 comparison at the
//!   terminal, analytic vs simulated.
//! * `failure_injection` — scripted fail-stop scenarios showing exactly
//!   when writes fail and how reads survive via decode.
//! * `node_replacement` — rebuild a replaced node under live traffic.

// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub use tq_cluster as cluster;
pub use tq_erasure as erasure;
pub use tq_gf256 as gf256;
pub use tq_quorum as quorum;
pub use tq_sim as sim;
pub use tq_trapezoid as protocol;

pub use tq_cluster::{
    AppendLogBackend, Cluster, FaultInjector, FsyncPolicy, LocalTransport, MemoryBackend,
    NetworkModel, SimFault, SimTransport, StorageBackend, TcpNodeServer, TcpTransport,
};
pub use tq_erasure::{CodeParams, ReedSolomon};
pub use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
pub use tq_trapezoid::{
    BatchReads, BatchWrite, BatchWrites, BlockAddr, OpReport, ProtocolConfig, ProtocolError,
    QuorumStore, ShardMap, ShardedStore, Store, StoreBuilder, StoreInfo, StripeLockManager,
    TrapErcClient, TrapFrClient, Volume, VolumeConfig, VolumeError,
};
