//! Differential backend equivalence: every kernel tier this machine can
//! run must produce byte-identical output to the scalar reference, for
//! every kernel, across all block lengths 0..=257 (covering empty
//! blocks, sub-register tails, and multi-strip bodies for the 8/16/32/64
//! byte inner loops) and across misaligned sub-slices (SIMD loads are
//! unaligned by construction; these tests pin that down).
//!
//! The CI `kernel-matrix` job additionally re-runs this whole suite —
//! and the erasure-codec suite above it — under each `TQ_GF256_FORCE`
//! value, so the *dispatched* entry points in `slice_ops` get the same
//! coverage tier by tier.

use proptest::prelude::*;
use tq_gf256::simd::Backend;
use tq_gf256::slice_ops;
use tq_gf256::Gf256;

/// Deterministic, position-dependent filler that hits all byte values.
fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// The constants worth pinning: the special-cased 0 and 1, the generator
/// 2, a high-bit value, and a spread of "ordinary" field elements.
const COEFFS: [u8; 8] = [0, 1, 2, 3, 0x1D, 0x53, 0x8E, 0xFF];

/// Runs `check` for every backend available on this machine, with the
/// backend name in panic messages.
fn for_each_backend(check: impl Fn(Backend)) {
    let available = Backend::available();
    assert!(
        available.contains(&Backend::Scalar) && available.contains(&Backend::Swar),
        "portable tiers must always be available"
    );
    for backend in available {
        check(backend);
    }
}

#[test]
fn mul_add_slice_matches_scalar_for_all_lengths() {
    for_each_backend(|backend| {
        for len in 0..=257usize {
            let src = pattern(len, 1);
            for c in COEFFS {
                let mut expect = pattern(len, 2);
                let mut got = expect.clone();
                Backend::Scalar.mul_add_slice(Gf256(c), &src, &mut expect);
                backend.mul_add_slice(Gf256(c), &src, &mut got);
                assert_eq!(got, expect, "{backend:?} len={len} c={c:#04x}");
            }
        }
    });
}

#[test]
fn mul_slice_matches_scalar_for_all_lengths() {
    for_each_backend(|backend| {
        for len in 0..=257usize {
            let src = pattern(len, 3);
            for c in COEFFS {
                let mut expect = vec![0xA5u8; len];
                let mut got = vec![0x5Au8; len];
                Backend::Scalar.mul_slice(Gf256(c), &src, &mut expect);
                backend.mul_slice(Gf256(c), &src, &mut got);
                assert_eq!(got, expect, "{backend:?} len={len} c={c:#04x}");
            }
        }
    });
}

#[test]
fn mul_assign_scalar_matches_scalar_for_all_lengths() {
    for_each_backend(|backend| {
        for len in 0..=257usize {
            for c in COEFFS {
                let mut expect = pattern(len, 4);
                let mut got = expect.clone();
                Backend::Scalar.mul_assign_scalar(&mut expect, Gf256(c));
                backend.mul_assign_scalar(&mut got, Gf256(c));
                assert_eq!(got, expect, "{backend:?} len={len} c={c:#04x}");
            }
        }
    });
}

#[test]
fn add_assign_matches_scalar_for_all_lengths() {
    for_each_backend(|backend| {
        for len in 0..=257usize {
            let src = pattern(len, 5);
            let mut expect = pattern(len, 6);
            let mut got = expect.clone();
            Backend::Scalar.add_assign(&mut expect, &src);
            backend.add_assign(&mut got, &src);
            assert_eq!(got, expect, "{backend:?} len={len}");
        }
    });
}

#[test]
fn misaligned_sub_slices_match_scalar() {
    // SIMD kernels must not assume any alignment: run every kernel on
    // sub-slices starting at offsets 1..=7 of an aligned allocation, for
    // lengths that leave every possible tail.
    for_each_backend(|backend| {
        let backing_src = pattern(300, 7);
        for offset in 1..=7usize {
            for len in [0usize, 1, 15, 16, 17, 31, 32, 63, 64, 65, 255] {
                let src = &backing_src[offset..offset + len];
                for c in [2u8, 0x53, 0xFF] {
                    let mut expect_backing = pattern(300, 8);
                    let mut got_backing = expect_backing.clone();
                    Backend::Scalar.mul_add_slice(
                        Gf256(c),
                        src,
                        &mut expect_backing[offset..offset + len],
                    );
                    backend.mul_add_slice(Gf256(c), src, &mut got_backing[offset..offset + len]);
                    // The write must also stay inside the sub-slice.
                    assert_eq!(
                        got_backing, expect_backing,
                        "{backend:?} offset={offset} len={len} c={c:#04x}"
                    );
                }
            }
        }
    });
}

#[test]
fn mul_add_multi_matches_scalar_for_all_lengths_and_widths() {
    for_each_backend(|backend| {
        for len in 0..=257usize {
            // Width 0 (empty combination) through 5 blocks.
            for width in [0usize, 1, 3, 5] {
                let blocks: Vec<Vec<u8>> =
                    (0..width).map(|j| pattern(len, 10 + j as u64)).collect();
                let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
                let coeffs: Vec<Gf256> = (0..width)
                    .map(|j| Gf256(COEFFS[j % COEFFS.len()]))
                    .collect();
                let mut expect = pattern(len, 20);
                let mut got = expect.clone();
                Backend::Scalar.mul_add_multi(&coeffs, &refs, &mut expect);
                backend.mul_add_multi(&coeffs, &refs, &mut got);
                assert_eq!(got, expect, "{backend:?} len={len} width={width}");
            }
        }
    });
}

#[test]
fn dispatched_slice_ops_match_the_scalar_backend() {
    // Whatever `active()` resolved to in this process (including a
    // TQ_GF256_FORCE override from the CI kernel matrix), the public
    // slice_ops entry points must agree with the scalar reference.
    let src = pattern(257, 30);
    for c in COEFFS {
        let mut expect = pattern(257, 31);
        let mut got = expect.clone();
        Backend::Scalar.mul_add_slice(Gf256(c), &src, &mut expect);
        slice_ops::mul_add_slice(Gf256(c), &src, &mut got);
        assert_eq!(got, expect, "dispatched mul_add_slice c={c:#04x}");

        let mut expect = vec![0u8; 257];
        let mut got = vec![0u8; 257];
        Backend::Scalar.mul_slice(Gf256(c), &src, &mut expect);
        slice_ops::mul_slice(Gf256(c), &src, &mut got);
        assert_eq!(got, expect, "dispatched mul_slice c={c:#04x}");
    }
    let blocks: Vec<Vec<u8>> = (0..4).map(|j| pattern(257, 40 + j)).collect();
    let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
    let coeffs = [Gf256(3), Gf256(0x53), Gf256(1), Gf256(0)];
    let mut expect = vec![0u8; 257];
    let mut got = vec![0u8; 257];
    for (&c, &b) in coeffs.iter().zip(&refs) {
        Backend::Scalar.mul_add_slice(c, b, &mut expect);
    }
    slice_ops::linear_combination(&coeffs, &refs, &mut got);
    assert_eq!(got, expect, "dispatched linear_combination");
}

// ---------------------------------------------------------------------
// Detection-tier expectations, cfg-gated per architecture.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[test]
fn detection_picks_the_expected_x86_tier() {
    let best = Backend::detect();
    if std::arch::is_x86_feature_detected!("avx2") {
        assert_eq!(best, Backend::Avx2, "AVX2 machines must pick avx2");
    } else if std::arch::is_x86_feature_detected!("ssse3") {
        assert_eq!(best, Backend::Ssse3, "SSSE3-only machines must pick ssse3");
    } else {
        assert_eq!(best, Backend::Swar, "pre-SSSE3 machines fall back to swar");
    }
}

#[cfg(target_arch = "aarch64")]
#[test]
fn detection_picks_neon_on_aarch64() {
    assert_eq!(Backend::detect(), Backend::Neon);
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[test]
fn detection_falls_back_to_swar_on_other_arches() {
    assert_eq!(Backend::detect(), Backend::Swar);
}

#[test]
fn active_backend_honours_a_force_override() {
    // `active()` is cached process-wide; when the kernel-matrix job sets
    // TQ_GF256_FORCE this asserts the override took effect, and without
    // the variable it asserts detection picked the best available tier.
    match std::env::var("TQ_GF256_FORCE").ok().as_deref() {
        Some("scalar") => assert_eq!(tq_gf256::simd::active(), Backend::Scalar),
        Some("swar") => assert_eq!(tq_gf256::simd::active(), Backend::Swar),
        Some("simd") | None => assert_eq!(tq_gf256::simd::active(), Backend::detect()),
        Some(other) => {
            let tier = Backend::ALL
                .into_iter()
                .find(|b| b.name() == other)
                .unwrap_or_else(|| panic!("unknown TQ_GF256_FORCE={other:?} in test env"));
            assert_eq!(tq_gf256::simd::active(), tier);
        }
    }
}

// ---------------------------------------------------------------------
// Property-based equivalence over random lengths, offsets and contents.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn prop_mul_add_slice_equivalent_across_backends(
        c in any::<u8>(),
        seed in any::<u64>(),
        len in 0usize..300,
        offset in 0usize..8,
    ) {
        let src_backing = pattern(len + offset, seed);
        let src = &src_backing[offset..];
        let dst_seed = seed.wrapping_add(1);
        for backend in Backend::available() {
            let mut expect = pattern(len, dst_seed);
            let mut got = expect.clone();
            Backend::Scalar.mul_add_slice(Gf256(c), src, &mut expect);
            backend.mul_add_slice(Gf256(c), src, &mut got);
            prop_assert_eq!(&got, &expect, "{:?}", backend);
        }
    }

    #[test]
    fn prop_mul_add_multi_equivalent_across_backends(
        seed in any::<u64>(),
        len in 0usize..300,
        width in 0usize..8,
        coeff_seed in any::<u64>(),
    ) {
        let blocks: Vec<Vec<u8>> = (0..width)
            .map(|j| pattern(len, seed.wrapping_add(j as u64)))
            .collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let coeffs: Vec<Gf256> = (0..width)
            .map(|j| Gf256((coeff_seed.rotate_left(8 * j as u32) & 0xFF) as u8))
            .collect();
        for backend in Backend::available() {
            let mut expect = pattern(len, seed.wrapping_add(99));
            let mut got = expect.clone();
            Backend::Scalar.mul_add_multi(&coeffs, &refs, &mut expect);
            backend.mul_add_multi(&coeffs, &refs, &mut got);
            prop_assert_eq!(&got, &expect, "{:?}", backend);
        }
    }
}
