//! The [`Gf256`] element type: GF(2⁸) with operator overloading.

// Clippy flags `^` inside Add/Sub impls as suspicious; in GF(2^8) XOR *is*
// field addition (and subtraction), so the operators are exactly right.
#![allow(clippy::suspicious_arithmetic_impl)]
#![allow(clippy::suspicious_op_assign_impl)]

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables;

/// An element of GF(2⁸) over the polynomial `0x11D`.
///
/// `Gf256` is a transparent wrapper over `u8`; it exists so the type system
/// distinguishes *field elements* (coding coefficients, matrix entries)
/// from *raw bytes* (block payloads). The bulk kernels in
/// [`crate::slice_ops`] deliberately work on `u8` slices instead — payloads
/// stay `[u8]`, coefficients become `Gf256`.
///
/// Addition and subtraction are both XOR (characteristic 2); the additive
/// inverse of any element is itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator α = 2 of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// `true` iff this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on [`Gf256::ZERO`] — zero has no inverse.
    #[inline]
    pub const fn inv(self) -> Self {
        Gf256(tables::inv(self.0))
    }

    /// Checked multiplicative inverse (`None` for zero).
    #[inline]
    pub const fn checked_inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.inv())
        }
    }

    /// Exponentiation `self^e`, with the conventions `x^0 = 1`, `0^e = 0`
    /// for `e > 0`.
    #[inline]
    pub const fn pow(self, e: u32) -> Self {
        Gf256(tables::pow(self.0, e))
    }

    /// `α^e` — the `e`-th power of the group generator.
    #[inline]
    pub const fn alpha_pow(e: u32) -> Self {
        Gf256(tables::pow(2, e))
    }

    /// Discrete logarithm base α. `None` for zero.
    #[inline]
    pub const fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(tables::LOG[self.0 as usize])
        }
    }

    /// Iterator over all 256 field elements, in byte order.
    pub fn all() -> impl Iterator<Item = Gf256> {
        (0u16..256).map(|v| Gf256(v as u8))
    }

    /// Iterator over the 255 non-zero elements, in byte order.
    pub fn all_nonzero() -> impl Iterator<Item = Gf256> {
        (1u16..256).map(|v| Gf256(v as u8))
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(v: Gf256) -> Self {
        v.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        // -x = x in characteristic 2.
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::mul(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        self.0 = tables::mul(self.0, rhs.0);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::div(self.0, rhs.0))
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        self.0 = tables::div(self.0, rhs.0);
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Gf256> for Gf256 {
    fn sum<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().sum()
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |acc, x| acc * x)
    }
}

impl<'a> Product<&'a Gf256> for Gf256 {
    fn product<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert!(Gf256::ZERO.is_zero());
        assert_eq!(Gf256::ONE * Gf256::ONE, Gf256::ONE);
        assert_eq!(Gf256::GENERATOR.log(), Some(1));
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in Gf256::all() {
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
            assert_eq!(a - a, Gf256::ZERO);
        }
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Gf256(3), Gf256(7), Gf256(11)];
        let s: Gf256 = xs.iter().sum();
        assert_eq!(s, Gf256(3 ^ 7 ^ 11));
        let p: Gf256 = xs.iter().product();
        assert_eq!(p, Gf256(3) * Gf256(7) * Gf256(11));
    }

    #[test]
    fn checked_inv() {
        assert_eq!(Gf256::ZERO.checked_inv(), None);
        for a in Gf256::all_nonzero() {
            assert_eq!(a.checked_inv().unwrap() * a, Gf256::ONE);
        }
    }

    #[test]
    fn alpha_pow_cycles() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(1), Gf256::GENERATOR);
        // all powers distinct within one period
        let mut seen = std::collections::HashSet::new();
        for e in 0..255 {
            assert!(seen.insert(Gf256::alpha_pow(e)));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Gf256(0xAB)), "ab");
        assert_eq!(format!("{:?}", Gf256(0x0F)), "Gf256(0x0f)");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn gf() -> impl Strategy<Value = Gf256> {
            any::<u8>().prop_map(Gf256)
        }

        proptest! {
            #[test]
            fn addition_commutative(a in gf(), b in gf()) {
                prop_assert_eq!(a + b, b + a);
            }

            #[test]
            fn addition_associative(a in gf(), b in gf(), c in gf()) {
                prop_assert_eq!((a + b) + c, a + (b + c));
            }

            #[test]
            fn multiplication_commutative(a in gf(), b in gf()) {
                prop_assert_eq!(a * b, b * a);
            }

            #[test]
            fn multiplication_associative(a in gf(), b in gf(), c in gf()) {
                prop_assert_eq!((a * b) * c, a * (b * c));
            }

            #[test]
            fn distributivity(a in gf(), b in gf(), c in gf()) {
                prop_assert_eq!(a * (b + c), a * b + a * c);
            }

            #[test]
            fn additive_identity(a in gf()) {
                prop_assert_eq!(a + Gf256::ZERO, a);
            }

            #[test]
            fn multiplicative_identity(a in gf()) {
                prop_assert_eq!(a * Gf256::ONE, a);
            }

            #[test]
            fn division_inverts_multiplication(a in gf(), b in gf()) {
                prop_assume!(!b.is_zero());
                prop_assert_eq!(a * b / b, a);
            }

            #[test]
            fn pow_adds_exponents(a in gf(), e1 in 0u32..512, e2 in 0u32..512) {
                prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
            }
        }
    }
}
