//! Bulk GF(2⁸) kernels over byte slices.
//!
//! Storage blocks are `[u8]`, and both erasure encoding (eq. 1 of the paper)
//! and the trapezoid write algorithm's delta update
//! (`b_j ← b_j + α_{j,i}·(x − c)`, Algorithm 1 line 27) reduce to three
//! primitive kernels applied across whole blocks:
//!
//! * [`add_assign`] — `dst ^= src` (field addition/subtraction per byte);
//! * [`mul_assign_scalar`] / [`mul_slice`] — multiply a block by a constant;
//! * [`mul_add_slice`] — fused `dst ^= c · src`, the single hottest kernel:
//!   one call per (parity block × data block) pair during encode and one
//!   call per parity block during a delta update;
//! * [`mul_add_multi`] / [`linear_combination`] — a whole parity block's
//!   linear combination in one fused, register-blocked pass.
//!
//! Every kernel dispatches through [`crate::simd`]: split-nibble
//! `pshufb`/`vqtbl1q_u8` SIMD where the CPU has it, a portable u64 SWAR
//! ladder otherwise, with the scalar `MUL[c]` table walk kept as the
//! differential reference (and forcible via `TQ_GF256_FORCE=scalar`).
//! The backend is detected once per process; see [`crate::simd::active`].

use crate::field::Gf256;
use crate::simd;

/// `dst[i] ^= src[i]` for all `i` — field addition of two blocks.
///
/// # Panics
/// Panics if `dst.len() != src.len()`; blocks in one stripe must agree.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "add_assign: block length mismatch ({} vs {})",
        dst.len(),
        src.len()
    );
    simd::active().add_assign(dst, src);
}

/// Element-wise field subtraction; identical to [`add_assign`] in
/// characteristic 2, provided so call sites can mirror the paper's
/// `(x − chunk)` notation literally.
#[inline]
pub fn sub_assign(dst: &mut [u8], src: &[u8]) {
    add_assign(dst, src);
}

/// Multiply every byte of `data` by the constant `c`, in place.
#[inline]
pub fn mul_assign_scalar(data: &mut [u8], c: Gf256) {
    simd::active().mul_assign_scalar(data, c);
}

/// `dst[i] = c · src[i]` — out-of-place constant multiply.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_slice: block length mismatch ({} vs {})",
        dst.len(),
        src.len()
    );
    simd::active().mul_slice(c, src, dst);
}

/// Fused multiply-add: `dst[i] ^= c · src[i]`.
///
/// This is the inner loop of systematic RS encoding (one call per
/// coefficient of the generator matrix) and of the paper's in-place parity
/// delta update.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn mul_add_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_add_slice: block length mismatch ({} vs {})",
        dst.len(),
        src.len()
    );
    simd::active().mul_add_slice(c, src, dst);
}

/// Fused multi-block multiply-add:
/// `dst[i] ^= Σ_j coeffs[j] · blocks[j][i]`.
///
/// One parity block's entire linear combination in a single pass — the
/// SIMD backends keep the accumulator strip in registers across every
/// coefficient, so each output byte is loaded and stored exactly once
/// however many blocks feed it. This is the kernel under
/// `ReedSolomon::encode_into`, `reconstruct` and `decode_block`.
///
/// # Panics
/// Panics if `coeffs.len() != blocks.len()` or any block length differs
/// from `dst`.
pub fn mul_add_multi(coeffs: &[Gf256], blocks: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        blocks.len(),
        "mul_add_multi: {} coefficients for {} blocks",
        coeffs.len(),
        blocks.len()
    );
    for block in blocks {
        assert_eq!(
            block.len(),
            dst.len(),
            "mul_add_multi: block length mismatch ({} vs {})",
            block.len(),
            dst.len()
        );
    }
    simd::active().mul_add_multi(coeffs, blocks, dst);
}

/// Computes `out[i] = Σ_j coeffs[j] · blocks[j][i]` — a full linear
/// combination of blocks, e.g. one parity block from all data blocks.
///
/// `out` is cleared first.
///
/// # Panics
/// Panics if `coeffs.len() != blocks.len()` or any block length differs
/// from `out`.
pub fn linear_combination(coeffs: &[Gf256], blocks: &[&[u8]], out: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        blocks.len(),
        "linear_combination: {} coefficients for {} blocks",
        coeffs.len(),
        blocks.len()
    );
    out.fill(0);
    mul_add_multi(coeffs, blocks, out);
}

/// Dot product of two coefficient vectors: `Σ_i a[i]·b[i]`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(a: &[Gf256], b: &[Gf256]) -> Gf256 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter()
        .zip(b)
        .fold(Gf256::ZERO, |acc, (&x, &y)| acc + x * y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;

    fn mul_byte(a: u8, b: u8) -> u8 {
        tables::mul(a, b)
    }

    #[test]
    fn add_assign_is_xor() {
        let mut dst = vec![0x00, 0xFF, 0xAA, 0x55];
        let src = vec![0xFF, 0xFF, 0x0F, 0xF0];
        add_assign(&mut dst, &src);
        assert_eq!(dst, vec![0xFF, 0x00, 0xA5, 0xA5]);
    }

    #[test]
    fn add_assign_self_cancels() {
        let orig: Vec<u8> = (0..=255).collect();
        let mut dst = orig.clone();
        let src = orig.clone();
        add_assign(&mut dst, &src);
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn mul_slice_special_cases() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0xEE; 256];
        mul_slice(Gf256::ZERO, &src, &mut dst);
        assert!(dst.iter().all(|&b| b == 0));
        mul_slice(Gf256::ONE, &src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0u8; 256];
        for c in [2u8, 3, 0x1D, 0x8E, 0xFF] {
            mul_slice(Gf256(c), &src, &mut dst);
            for (i, &d) in dst.iter().enumerate() {
                assert_eq!(d, mul_byte(c, src[i]));
            }
        }
    }

    #[test]
    fn mul_assign_scalar_matches_mul_slice() {
        let src: Vec<u8> = (0..=255).rev().collect();
        for c in [0u8, 1, 2, 0x53, 0xCA] {
            let mut a = src.clone();
            let mut b = vec![0u8; src.len()];
            mul_assign_scalar(&mut a, Gf256(c));
            mul_slice(Gf256(c), &src, &mut b);
            assert_eq!(a, b, "c = {c:#x}");
        }
    }

    #[test]
    fn mul_add_slice_accumulates() {
        let src = vec![5u8, 6, 7];
        let mut dst = vec![1u8, 2, 3];
        mul_add_slice(Gf256(4), &src, &mut dst);
        for i in 0..3 {
            assert_eq!(dst[i], [1u8, 2, 3][i] ^ mul_byte(4, src[i]));
        }
    }

    #[test]
    fn linear_combination_two_blocks() {
        let b0 = vec![1u8, 2, 3, 4];
        let b1 = vec![9u8, 8, 7, 6];
        let coeffs = [Gf256(3), Gf256(5)];
        let mut out = vec![0u8; 4];
        linear_combination(&coeffs, &[&b0, &b1], &mut out);
        for i in 0..4 {
            assert_eq!(out[i], mul_byte(3, b0[i]) ^ mul_byte(5, b1[i]));
        }
    }

    #[test]
    fn dot_product() {
        let a = [Gf256(1), Gf256(2), Gf256(3)];
        let b = [Gf256(4), Gf256(5), Gf256(6)];
        let expect = Gf256(4) + Gf256(2) * Gf256(5) + Gf256(3) * Gf256(6);
        assert_eq!(dot(&a, &b), expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = vec![0u8; 3];
        add_assign(&mut dst, &[1, 2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mul_add_distributes_over_blocks(
                c in any::<u8>(),
                src in proptest::collection::vec(any::<u8>(), 1..128),
            ) {
                // dst ^= c*src twice must cancel (characteristic 2).
                let mut dst = src.clone();
                let orig = dst.clone();
                mul_add_slice(Gf256(c), &src, &mut dst);
                mul_add_slice(Gf256(c), &src, &mut dst);
                prop_assert_eq!(dst, orig);
            }

            #[test]
            fn mul_slice_then_inverse_round_trips(
                c in 1u8..=255,
                src in proptest::collection::vec(any::<u8>(), 1..128),
            ) {
                let mut tmp = vec![0u8; src.len()];
                let mut back = vec![0u8; src.len()];
                mul_slice(Gf256(c), &src, &mut tmp);
                mul_slice(Gf256(c).inv(), &tmp, &mut back);
                prop_assert_eq!(back, src);
            }

            #[test]
            fn linear_combination_linear_in_each_block(
                c0 in any::<u8>(),
                c1 in any::<u8>(),
                len in 1usize..64,
                seed in any::<u64>(),
            ) {
                // lc([c0,c1],[x,y]) == lc([c0],[x]) + lc([c1],[y])
                let mut rng = seed;
                let mut next = || {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (rng >> 33) as u8
                };
                let x: Vec<u8> = (0..len).map(|_| next()).collect();
                let y: Vec<u8> = (0..len).map(|_| next()).collect();
                let mut both = vec![0u8; len];
                linear_combination(&[Gf256(c0), Gf256(c1)], &[&x, &y], &mut both);
                let mut separate = vec![0u8; len];
                let mut tmp = vec![0u8; len];
                linear_combination(&[Gf256(c0)], &[&x], &mut separate);
                linear_combination(&[Gf256(c1)], &[&y], &mut tmp);
                add_assign(&mut separate, &tmp);
                prop_assert_eq!(both, separate);
            }
        }
    }
}
