//! Dispatching GF(2⁸) kernel backends: split-nibble SIMD, portable SWAR,
//! and the scalar table-walk reference.
//!
//! Every bulk kernel in [`crate::slice_ops`] routes through one of the
//! [`Backend`]s here, chosen once per process by runtime feature
//! detection (overridable with the `TQ_GF256_FORCE` environment
//! variable):
//!
//! | backend  | arch        | inner loop                                   |
//! |----------|-------------|----------------------------------------------|
//! | `avx2`   | x86_64      | 2×32 B per iter, `vpshufb` split-nibble      |
//! | `ssse3`  | x86_64      | 16 B per iter, `pshufb` split-nibble         |
//! | `neon`   | aarch64     | 16 B per iter, `vqtbl1q_u8` split-nibble     |
//! | `swar`   | portable    | 32 B per iter, 4×u64 branch-free peasant     |
//! | `scalar` | portable    | 1 B per iter, L1-resident `MUL[c]` row walk  |
//!
//! The SIMD paths evaluate `c·b = LO[c][b & 0xF] ⊕ HI[c][b >> 4]`
//! (see [`crate::tables::MUL_LO`]) with one 16-lane table shuffle per
//! nibble, the classic split-nibble construction of Plank et al.'s
//! *Screaming Fast Galois Field Arithmetic*. On top of the per-slice
//! kernels, [`Backend::mul_add_multi`] fuses a whole linear combination
//! — all generator coefficients feeding one parity block — into a single
//! pass that keeps the accumulator strip in registers, so encode,
//! decode and reconstruct write each output byte exactly once.
//!
//! # Forcing a backend
//!
//! `TQ_GF256_FORCE` accepts `scalar`, `swar` and `simd` (the best SIMD
//! tier the machine supports, falling back to `swar` where there is
//! none), plus the explicit tier names `ssse3`, `avx2` and `neon` for
//! targeted differential testing. Forcing a tier the CPU lacks panics —
//! silently falling back would defeat the point of forcing. The
//! variable is read once; the choice is cached for the process.
//!
//! # Safety
//!
//! This is the only module in the crate that uses `unsafe` (the crate
//! root denies it elsewhere): the `#[target_feature]` kernels and their
//! raw-pointer strip loops. Soundness rests on one invariant, enforced
//! by the private `Backend::assert_runnable` at every public entry point: a SIMD
//! backend is only ever *executed* on a CPU whose feature bit was
//! observed at runtime. All pointer arithmetic stays inside
//! `chunks_exact`-derived bounds.

#![allow(unsafe_code)]

use crate::field::Gf256;
use crate::tables::{MUL, MUL_HI, MUL_LO};
use std::sync::OnceLock;

/// How far the cache-blocked fallback of [`Backend::mul_add_multi`]
/// walks before revisiting the accumulator: half a typical L1d, so the
/// destination strip stays resident across all coefficients.
const MULTI_BLOCK: usize = 16 * 1024;

/// How many coefficients the fused SIMD kernels stage on the stack
/// before falling back to a heap table buffer. Covers every code shape
/// in the paper (k ≤ 10) with room to spare, keeping `mul_add_multi`
/// allocation-free on the encode/scrub hot path.
const MAX_FUSED_STACK: usize = 16;

/// One GF(2⁸) kernel implementation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// One byte at a time through the 256-byte `MUL[c]` row — the
    /// reference every other backend is differentially tested against.
    Scalar,
    /// SIMD-within-a-register: 32 bytes per step as 4 independent `u64`
    /// lanes, branch-free Russian-peasant multiply with packed per-byte
    /// reduction.
    Swar,
    /// x86_64 SSSE3 `pshufb` split-nibble, 16 bytes per step.
    Ssse3,
    /// x86_64 AVX2 `vpshufb` split-nibble, 64 bytes per step.
    Avx2,
    /// aarch64 NEON `vqtbl1q_u8` split-nibble, 16 bytes per step.
    Neon,
}

impl Backend {
    /// Every backend this build knows about, portable tiers first.
    pub const ALL: [Backend; 5] = [
        Backend::Scalar,
        Backend::Swar,
        Backend::Ssse3,
        Backend::Avx2,
        Backend::Neon,
    ];

    /// The backend's `TQ_GF256_FORCE` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Ssse3 => "ssse3",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// `true` iff this backend can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// The backends runnable on this machine, portable tiers first.
    pub fn available() -> Vec<Backend> {
        Backend::ALL
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    /// The fastest tier the current CPU supports, ignoring any override.
    pub fn detect() -> Backend {
        for candidate in [Backend::Avx2, Backend::Neon, Backend::Ssse3] {
            if candidate.is_available() {
                return candidate;
            }
        }
        Backend::Swar
    }

    /// Guards the unsafe kernels: executing a `#[target_feature]` body
    /// on a CPU without the feature is undefined behaviour, and
    /// `Backend` values are plain data anyone can construct.
    #[inline]
    fn assert_runnable(self) {
        assert!(
            self.is_available(),
            "GF(256) backend `{}` is not supported by this CPU",
            self.name()
        );
    }
}

/// Parses a `TQ_GF256_FORCE` value. `None` input means "no override".
///
/// # Panics
/// Panics on an unknown spelling or a tier the CPU cannot run — a
/// forced backend that silently degraded would invalidate whatever
/// experiment forced it.
fn select(force: Option<&str>) -> Backend {
    let Some(force) = force else {
        return Backend::detect();
    };
    let chosen = match force {
        "scalar" => Backend::Scalar,
        "swar" => Backend::Swar,
        // "simd" asks for the best tier; machines with no SIMD tier run
        // the widest portable kernel so the CI matrix passes anywhere.
        "simd" => Backend::detect(),
        "ssse3" => Backend::Ssse3,
        "avx2" => Backend::Avx2,
        "neon" => Backend::Neon,
        other => panic!(
            "TQ_GF256_FORCE={other:?} is not a GF(256) backend \
             (expected scalar|swar|simd|ssse3|avx2|neon)"
        ),
    };
    chosen.assert_runnable();
    chosen
}

/// The process-wide active backend: `TQ_GF256_FORCE` if set, otherwise
/// the best tier runtime detection finds. Resolved once and cached.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| select(std::env::var("TQ_GF256_FORCE").ok().as_deref()))
}

// ---------------------------------------------------------------------
// Public kernels: dispatch + shared special cases.
// ---------------------------------------------------------------------

impl Backend {
    /// `dst[i] ^= src[i]` — field addition of two equal-length blocks.
    ///
    /// # Panics
    /// Panics on length mismatch (hard assert: the kernels would
    /// otherwise silently truncate in release builds).
    pub fn add_assign(self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "add_assign: block length mismatch");
        self.assert_runnable();
        match self {
            // XOR needs no tables; the SWAR loop is what LLVM's
            // auto-vectoriser produces anyway, so every portable tier
            // shares it and the SIMD tiers use their native width.
            Backend::Scalar | Backend::Swar => xor_swar(dst, src),
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => unsafe { xor_ssse3(dst, src) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { xor_avx2(dst, src) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { xor_neon(dst, src) },
            #[allow(unreachable_patterns)]
            _ => unreachable!("assert_runnable rejected {self:?}"),
        }
    }

    /// `dst[i] = c · src[i]` — out-of-place constant multiply.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn mul_slice(self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_slice: block length mismatch");
        match c.value() {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            cv => {
                self.assert_runnable();
                match self {
                    Backend::Scalar => mul_slice_scalar(cv, src, dst),
                    Backend::Swar => mul_slice_swar(cv, src, dst),
                    #[cfg(target_arch = "x86_64")]
                    Backend::Ssse3 => unsafe { mul_slice_ssse3(cv, src, dst) },
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => unsafe { mul_slice_avx2(cv, src, dst) },
                    #[cfg(target_arch = "aarch64")]
                    Backend::Neon => unsafe { mul_slice_neon(cv, src, dst) },
                    #[allow(unreachable_patterns)]
                    _ => unreachable!("assert_runnable rejected {self:?}"),
                }
            }
        }
    }

    /// `data[i] = c · data[i]` — in-place constant multiply.
    pub fn mul_assign_scalar(self, data: &mut [u8], c: Gf256) {
        match c.value() {
            0 => data.fill(0),
            1 => {}
            cv => {
                self.assert_runnable();
                match self {
                    Backend::Scalar => mul_assign_scalar_ref(cv, data),
                    Backend::Swar => mul_assign_swar(cv, data),
                    #[cfg(target_arch = "x86_64")]
                    Backend::Ssse3 => unsafe { mul_assign_ssse3(cv, data) },
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => unsafe { mul_assign_avx2(cv, data) },
                    #[cfg(target_arch = "aarch64")]
                    Backend::Neon => unsafe { mul_assign_neon(cv, data) },
                    #[allow(unreachable_patterns)]
                    _ => unreachable!("assert_runnable rejected {self:?}"),
                }
            }
        }
    }

    /// `dst[i] ^= c · src[i]` — the fused multiply-add under encode and
    /// the delta update; the single hottest kernel in the system.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn mul_add_slice(self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_add_slice: block length mismatch");
        match c.value() {
            0 => {}
            1 => self.add_assign(dst, src),
            cv => {
                self.assert_runnable();
                match self {
                    Backend::Scalar => mul_add_slice_scalar(cv, src, dst),
                    Backend::Swar => mul_add_slice_swar(cv, src, dst),
                    #[cfg(target_arch = "x86_64")]
                    Backend::Ssse3 => unsafe { mul_add_slice_ssse3(cv, src, dst) },
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => unsafe { mul_add_slice_avx2(cv, src, dst) },
                    #[cfg(target_arch = "aarch64")]
                    Backend::Neon => unsafe { mul_add_slice_neon(cv, src, dst) },
                    #[allow(unreachable_patterns)]
                    _ => unreachable!("assert_runnable rejected {self:?}"),
                }
            }
        }
    }

    /// Fused multi-block multiply-add:
    /// `dst[i] ^= Σ_j coeffs[j] · blocks[j][i]`.
    ///
    /// One parity block's entire linear combination in a single pass:
    /// the SIMD tiers hold the accumulator strip in registers across
    /// all coefficients (each output byte is written exactly once), the
    /// portable tiers cache-block so the destination stays in L1 while
    /// every source block streams over it.
    ///
    /// # Panics
    /// Panics on any shape mismatch. These are real asserts, not debug
    /// ones: the SIMD kernels walk `blocks` by raw offsets derived from
    /// `dst.len()`, so an undersized block must fail loudly rather than
    /// read out of bounds.
    pub fn mul_add_multi(self, coeffs: &[Gf256], blocks: &[&[u8]], dst: &mut [u8]) {
        assert_eq!(
            coeffs.len(),
            blocks.len(),
            "mul_add_multi: {} coefficients for {} blocks",
            coeffs.len(),
            blocks.len()
        );
        assert!(
            blocks.iter().all(|b| b.len() == dst.len()),
            "mul_add_multi: block length mismatch"
        );
        self.assert_runnable();
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { mul_add_multi_avx2(coeffs, blocks, dst) },
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => unsafe { mul_add_multi_ssse3(coeffs, blocks, dst) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { mul_add_multi_neon(coeffs, blocks, dst) },
            _ => {
                // Cache-blocked fallback: revisit dst in L1-sized strips.
                let len = dst.len();
                let mut start = 0;
                while start < len {
                    let end = (start + MULTI_BLOCK).min(len);
                    for (&c, block) in coeffs.iter().zip(blocks) {
                        self.mul_add_slice(c, &block[start..end], &mut dst[start..end]);
                    }
                    start = end;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scalar reference kernels (also the tail path of every SIMD kernel).
// ---------------------------------------------------------------------

#[inline]
fn mul_slice_scalar(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

#[inline]
fn mul_assign_scalar_ref(c: u8, data: &mut [u8]) {
    let row = &MUL[c as usize];
    for d in data.iter_mut() {
        *d = row[*d as usize];
    }
}

#[inline]
fn mul_add_slice_scalar(c: u8, src: &[u8], dst: &mut [u8]) {
    let row = &MUL[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

// ---------------------------------------------------------------------
// SWAR kernels: 8 bytes per step in a u64.
// ---------------------------------------------------------------------

/// Multiplies every byte packed in `word` by the constant `c`:
/// a branch-free Russian-peasant ladder where the per-byte carry of the
/// `×α` doubling is reduced by `0x1D` (the low byte of the field
/// polynomial) in all 8 lanes at once.
#[inline]
fn mul_word_swar(mut word: u64, c: u8) -> u64 {
    const MSB: u64 = 0x8080_8080_8080_8080;
    let mut prod = 0u64;
    let mut c = c;
    while c != 0 {
        // Branch-free: a zero bit contributes an all-zero mask.
        prod ^= word & (0u64.wrapping_sub((c & 1) as u64));
        let carries = (word & MSB) >> 7;
        word = ((word & !MSB) << 1) ^ (carries * 0x1D);
        c >>= 1;
    }
    prod
}

/// Four independent peasant ladders at once. The single-word ladder is
/// latency-bound (each doubling waits on the previous one, ~5 cycles × 8
/// steps for 8 bytes); four parallel chains give the out-of-order core
/// independent work per step and roughly quadruple SWAR throughput.
#[inline]
fn mul_words_swar(words: [u64; 4], c: u8) -> [u64; 4] {
    const MSB: u64 = 0x8080_8080_8080_8080;
    let mut w = words;
    let mut prod = [0u64; 4];
    let mut c = c;
    while c != 0 {
        let keep = 0u64.wrapping_sub((c & 1) as u64);
        let mut i = 0;
        while i < 4 {
            prod[i] ^= w[i] & keep;
            let carries = (w[i] & MSB) >> 7;
            w[i] = ((w[i] & !MSB) << 1) ^ (carries * 0x1D);
            i += 1;
        }
        c >>= 1;
    }
    prod
}

/// Splits a 32-byte chunk into its four little-endian u64 lanes.
#[inline]
fn load_words(chunk: &[u8]) -> [u64; 4] {
    [
        u64::from_le_bytes(chunk[0..8].try_into().expect("8-byte lane")),
        u64::from_le_bytes(chunk[8..16].try_into().expect("8-byte lane")),
        u64::from_le_bytes(chunk[16..24].try_into().expect("8-byte lane")),
        u64::from_le_bytes(chunk[24..32].try_into().expect("8-byte lane")),
    ]
}

#[inline]
fn store_words(chunk: &mut [u8], words: [u64; 4]) {
    chunk[0..8].copy_from_slice(&words[0].to_le_bytes());
    chunk[8..16].copy_from_slice(&words[1].to_le_bytes());
    chunk[16..24].copy_from_slice(&words[2].to_le_bytes());
    chunk[24..32].copy_from_slice(&words[3].to_le_bytes());
}

#[inline]
fn xor_swar(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes(dc.try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(sc.try_into().expect("8-byte chunk"));
        dc.copy_from_slice(&w.to_le_bytes());
    }
    for (dc, sc) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dc ^= *sc;
    }
}

#[inline]
fn mul_slice_swar(c: u8, src: &[u8], dst: &mut [u8]) {
    let mut d = dst.chunks_exact_mut(32);
    let mut s = src.chunks_exact(32);
    for (dc, sc) in (&mut d).zip(&mut s) {
        store_words(dc, mul_words_swar(load_words(sc), c));
    }
    let (dt, st) = (d.into_remainder(), s.remainder());
    let mut d = dt.chunks_exact_mut(8);
    let mut s = st.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = mul_word_swar(u64::from_le_bytes(sc.try_into().expect("8-byte chunk")), c);
        dc.copy_from_slice(&w.to_le_bytes());
    }
    mul_slice_scalar(c, s.remainder(), d.into_remainder());
}

#[inline]
fn mul_assign_swar(c: u8, data: &mut [u8]) {
    let mut d = data.chunks_exact_mut(32);
    for dc in &mut d {
        store_words(dc, mul_words_swar(load_words(dc), c));
    }
    let dt = d.into_remainder();
    let mut d = dt.chunks_exact_mut(8);
    for dc in &mut d {
        let w = mul_word_swar(
            u64::from_le_bytes((&*dc).try_into().expect("8-byte chunk")),
            c,
        );
        dc.copy_from_slice(&w.to_le_bytes());
    }
    mul_assign_scalar_ref(c, d.into_remainder());
}

#[inline]
fn mul_add_slice_swar(c: u8, src: &[u8], dst: &mut [u8]) {
    let mut d = dst.chunks_exact_mut(32);
    let mut s = src.chunks_exact(32);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let prod = mul_words_swar(load_words(sc), c);
        let acc = load_words(dc);
        store_words(
            dc,
            [
                acc[0] ^ prod[0],
                acc[1] ^ prod[1],
                acc[2] ^ prod[2],
                acc[3] ^ prod[3],
            ],
        );
    }
    let (dt, st) = (d.into_remainder(), s.remainder());
    let mut d = dt.chunks_exact_mut(8);
    let mut s = st.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_le_bytes((&*dc).try_into().expect("8-byte chunk"))
            ^ mul_word_swar(u64::from_le_bytes(sc.try_into().expect("8-byte chunk")), c);
        dc.copy_from_slice(&w.to_le_bytes());
    }
    mul_add_slice_scalar(c, s.remainder(), d.into_remainder());
}

// ---------------------------------------------------------------------
// x86_64 kernels: SSSE3 (16 B) and AVX2 (64 B) split-nibble shuffles.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Loads the two 16-entry nibble tables for constant `c`.
    ///
    /// # Safety
    /// Caller must have verified SSSE3 (the tables are plain loads, but
    /// callers immediately shuffle with them).
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn tables_128(c: u8) -> (__m128i, __m128i) {
        (
            _mm_loadu_si128(MUL_LO[c as usize].as_ptr() as *const __m128i),
            _mm_loadu_si128(MUL_HI[c as usize].as_ptr() as *const __m128i),
        )
    }

    /// `c · v` for 16 packed bytes via two nibble shuffles.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_128(lo: __m128i, hi: __m128i, v: __m128i) -> __m128i {
        let mask = _mm_set1_epi8(0x0F);
        let lo_prod = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
        let hi_prod = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64::<4>(v), mask));
        _mm_xor_si128(lo_prod, hi_prod)
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn xor_ssse3(dst: &mut [u8], src: &[u8]) {
        let mut d = dst.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = _mm_xor_si128(
                _mm_loadu_si128(dc.as_ptr() as *const __m128i),
                _mm_loadu_si128(sc.as_ptr() as *const __m128i),
            );
            _mm_storeu_si128(dc.as_mut_ptr() as *mut __m128i, v);
        }
        xor_swar(d.into_remainder(), s.remainder());
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_slice_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables_128(c);
        let mut d = dst.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = mul_128(lo, hi, _mm_loadu_si128(sc.as_ptr() as *const __m128i));
            _mm_storeu_si128(dc.as_mut_ptr() as *mut __m128i, v);
        }
        mul_slice_scalar(c, s.remainder(), d.into_remainder());
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_assign_ssse3(c: u8, data: &mut [u8]) {
        let (lo, hi) = tables_128(c);
        let mut d = data.chunks_exact_mut(16);
        for dc in &mut d {
            let v = mul_128(lo, hi, _mm_loadu_si128(dc.as_ptr() as *const __m128i));
            _mm_storeu_si128(dc.as_mut_ptr() as *mut __m128i, v);
        }
        mul_assign_scalar_ref(c, d.into_remainder());
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_add_slice_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables_128(c);
        let mut d = dst.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let prod = mul_128(lo, hi, _mm_loadu_si128(sc.as_ptr() as *const __m128i));
            let acc = _mm_xor_si128(_mm_loadu_si128(dc.as_ptr() as *const __m128i), prod);
            _mm_storeu_si128(dc.as_mut_ptr() as *mut __m128i, acc);
        }
        mul_add_slice_scalar(c, s.remainder(), d.into_remainder());
    }

    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_add_multi_ssse3(coeffs: &[Gf256], blocks: &[&[u8]], dst: &mut [u8]) {
        // Table pairs staged once per call — on the stack for every
        // realistic stripe width, so the encode/scrub hot path does not
        // allocate per parity block. 32-byte strips then keep two
        // independent accumulators in registers across every coefficient.
        let zero = _mm_setzero_si128();
        let mut stack = [(zero, zero); MAX_FUSED_STACK];
        let heap: Vec<(__m128i, __m128i)>;
        let tables: &[(__m128i, __m128i)] = if coeffs.len() <= MAX_FUSED_STACK {
            for (slot, c) in stack.iter_mut().zip(coeffs) {
                *slot = tables_128(c.value());
            }
            &stack[..coeffs.len()]
        } else {
            heap = coeffs.iter().map(|c| tables_128(c.value())).collect();
            &heap
        };
        let len = dst.len();
        let strips = len / 32;
        for strip in 0..strips {
            let off = strip * 32;
            let mut acc0 = _mm_loadu_si128(dst.as_ptr().add(off) as *const __m128i);
            let mut acc1 = _mm_loadu_si128(dst.as_ptr().add(off + 16) as *const __m128i);
            for (block, &(lo, hi)) in blocks.iter().zip(tables) {
                let v0 = _mm_loadu_si128(block.as_ptr().add(off) as *const __m128i);
                let v1 = _mm_loadu_si128(block.as_ptr().add(off + 16) as *const __m128i);
                acc0 = _mm_xor_si128(acc0, mul_128(lo, hi, v0));
                acc1 = _mm_xor_si128(acc1, mul_128(lo, hi, v1));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(off) as *mut __m128i, acc0);
            _mm_storeu_si128(dst.as_mut_ptr().add(off + 16) as *mut __m128i, acc1);
        }
        let mut tail = strips * 32;
        if len - tail >= 16 {
            let off = tail;
            let mut acc = _mm_loadu_si128(dst.as_ptr().add(off) as *const __m128i);
            for (block, &(lo, hi)) in blocks.iter().zip(tables) {
                let v = _mm_loadu_si128(block.as_ptr().add(off) as *const __m128i);
                acc = _mm_xor_si128(acc, mul_128(lo, hi, v));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(off) as *mut __m128i, acc);
            tail += 16;
        }
        for (&c, block) in coeffs.iter().zip(blocks) {
            mul_add_slice_scalar(c.value(), &block[tail..], &mut dst[tail..]);
        }
    }

    /// Loads the nibble tables for `c` broadcast to both 128-bit lanes.
    ///
    /// # Safety
    /// Caller must have verified AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tables_256(c: u8) -> (__m256i, __m256i) {
        let lo = _mm_loadu_si128(MUL_LO[c as usize].as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(MUL_HI[c as usize].as_ptr() as *const __m128i);
        (
            _mm256_broadcastsi128_si256(lo),
            _mm256_broadcastsi128_si256(hi),
        )
    }

    /// `c · v` for 32 packed bytes (`vpshufb` shuffles within each lane,
    /// which is exactly what the broadcast tables want).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul_256(lo: __m256i, hi: __m256i, v: __m256i) -> __m256i {
        let mask = _mm256_set1_epi8(0x0F);
        let lo_prod = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
        let hi_prod = _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask));
        _mm256_xor_si256(lo_prod, hi_prod)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_avx2(dst: &mut [u8], src: &[u8]) {
        let mut d = dst.chunks_exact_mut(32);
        let mut s = src.chunks_exact(32);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = _mm256_xor_si256(
                _mm256_loadu_si256(dc.as_ptr() as *const __m256i),
                _mm256_loadu_si256(sc.as_ptr() as *const __m256i),
            );
            _mm256_storeu_si256(dc.as_mut_ptr() as *mut __m256i, v);
        }
        xor_swar(d.into_remainder(), s.remainder());
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_slice_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables_256(c);
        let mut d = dst.chunks_exact_mut(32);
        let mut s = src.chunks_exact(32);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = mul_256(lo, hi, _mm256_loadu_si256(sc.as_ptr() as *const __m256i));
            _mm256_storeu_si256(dc.as_mut_ptr() as *mut __m256i, v);
        }
        mul_slice_scalar(c, s.remainder(), d.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_assign_avx2(c: u8, data: &mut [u8]) {
        let (lo, hi) = tables_256(c);
        let mut d = data.chunks_exact_mut(32);
        for dc in &mut d {
            let v = mul_256(lo, hi, _mm256_loadu_si256(dc.as_ptr() as *const __m256i));
            _mm256_storeu_si256(dc.as_mut_ptr() as *mut __m256i, v);
        }
        mul_assign_scalar_ref(c, d.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_add_slice_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables_256(c);
        // 64 bytes per iteration: two independent 32-byte streams hide
        // the shuffle latency behind each other.
        let mut d = dst.chunks_exact_mut(64);
        let mut s = src.chunks_exact(64);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v0 = _mm256_loadu_si256(sc.as_ptr() as *const __m256i);
            let v1 = _mm256_loadu_si256(sc.as_ptr().add(32) as *const __m256i);
            let a0 = _mm256_loadu_si256(dc.as_ptr() as *const __m256i);
            let a1 = _mm256_loadu_si256(dc.as_ptr().add(32) as *const __m256i);
            let r0 = _mm256_xor_si256(a0, mul_256(lo, hi, v0));
            let r1 = _mm256_xor_si256(a1, mul_256(lo, hi, v1));
            _mm256_storeu_si256(dc.as_mut_ptr() as *mut __m256i, r0);
            _mm256_storeu_si256(dc.as_mut_ptr().add(32) as *mut __m256i, r1);
        }
        mul_add_slice_ssse3(c, s.remainder(), d.into_remainder());
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_add_multi_avx2(coeffs: &[Gf256], blocks: &[&[u8]], dst: &mut [u8]) {
        // Stack-staged table pairs, like the SSSE3 twin.
        let zero = _mm256_setzero_si256();
        let mut stack = [(zero, zero); MAX_FUSED_STACK];
        let heap: Vec<(__m256i, __m256i)>;
        let tables: &[(__m256i, __m256i)] = if coeffs.len() <= MAX_FUSED_STACK {
            for (slot, c) in stack.iter_mut().zip(coeffs) {
                *slot = tables_256(c.value());
            }
            &stack[..coeffs.len()]
        } else {
            heap = coeffs.iter().map(|c| tables_256(c.value())).collect();
            &heap
        };
        let len = dst.len();
        // 64-byte strips: two accumulators amortise the per-strip table
        // traffic and give each coefficient's shuffles a second
        // independent stream to overlap with.
        let strips = len / 64;
        for strip in 0..strips {
            let off = strip * 64;
            let mut acc0 = _mm256_loadu_si256(dst.as_ptr().add(off) as *const __m256i);
            let mut acc1 = _mm256_loadu_si256(dst.as_ptr().add(off + 32) as *const __m256i);
            for (block, &(lo, hi)) in blocks.iter().zip(tables) {
                let v0 = _mm256_loadu_si256(block.as_ptr().add(off) as *const __m256i);
                let v1 = _mm256_loadu_si256(block.as_ptr().add(off + 32) as *const __m256i);
                acc0 = _mm256_xor_si256(acc0, mul_256(lo, hi, v0));
                acc1 = _mm256_xor_si256(acc1, mul_256(lo, hi, v1));
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(off) as *mut __m256i, acc0);
            _mm256_storeu_si256(dst.as_mut_ptr().add(off + 32) as *mut __m256i, acc1);
        }
        let mut tail = strips * 64;
        if len - tail >= 32 {
            let off = tail;
            let mut acc = _mm256_loadu_si256(dst.as_ptr().add(off) as *const __m256i);
            for (block, &(lo, hi)) in blocks.iter().zip(tables) {
                let v = _mm256_loadu_si256(block.as_ptr().add(off) as *const __m256i);
                acc = _mm256_xor_si256(acc, mul_256(lo, hi, v));
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(off) as *mut __m256i, acc);
            tail += 32;
        }
        for (&c, block) in coeffs.iter().zip(blocks) {
            mul_add_slice_scalar(c.value(), &block[tail..], &mut dst[tail..]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{
    mul_add_multi_avx2, mul_add_multi_ssse3, mul_add_slice_avx2, mul_add_slice_ssse3,
    mul_assign_avx2, mul_assign_ssse3, mul_slice_avx2, mul_slice_ssse3, xor_avx2, xor_ssse3,
};

// ---------------------------------------------------------------------
// aarch64 kernels: NEON vqtbl1q_u8 split-nibble shuffles.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::*;
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller must have verified NEON.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn tables_neon(c: u8) -> (uint8x16_t, uint8x16_t) {
        (
            vld1q_u8(MUL_LO[c as usize].as_ptr()),
            vld1q_u8(MUL_HI[c as usize].as_ptr()),
        )
    }

    /// `c · v` for 16 packed bytes via two nibble table lookups.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn mul_neon(lo: uint8x16_t, hi: uint8x16_t, v: uint8x16_t) -> uint8x16_t {
        let mask = vdupq_n_u8(0x0F);
        let lo_prod = vqtbl1q_u8(lo, vandq_u8(v, mask));
        let hi_prod = vqtbl1q_u8(hi, vshrq_n_u8::<4>(v));
        veorq_u8(lo_prod, hi_prod)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn xor_neon(dst: &mut [u8], src: &[u8]) {
        let mut d = dst.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let v = veorq_u8(vld1q_u8(dc.as_ptr()), vld1q_u8(sc.as_ptr()));
            vst1q_u8(dc.as_mut_ptr(), v);
        }
        xor_swar(d.into_remainder(), s.remainder());
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_slice_neon(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables_neon(c);
        let mut d = dst.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dc, sc) in (&mut d).zip(&mut s) {
            vst1q_u8(dc.as_mut_ptr(), mul_neon(lo, hi, vld1q_u8(sc.as_ptr())));
        }
        mul_slice_scalar(c, s.remainder(), d.into_remainder());
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_assign_neon(c: u8, data: &mut [u8]) {
        let (lo, hi) = tables_neon(c);
        let mut d = data.chunks_exact_mut(16);
        for dc in &mut d {
            vst1q_u8(dc.as_mut_ptr(), mul_neon(lo, hi, vld1q_u8(dc.as_ptr())));
        }
        mul_assign_scalar_ref(c, d.into_remainder());
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_add_slice_neon(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables_neon(c);
        let mut d = dst.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let acc = veorq_u8(
                vld1q_u8(dc.as_ptr()),
                mul_neon(lo, hi, vld1q_u8(sc.as_ptr())),
            );
            vst1q_u8(dc.as_mut_ptr(), acc);
        }
        mul_add_slice_scalar(c, s.remainder(), d.into_remainder());
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mul_add_multi_neon(coeffs: &[Gf256], blocks: &[&[u8]], dst: &mut [u8]) {
        // Stack-staged table pairs, like the x86 twins.
        let zero = vdupq_n_u8(0);
        let mut stack = [(zero, zero); MAX_FUSED_STACK];
        let heap: Vec<(uint8x16_t, uint8x16_t)>;
        let tables: &[(uint8x16_t, uint8x16_t)] = if coeffs.len() <= MAX_FUSED_STACK {
            for (slot, c) in stack.iter_mut().zip(coeffs) {
                *slot = tables_neon(c.value());
            }
            &stack[..coeffs.len()]
        } else {
            heap = coeffs.iter().map(|c| tables_neon(c.value())).collect();
            &heap
        };
        let len = dst.len();
        // 32-byte strips: two accumulators per pass (see the AVX2 twin).
        let strips = len / 32;
        for strip in 0..strips {
            let off = strip * 32;
            let mut acc0 = vld1q_u8(dst.as_ptr().add(off));
            let mut acc1 = vld1q_u8(dst.as_ptr().add(off + 16));
            for (block, &(lo, hi)) in blocks.iter().zip(tables) {
                acc0 = veorq_u8(acc0, mul_neon(lo, hi, vld1q_u8(block.as_ptr().add(off))));
                acc1 = veorq_u8(
                    acc1,
                    mul_neon(lo, hi, vld1q_u8(block.as_ptr().add(off + 16))),
                );
            }
            vst1q_u8(dst.as_mut_ptr().add(off), acc0);
            vst1q_u8(dst.as_mut_ptr().add(off + 16), acc1);
        }
        let mut tail = strips * 32;
        if len - tail >= 16 {
            let off = tail;
            let mut acc = vld1q_u8(dst.as_ptr().add(off));
            for (block, &(lo, hi)) in blocks.iter().zip(tables) {
                acc = veorq_u8(acc, mul_neon(lo, hi, vld1q_u8(block.as_ptr().add(off))));
            }
            vst1q_u8(dst.as_mut_ptr().add(off), acc);
            tail += 16;
        }
        for (&c, block) in coeffs.iter().zip(blocks) {
            mul_add_slice_scalar(c.value(), &block[tail..], &mut dst[tail..]);
        }
    }
}

#[cfg(target_arch = "aarch64")]
use arm::{mul_add_multi_neon, mul_add_slice_neon, mul_assign_neon, mul_slice_neon, xor_neon};

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| {
                seed.wrapping_mul(31)
                    .wrapping_add((i as u8).wrapping_mul(97))
            })
            .collect()
    }

    #[test]
    fn nibble_tables_recompose_full_products() {
        for c in 0..=255u8 {
            for b in 0..=255u8 {
                let split =
                    MUL_LO[c as usize][(b & 0x0F) as usize] ^ MUL_HI[c as usize][(b >> 4) as usize];
                assert_eq!(split, MUL[c as usize][b as usize], "c={c} b={b}");
            }
        }
    }

    #[test]
    fn mul_word_swar_matches_table() {
        for c in [0u8, 1, 2, 3, 0x1D, 0x53, 0x8E, 0xFF] {
            let bytes: [u8; 8] = [0x00, 0x01, 0x7F, 0x80, 0xAA, 0xC3, 0xFE, 0xFF];
            let prod = mul_word_swar(u64::from_le_bytes(bytes), c).to_le_bytes();
            for (i, &b) in bytes.iter().enumerate() {
                assert_eq!(prod[i], MUL[c as usize][b as usize], "c={c} b={b}");
            }
        }
    }

    #[test]
    fn every_available_backend_matches_scalar() {
        // Full differential coverage (all lengths, misalignment, the
        // multi kernel) lives in tests/backend_equivalence.rs; this is
        // the in-crate smoke version.
        let src = pattern(257, 3);
        for backend in Backend::available() {
            for c in [0u8, 1, 2, 0x53, 0xFF] {
                let mut expect = pattern(257, 7);
                let mut got = expect.clone();
                Backend::Scalar.mul_add_slice(Gf256(c), &src, &mut expect);
                backend.mul_add_slice(Gf256(c), &src, &mut got);
                assert_eq!(got, expect, "{backend:?} c={c:#x}");
            }
        }
    }

    #[test]
    fn mul_add_multi_equals_repeated_mul_add() {
        let blocks: Vec<Vec<u8>> = (0..5).map(|i| pattern(1000, i as u8)).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let coeffs: Vec<Gf256> = [0u8, 1, 2, 0x53, 0xCA].iter().map(|&c| Gf256(c)).collect();
        for backend in Backend::available() {
            let mut expect = pattern(1000, 99);
            let mut got = expect.clone();
            for (&c, &b) in coeffs.iter().zip(&refs) {
                Backend::Scalar.mul_add_slice(c, b, &mut expect);
            }
            backend.mul_add_multi(&coeffs, &refs, &mut got);
            assert_eq!(got, expect, "{backend:?}");
        }
    }

    #[test]
    fn detect_prefers_the_widest_available_tier() {
        let best = Backend::detect();
        assert!(best.is_available());
        #[cfg(target_arch = "x86_64")]
        {
            if Backend::Avx2.is_available() {
                assert_eq!(best, Backend::Avx2);
            } else if Backend::Ssse3.is_available() {
                assert_eq!(best, Backend::Ssse3);
            } else {
                assert_eq!(best, Backend::Swar);
            }
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(best, Backend::Neon);
    }

    #[test]
    fn select_honours_every_force_value() {
        assert_eq!(select(Some("scalar")), Backend::Scalar);
        assert_eq!(select(Some("swar")), Backend::Swar);
        assert_eq!(select(Some("simd")), Backend::detect());
        assert_eq!(select(None), Backend::detect());
    }

    #[test]
    #[should_panic(expected = "not a GF(256) backend")]
    fn select_rejects_unknown_values() {
        let _ = select(Some("quantum"));
    }

    #[test]
    fn forcing_an_unavailable_tier_panics() {
        #[cfg(target_arch = "x86_64")]
        let foreign = "neon";
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = "avx2";
        let err = std::panic::catch_unwind(|| select(Some(foreign))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("not supported by this CPU"), "{msg}");
    }

    #[test]
    fn active_respects_the_env_override() {
        // `active()` caches process-wide, so this can only pin down the
        // consistency property: whatever it returned, it matches what
        // `select` derives from the *current* environment (the CI
        // kernel-matrix sets TQ_GF256_FORCE before spawning the test
        // process, so the variable cannot have changed since the cache
        // was filled).
        let expected = select(std::env::var("TQ_GF256_FORCE").ok().as_deref());
        assert_eq!(active(), expected);
    }
}
