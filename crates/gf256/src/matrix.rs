//! Dense matrices over GF(2⁸).
//!
//! The systematic (n, k) MDS generator used by `tq-erasure` is derived here:
//! a Vandermonde (or Cauchy) matrix is reduced so its top k×k block becomes
//! the identity; the remaining (n−k)×k block then holds exactly the
//! coefficients `α_{j,i}` of the paper's eq. 1. Decoding inverts the k×k
//! submatrix picked by whichever k blocks survived.
//!
//! Row-major storage, Gauss–Jordan elimination with partial "pivoting"
//! (any non-zero pivot works — there is no rounding in a finite field).

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::field::Gf256;

/// A dense row-major matrix over GF(2⁸).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

/// Error returned by [`Matrix::inverse`] when the matrix is singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular over GF(256)")
    }
}

impl std::error::Error for SingularMatrix {}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from nested slices of raw bytes (test convenience).
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "ragged rows in matrix literal"
        );
        Matrix::from_fn(rows.len(), cols, |r, c| Gf256(rows[r][c]))
    }

    /// `rows × cols` Vandermonde matrix: entry `(r, c) = α_r^c` where
    /// `α_r` is the r-th distinct non-zero evaluation point (`α^r` for the
    /// group generator α).
    ///
    /// Any k rows of an `n × k` Vandermonde matrix with distinct points are
    /// linearly independent, which is exactly the MDS property needed.
    ///
    /// # Panics
    /// Panics if `rows > 255` (not enough distinct non-zero points).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= 255,
            "GF(256) Vandermonde supports at most 255 rows, got {rows}"
        );
        Matrix::from_fn(rows, cols, |r, c| Gf256::alpha_pow(r as u32).pow(c as u32))
    }

    /// `rows × cols` Cauchy matrix: entry `(r, c) = 1 / (x_r + y_c)` with
    /// `x_r = r` and `y_c = rows + c` (all distinct, so every denominator is
    /// non-zero). Every square submatrix of a Cauchy matrix is invertible,
    /// making it directly usable as the parity block of an MDS generator.
    ///
    /// # Panics
    /// Panics if `rows + cols > 256` (point sets would collide).
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(
            rows + cols <= 256,
            "GF(256) Cauchy needs rows + cols <= 256, got {rows}+{cols}"
        );
        Matrix::from_fn(rows, cols, |r, c| {
            (Gf256(r as u8) + Gf256((rows + c) as u8)).inv()
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Gf256] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Gf256] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matrix product dimension mismatch: {}x{} times {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self[(r, i)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(i, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols`.
    pub fn mul_vec(&self, v: &[Gf256]) -> Vec<Gf256> {
        assert_eq!(v.len(), self.cols, "matrix-vector dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .fold(Gf256::ZERO, |acc, (&a, &x)| acc + a * x)
            })
            .collect()
    }

    /// Extracts the submatrix formed by the given rows (all columns).
    ///
    /// # Panics
    /// Panics if any index is out of bounds or `rows` is empty.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        assert!(!rows.is_empty(), "select_rows: empty selection");
        Matrix::from_fn(rows.len(), self.cols, |r, c| {
            assert!(rows[r] < self.rows, "row index {} out of bounds", rows[r]);
            self[(rows[r], c)]
        })
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn augment(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "augment: row count mismatch");
        Matrix::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                rhs[(r, c - self.cols)]
            }
        })
    }

    /// Gauss–Jordan inverse.
    ///
    /// # Errors
    /// Returns [`SingularMatrix`] if no inverse exists.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Result<Matrix, SingularMatrix> {
        assert!(self.is_square(), "inverse of a non-square matrix");
        let n = self.rows;
        let mut work = self.augment(&Matrix::identity(n));
        work.gauss_jordan()?;
        Ok(Matrix::from_fn(n, n, |r, c| work[(r, c + n)]))
    }

    /// Reduces `self` (in place) to reduced row-echelon form, assuming the
    /// left square block is the system to eliminate. Fails if a pivot
    /// column is all-zero (singular left block).
    fn gauss_jordan(&mut self) -> Result<(), SingularMatrix> {
        let n = self.rows;
        for col in 0..n {
            // Find a non-zero pivot at or below the diagonal.
            let pivot = (col..n)
                .find(|&r| !self[(r, col)].is_zero())
                .ok_or(SingularMatrix)?;
            if pivot != col {
                self.swap_rows(pivot, col);
            }
            // Scale pivot row to make the pivot 1.
            let inv = self[(col, col)].inv();
            for c in 0..self.cols {
                self[(col, c)] *= inv;
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col || self[(r, col)].is_zero() {
                    continue;
                }
                let factor = self[(r, col)];
                for c in 0..self.cols {
                    let sub = factor * self[(col, c)];
                    self[(r, c)] += sub;
                }
            }
        }
        Ok(())
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (top, bottom) = self.data.split_at_mut(b * self.cols);
        top[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut bottom[..self.cols]);
    }

    /// Rank via Gaussian elimination on a scratch copy.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            let Some(pivot) = (rank..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(pivot, rank);
            let inv = m[(rank, col)].inv();
            for c in 0..m.cols {
                m[(rank, c)] *= inv;
            }
            for r in 0..m.rows {
                if r != rank && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)];
                    for c in 0..m.cols {
                        let sub = factor * m[(rank, c)];
                        m[(r, c)] += sub;
                    }
                }
            }
            rank += 1;
        }
        rank
    }

    /// Checks the MDS property of an `n × k` generator matrix: every `k`
    /// rows must be linearly independent. Cost is `C(n, k)` inversions —
    /// intended for construction-time validation and tests, not hot paths.
    pub fn is_mds_generator(&self) -> bool {
        let k = self.cols;
        if self.rows < k {
            return false;
        }
        let mut selection: Vec<usize> = (0..k).collect();
        loop {
            if self.select_rows(&selection).rank() < k {
                return false;
            }
            // Advance the combination (lexicographic).
            let mut i = k;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if selection[i] != i + self.rows - k {
                    selection[i] += 1;
                    for j in i + 1..k {
                        selection[j] = selection[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn inverse_round_trip_small() {
        let m = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        let inv = m.inverse().expect("invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(2));
        assert_eq!(inv.mul(&m), Matrix::identity(2));
    }

    #[test]
    fn singular_matrix_detected() {
        // Two identical rows.
        let m = Matrix::from_rows(&[&[1, 2], &[1, 2]]);
        assert_eq!(m.inverse(), Err(SingularMatrix));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn zero_matrix_rank() {
        assert_eq!(Matrix::zero(3, 3).rank(), 0);
    }

    #[test]
    fn vandermonde_rows_independent() {
        // Any k rows of an n×k Vandermonde with distinct points form an
        // invertible matrix.
        let v = Matrix::vandermonde(8, 4);
        assert!(v.is_mds_generator());
    }

    #[test]
    fn cauchy_every_submatrix_invertible() {
        let c = Matrix::cauchy(6, 4);
        // Cauchy matrices are "super-regular": all square submatrices are
        // invertible, in particular any 4 rows are independent.
        for quad in [[0, 1, 2, 3], [2, 3, 4, 5], [0, 2, 4, 5], [1, 2, 3, 5]] {
            assert_eq!(c.select_rows(&quad).rank(), 4);
        }
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = Matrix::vandermonde(5, 3);
        let v = [Gf256(7), Gf256(11), Gf256(13)];
        let as_vec = m.mul_vec(&v);
        let as_matrix = m.mul(&Matrix::from_fn(3, 1, |r, _| v[r]));
        for r in 0..5 {
            assert_eq!(as_vec[r], as_matrix[(r, 0)]);
        }
    }

    #[test]
    fn select_rows_and_augment() {
        let m = Matrix::from_rows(&[&[1, 2], &[3, 4], &[5, 6]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[&[5, 6], &[1, 2]]));
        let a = s.augment(&Matrix::identity(2));
        assert_eq!(a.cols(), 4);
        assert_eq!(a[(0, 2)], Gf256::ONE);
        assert_eq!(a[(1, 3)], Gf256::ONE);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_rows(&[&[1, 2], &[3, 4]]);
        m.swap_rows(0, 1);
        assert_eq!(m, Matrix::from_rows(&[&[3, 4], &[1, 2]]));
        m.swap_rows(1, 1); // no-op
        assert_eq!(m, Matrix::from_rows(&[&[3, 4], &[1, 2]]));
    }

    #[test]
    #[should_panic(expected = "non-square")]
    fn inverse_non_square_panics() {
        let _ = Matrix::zero(2, 3).inverse();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn random_matrix(n: usize) -> impl Strategy<Value = Matrix> {
            proptest::collection::vec(any::<u8>(), n * n)
                .prop_map(move |bytes| Matrix::from_fn(n, n, |r, c| Gf256(bytes[r * n + c])))
        }

        proptest! {
            #[test]
            fn inverse_round_trips(m in (2usize..7).prop_flat_map(random_matrix)) {
                if let Ok(inv) = m.inverse() {
                    prop_assert_eq!(m.mul(&inv), Matrix::identity(m.rows()));
                    prop_assert_eq!(inv.mul(&m), Matrix::identity(m.rows()));
                } else {
                    prop_assert!(m.rank() < m.rows());
                }
            }

            #[test]
            fn product_associative(
                a in random_matrix(4),
                b in random_matrix(4),
                c in random_matrix(4),
            ) {
                prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            }

            #[test]
            fn rank_bounded(m in (1usize..8).prop_flat_map(random_matrix)) {
                prop_assert!(m.rank() <= m.rows());
            }

            #[test]
            fn vandermonde_is_mds(
                k in 1usize..6,
                extra in 1usize..5,
            ) {
                let v = Matrix::vandermonde(k + extra, k);
                prop_assert!(v.is_mds_generator());
            }

            #[test]
            fn cauchy_is_mds(
                k in 1usize..6,
                extra in 1usize..5,
            ) {
                // Identity stacked on Cauchy is the classic systematic MDS
                // construction; here we check the Cauchy block alone has
                // all rows independent.
                let c = Matrix::cauchy(extra, k);
                let stacked = {
                    let mut m = Matrix::zero(k + extra, k);
                    for i in 0..k {
                        m[(i, i)] = Gf256::ONE;
                    }
                    for r in 0..extra {
                        for col in 0..k {
                            m[(k + r, col)] = c[(r, col)];
                        }
                    }
                    m
                };
                prop_assert!(stacked.is_mds_generator());
            }
        }
    }
}
