//! Compile-time lookup tables for GF(2⁸) arithmetic.
//!
//! The field is GF(2⁸) with the primitive reduction polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (`0x11D`), the polynomial used by most storage
//! Reed–Solomon implementations. `α = 2` (i.e. the polynomial `x`) is a
//! generator of the multiplicative group, so every non-zero element is
//! `α^e` for a unique `e ∈ [0, 255)`.
//!
//! Three tables are computed at compile time by `const` evaluation:
//!
//! * [`EXP`] — `EXP[e] = α^e`, doubled to 512 entries so that
//!   `EXP[log a + log b]` never needs a modular reduction;
//! * [`LOG`] — `LOG[x] = e` with `α^e = x` (undefined for `x = 0`,
//!   stored as 0 — callers must branch on zero first);
//! * [`MUL`] — the full 64 KiB product table `MUL[a][b] = a·b`, used by the
//!   bulk slice kernels where one operand is fixed per call and a 256-byte
//!   row fits comfortably in L1.

/// The reduction polynomial `x⁸ + x⁴ + x³ + x² + 1` as a 9-bit constant.
pub const POLY: u16 = 0x11D;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Order of the multiplicative group (`FIELD_SIZE - 1`).
pub const GROUP_ORDER: usize = 255;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut e = 0usize;
    while e < GROUP_ORDER {
        exp[e] = x as u8;
        log[x as usize] = e as u8;
        // multiply by the generator α = 2, reducing modulo POLY
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        e += 1;
    }
    // Duplicate the cycle so EXP[a + b] is valid for a, b < 255 without
    // reducing (a + b) mod 255 on the hot path.
    let mut j = GROUP_ORDER;
    while j < 512 {
        exp[j] = exp[j - GROUP_ORDER];
        j += 1;
    }
    (exp, log)
}

const EXP_LOG: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[e] = α^e` for `e ∈ [0, 510)`; the cycle of length 255 is stored
/// twice so exponent sums need no reduction.
pub const EXP: [u8; 512] = EXP_LOG.0;

/// `LOG[x]` is the discrete logarithm of `x` base `α`. `LOG[0]` is a
/// placeholder (0); multiplication routines must special-case zero.
pub const LOG: [u8; 256] = EXP_LOG.1;

const fn build_mul() -> [[u8; 256]; 256] {
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = LOG[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            table[a][b] = EXP[la + LOG[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

/// Full product table: `MUL[a][b] = a · b` in GF(2⁸).
///
/// Row `MUL[c]` is the fastest way to multiply a long slice by the constant
/// `c` (one L1-resident load per byte, no branches).
pub static MUL: [[u8; 256]; 256] = build_mul();

const fn build_nibble_tables() -> ([[u8; 16]; 256], [[u8; 16]; 256]) {
    let mut lo = [[0u8; 16]; 256];
    let mut hi = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            lo[c][x] = mul(c as u8, x as u8);
            hi[c][x] = mul(c as u8, (x << 4) as u8);
            x += 1;
        }
        c += 1;
    }
    (lo, hi)
}

const NIBBLE_TABLES: ([[u8; 16]; 256], [[u8; 16]; 256]) = build_nibble_tables();

/// Split-nibble product tables: `MUL_LO[c][x] = c · x` for `x < 16`.
///
/// Multiplication by a constant is GF(2)-linear, so
/// `c·b = MUL_LO[c][b & 0xF] ⊕ MUL_HI[c][b >> 4]` — exactly the shape a
/// 16-lane byte shuffle (`pshufb` / `vqtbl1q_u8`) evaluates in one
/// instruction per nibble. The SIMD kernels in [`crate::simd`] load row
/// `c` of each table once per call and stream the block through it.
pub static MUL_LO: [[u8; 16]; 256] = NIBBLE_TABLES.0;

/// Split-nibble product tables: `MUL_HI[c][x] = c · (x << 4)` for `x < 16`.
/// See [`MUL_LO`].
pub static MUL_HI: [[u8; 16]; 256] = NIBBLE_TABLES.1;

/// Multiply two field elements using the exp/log tables.
///
/// Scalar building block; prefer [`crate::slice_ops`] for bulk data.
#[inline]
pub const fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse. `inv(0)` is a logic error and panics.
#[inline]
pub const fn inv(a: u8) -> u8 {
    assert!(a != 0, "division by zero in GF(256)");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Field division `a / b`. Panics if `b == 0`.
#[inline]
pub const fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        // log a - log b, lifted by GROUP_ORDER to stay non-negative.
        EXP[LOG[a as usize] as usize + GROUP_ORDER - LOG[b as usize] as usize]
    }
}

/// Exponentiation `a^e` by repeated squaring on the logarithm.
#[inline]
pub const fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = LOG[a as usize] as u64 * e as u64;
    EXP[(l % GROUP_ORDER as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow bitwise "Russian peasant" multiplication used as ground truth.
    fn mul_ref(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let carry = a & 0x80 != 0;
            a <<= 1;
            if carry {
                a ^= (POLY & 0xFF) as u8;
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn exp_log_round_trip() {
        for x in 1..=255u8 {
            assert_eq!(EXP[LOG[x as usize] as usize], x);
        }
    }

    #[test]
    fn exp_is_doubled_cycle() {
        for e in 0..255 {
            assert_eq!(EXP[e], EXP[e + GROUP_ORDER]);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // α = 2 must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..GROUP_ORDER {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = mul(x, 2);
        }
        assert_eq!(x, 1, "α^255 must equal 1");
    }

    #[test]
    fn mul_matches_reference_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_ref(a, b), "a={a} b={b}");
                assert_eq!(MUL[a as usize][b as usize], mul_ref(a, b));
            }
        }
    }

    #[test]
    fn inverse_is_two_sided() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1);
            assert_eq!(mul(inv(a), a), 1);
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(a, b), mul(a, inv(b)));
            }
        }
    }

    #[test]
    fn pow_small_cases() {
        for a in 0..=255u8 {
            assert_eq!(pow(a, 0), 1);
            assert_eq!(pow(a, 1), a);
            assert_eq!(pow(a, 2), mul(a, a));
            assert_eq!(pow(a, 3), mul(mul(a, a), a));
        }
    }

    #[test]
    fn pow_respects_group_order() {
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1, "a^255 = 1 for non-zero a");
            assert_eq!(pow(a, 256), a);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }
}
