//! Polynomials over GF(2⁸).
//!
//! A systematic Reed–Solomon codeword is, equivalently, the evaluation of
//! the degree-(k−1) polynomial interpolating the data blocks. This module
//! supplies that second viewpoint — Horner evaluation and Lagrange
//! interpolation — which the `tq-erasure` test-suite uses to cross-check
//! the matrix codec against an independent construction.

use core::fmt;

use crate::field::Gf256;

/// A polynomial over GF(2⁸), stored as coefficients in ascending degree
/// order (`coeffs[i]` multiplies `x^i`). The zero polynomial is an empty
/// coefficient vector.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// Builds a polynomial from ascending-degree coefficients, trimming
    /// trailing zeros.
    pub fn new(coeffs: Vec<Gf256>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf256) -> Self {
        Poly::new(vec![c])
    }

    /// The monomial `c·x^deg`.
    pub fn monomial(c: Gf256, deg: usize) -> Self {
        if c.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; deg + 1];
        coeffs[deg] = c;
        Poly { coeffs }
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient of `x^i` (zero beyond the stored degree).
    pub fn coeff(&self, i: usize) -> Gf256 {
        self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO)
    }

    /// Borrow the coefficient slice (ascending degree, trailing zeros
    /// trimmed).
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        self.coeffs
            .iter()
            .rev()
            .fold(Gf256::ZERO, |acc, &c| acc * x + c)
    }

    /// Polynomial addition (= subtraction in characteristic 2).
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::new((0..n).map(|i| self.coeff(i) + rhs.coeff(i)).collect())
    }

    /// Polynomial multiplication (schoolbook; degrees here are ≤ k ≤ 255).
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Gf256::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: Gf256) -> Poly {
        Poly::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.degree().expect("non-zero divisor");
        let lead_inv = divisor.coeffs[dd].inv();
        let mut rem = self.coeffs.clone();
        let mut quot = vec![Gf256::ZERO; self.coeffs.len().saturating_sub(dd)];
        while rem.len() > dd {
            let pos = rem.len() - 1;
            let factor = rem[pos] * lead_inv;
            if !factor.is_zero() {
                let shift = pos - dd;
                quot[shift] = factor;
                for (i, &dc) in divisor.coeffs.iter().enumerate() {
                    rem[shift + i] += factor * dc;
                }
            }
            rem.pop();
            while rem.last().is_some_and(|c| c.is_zero()) && rem.len() > dd {
                rem.pop();
            }
        }
        (Poly::new(quot), Poly::new(rem))
    }

    /// Lagrange interpolation through `(x_i, y_i)` pairs with distinct
    /// `x_i`. Returns the unique polynomial of degree < `points.len()`.
    ///
    /// # Panics
    /// Panics if two evaluation points coincide.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Poly {
        let mut acc = Poly::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            if yi.is_zero() {
                continue;
            }
            // basis_i(x) = Π_{j≠i} (x - x_j) / (x_i - x_j)
            let mut basis = Poly::constant(Gf256::ONE);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(xi != xj, "interpolation points must be distinct");
                basis = basis.mul(&Poly::new(vec![xj, Gf256::ONE])); // (x + x_j) == (x - x_j)
                denom *= xi + xj; // == xi - xj
            }
            acc = acc.add(&basis.scale(yi * denom.inv()));
        }
        acc
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·x")?,
                _ => write!(f, "{c}·x^{i}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(bytes: &[u8]) -> Poly {
        Poly::new(bytes.iter().map(|&b| Gf256(b)).collect())
    }

    #[test]
    fn zero_polynomial_basics() {
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(Gf256(42)), Gf256::ZERO);
    }

    #[test]
    fn trimming_trailing_zeros() {
        let p = poly(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs().len(), 2);
    }

    #[test]
    fn eval_constant_and_linear() {
        assert_eq!(Poly::constant(Gf256(9)).eval(Gf256(100)), Gf256(9));
        // p(x) = 3 + 2x at x = 4: 3 + 2*4
        let p = poly(&[3, 2]);
        assert_eq!(p.eval(Gf256(4)), Gf256(3) + Gf256(2) * Gf256(4));
    }

    #[test]
    fn addition_cancels_in_char_2() {
        let p = poly(&[5, 6, 7]);
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn monomial_construction() {
        let m = Poly::monomial(Gf256(3), 4);
        assert_eq!(m.degree(), Some(4));
        assert_eq!(m.coeff(4), Gf256(3));
        assert!(Poly::monomial(Gf256::ZERO, 9).is_zero());
    }

    #[test]
    fn mul_degree_adds() {
        let p = poly(&[1, 1]); // 1 + x
        let q = poly(&[1, 0, 1]); // 1 + x^2
        let r = p.mul(&q);
        assert_eq!(r.degree(), Some(3));
        // (1+x)(1+x^2) = 1 + x + x^2 + x^3 over GF(2) scalars
        assert_eq!(r, poly(&[1, 1, 1, 1]));
    }

    #[test]
    fn div_rem_reconstructs() {
        let num = poly(&[7, 3, 0, 1, 9]);
        let den = poly(&[2, 1, 5]);
        let (q, r) = num.div_rem(&den);
        let back = q.mul(&den).add(&r);
        assert_eq!(back, num);
        assert!(r.degree().is_none_or(|d| d < den.degree().unwrap()));
    }

    #[test]
    fn interpolate_recovers_polynomial() {
        let p = poly(&[13, 7, 200, 3]);
        let points: Vec<(Gf256, Gf256)> = (0..6)
            .map(|i| {
                let x = Gf256::alpha_pow(i);
                (x, p.eval(x))
            })
            .collect();
        // Any 4 points determine the degree-3 polynomial.
        let q = Poly::interpolate(&points[..4]);
        assert_eq!(q, p);
        let q2 = Poly::interpolate(&points[2..6]);
        assert_eq!(q2, p);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn interpolate_duplicate_points_panics() {
        let pts = [(Gf256(1), Gf256(2)), (Gf256(1), Gf256(3))];
        let _ = Poly::interpolate(&pts);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn poly_strategy(max_deg: usize) -> impl Strategy<Value = Poly> {
            proptest::collection::vec(any::<u8>(), 0..=max_deg + 1)
                .prop_map(|v| Poly::new(v.into_iter().map(Gf256).collect()))
        }

        proptest! {
            #[test]
            fn mul_commutative(p in poly_strategy(6), q in poly_strategy(6)) {
                prop_assert_eq!(p.mul(&q), q.mul(&p));
            }

            #[test]
            fn mul_distributes(p in poly_strategy(5), q in poly_strategy(5), r in poly_strategy(5)) {
                prop_assert_eq!(
                    p.mul(&q.add(&r)),
                    p.mul(&q).add(&p.mul(&r))
                );
            }

            #[test]
            fn eval_is_ring_hom(p in poly_strategy(5), q in poly_strategy(5), x in any::<u8>()) {
                let x = Gf256(x);
                prop_assert_eq!(p.add(&q).eval(x), p.eval(x) + q.eval(x));
                prop_assert_eq!(p.mul(&q).eval(x), p.eval(x) * q.eval(x));
            }

            #[test]
            fn div_rem_invariant(p in poly_strategy(8), q in poly_strategy(4)) {
                prop_assume!(!q.is_zero());
                let (quot, rem) = p.div_rem(&q);
                prop_assert_eq!(quot.mul(&q).add(&rem), p);
                if let Some(rd) = rem.degree() {
                    prop_assert!(rd < q.degree().unwrap() || q.degree().unwrap() == 0);
                }
            }

            #[test]
            fn interpolation_matches_evaluation(
                coeffs in proptest::collection::vec(any::<u8>(), 1..6),
            ) {
                let p = Poly::new(coeffs.into_iter().map(Gf256).collect());
                let deg = p.degree().map_or(0, |d| d + 1).max(1);
                let points: Vec<(Gf256, Gf256)> = (0..deg as u32)
                    .map(|i| {
                        let x = Gf256::alpha_pow(i);
                        (x, p.eval(x))
                    })
                    .collect();
                prop_assert_eq!(Poly::interpolate(&points), p);
            }
        }
    }
}
