//! # tq-gf256 — GF(2⁸) arithmetic for erasure-resilient coding
//!
//! This crate is the arithmetic substrate of the TRAP-ERC reproduction.
//! The paper (Relaza et al., IPDPSW 2015, eq. 1) defines redundant blocks as
//!
//! ```text
//! b_j = Σ_{i=1..k} α_{j,i} · b_i        (arithmetic over GF(2^h))
//! ```
//!
//! and its write algorithm applies *in-place delta updates*
//! `b_j ← b_j + α_{j,i}·(x − c)` exploiting the commutativity of Galois-field
//! operations. Everything here exists to make those two lines fast and
//! correct:
//!
//! * [`Gf256`] — a field element with full operator overloading. Addition is
//!   XOR (characteristic 2, so subtraction ≡ addition), multiplication uses
//!   compile-time exp/log tables over the AES-adjacent polynomial `0x11D`.
//! * [`slice_ops`] — bulk kernels (`mul_slice`, `mul_add_slice`,
//!   `mul_add_multi`, …) used on whole storage blocks; these are the hot
//!   path of encode and delta-update.
//! * [`simd`] — the dispatching backend suite under `slice_ops`:
//!   split-nibble `pshufb` (SSSE3/AVX2) and `vqtbl1q_u8` (NEON) kernels, a
//!   portable u64 SWAR fallback, and the scalar reference, selected once
//!   per process by runtime feature detection (`TQ_GF256_FORCE` overrides).
//! * [`check`] — 8-lane GF(2⁸)-linear block checksums
//!   (`block_check`/`combine`/`linear_check`), the primitive under the
//!   stripe cross-checksum integrity mode: linearity lets a reader derive
//!   a parity block's expected checksum from the data-block checksums.
//! * [`matrix`] — dense matrices over GF(2⁸) with Gauss–Jordan inversion and
//!   Vandermonde / Cauchy constructors, from which the systematic MDS
//!   generator of `tq-erasure` is derived.
//! * [`poly`] — polynomials over GF(2⁸) (evaluation, interpolation); used by
//!   tests to cross-check the matrix-based codec against Lagrange
//!   interpolation.
//!
//! The field is fixed to `h = 8` (GF(256)): the paper itself notes GF(2^h)
//! "usually" in byte-sized fields, and byte granularity is what storage
//! blocks want.
//!
//! ## Example
//!
//! ```
//! use tq_gf256::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! assert_eq!(a * b / b, a);          // multiplicative group
//! assert_eq!(a + b, b + a);          // commutative
//! assert_eq!(a + a, Gf256::ZERO);    // characteristic 2
//! ```

// `unsafe` is denied crate-wide and re-allowed in exactly one place: the
// `#[target_feature]` SIMD kernels in `simd`, which are guarded by
// runtime feature detection (see that module's Safety section).
// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub mod check;
pub mod field;
pub mod matrix;
pub mod poly;
pub mod simd;
pub mod slice_ops;
pub mod tables;

pub use field::Gf256;
pub use matrix::Matrix;
pub use poly::Poly;
