//! GF(2⁸)-linear block checksums — the primitive under the stripe
//! cross-checksum integrity mode.
//!
//! A checksum packs 8 parallel GF(2⁸) accumulator lanes into one `u64`:
//! lane `m` of [`block_check`]`(b)` is `Σ_i w_m(i) · b[i]` over GF(2⁸),
//! where the per-position weights `w_m(i)` are the 8 bytes of
//! `splitmix64(i)` (zero bytes remapped to a fixed non-zero constant, so
//! every byte position influences every lane and any single corrupted
//! byte flips all 8 lanes).
//!
//! Position-dependent weights make the checksum order-sensitive — unlike
//! a plain XOR fold, swapping two block bytes changes it — and
//! GF-linearity in the block bytes makes it commute with the erasure
//! code:
//!
//! * `block_check(x ⊕ y) = block_check(x) ^ block_check(y)` — deltas
//!   compose by XOR;
//! * `block_check(c · x) = combine(c, block_check(x))` — scaling a block
//!   scales its checksum lane-wise.
//!
//! Together these give the cross-checksum identity the stripe integrity
//! mode rests on: a parity block `p_j = Σ_i α_{j,i} · d_i` satisfies
//! `block_check(p_j) = Σ_i combine(α_{j,i}, block_check(d_i))`
//! ([`linear_check`]), so a reader holding only the *data*-block
//! checksum vector can verify any fetched parity block before decoding.

use crate::tables;
use crate::Gf256;

/// Weight byte used in place of a zero `splitmix64` output byte: a zero
/// weight would make that lane blind to the position.
const ZERO_WEIGHT_SUBSTITUTE: u8 = 0x8D;

/// SplitMix64 mix — the same finalizer the storage layer uses for
/// striping, reused here as a cheap per-position weight generator.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The 8 non-zero lane weights for byte position `i`.
#[inline]
fn weights(i: usize) -> [u8; 8] {
    let mut w = splitmix64(i as u64).to_le_bytes();
    for lane in &mut w {
        if *lane == 0 {
            *lane = ZERO_WEIGHT_SUBSTITUTE;
        }
    }
    w
}

/// The 8-lane GF(2⁸) checksum of a block.
///
/// Linear in the block bytes (see the [module docs](self)); the checksum
/// of an all-zero block is 0.
pub fn block_check(bytes: &[u8]) -> u64 {
    let mut lanes = [0u8; 8];
    for (i, &b) in bytes.iter().enumerate() {
        if b == 0 {
            continue; // 0 · w = 0 in every lane
        }
        let row = &tables::MUL[b as usize];
        let w = weights(i);
        for (lane, &wm) in lanes.iter_mut().zip(&w) {
            *lane ^= row[wm as usize];
        }
    }
    u64::from_le_bytes(lanes)
}

/// Scales a checksum by a field coefficient, lane-wise:
/// `combine(c, block_check(x)) == block_check(c · x)`.
pub fn combine(coeff: Gf256, check: u64) -> u64 {
    let row = &tables::MUL[coeff.value() as usize];
    let mut lanes = check.to_le_bytes();
    for lane in &mut lanes {
        *lane = row[*lane as usize];
    }
    u64::from_le_bytes(lanes)
}

/// The checksum of the linear combination `Σ_i coeffs[i] · blocks[i]`,
/// computed from the blocks' checksums alone:
/// `linear_check(c, checks) == block_check(Σ c_i · x_i)`.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn linear_check(coeffs: &[Gf256], checks: &[u64]) -> u64 {
    assert_eq!(
        coeffs.len(),
        checks.len(),
        "linear_check: {} coefficients vs {} checksums",
        coeffs.len(),
        checks.len()
    );
    coeffs
        .iter()
        .zip(checks)
        .fold(0u64, |acc, (&c, &ch)| acc ^ combine(c, ch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice_ops;

    fn sample(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| seed.wrapping_add((i as u8).wrapping_mul(37)))
            .collect()
    }

    #[test]
    fn zero_block_checks_to_zero() {
        assert_eq!(block_check(&[]), 0);
        assert_eq!(block_check(&[0u8; 64]), 0);
    }

    #[test]
    fn weights_are_never_zero() {
        for i in 0..4096 {
            assert!(weights(i).iter().all(|&w| w != 0), "position {i}");
        }
    }

    #[test]
    fn any_single_byte_corruption_flips_every_lane() {
        let block = sample(257, 11);
        let clean = block_check(&block);
        for pos in [0usize, 1, 7, 63, 128, 256] {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = block.clone();
                bad[pos] ^= flip;
                let got = block_check(&bad);
                // Non-zero weights: a changed byte perturbs all 8 lanes.
                for lane in 0..8 {
                    assert_ne!(
                        got.to_le_bytes()[lane],
                        clean.to_le_bytes()[lane],
                        "pos {pos} flip {flip:#x} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = block_check(&[1, 2, 3, 4]);
        let b = block_check(&[2, 1, 3, 4]);
        assert_ne!(a, b, "swapping bytes must change the checksum");
    }

    #[test]
    fn xor_linearity() {
        let x = sample(96, 3);
        let y = sample(96, 200);
        let xy: Vec<u8> = x.iter().zip(&y).map(|(&a, &b)| a ^ b).collect();
        assert_eq!(block_check(&xy), block_check(&x) ^ block_check(&y));
    }

    #[test]
    fn scaling_linearity() {
        let x = sample(80, 77);
        for c in [0u8, 1, 2, 0x53, 0xFF] {
            let c = Gf256(c);
            let mut scaled = vec![0u8; x.len()];
            slice_ops::mul_slice(c, &x, &mut scaled);
            assert_eq!(block_check(&scaled), combine(c, block_check(&x)), "c={c}");
        }
    }

    #[test]
    fn linear_check_matches_materialised_combination() {
        let blocks: Vec<Vec<u8>> = (0..5u8).map(|s| sample(64, s.wrapping_mul(91))).collect();
        let coeffs: Vec<Gf256> = [3u8, 0x1D, 1, 0xAA, 0x02]
            .iter()
            .map(|&c| Gf256(c))
            .collect();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let mut out = vec![0u8; 64];
        slice_ops::linear_combination(&coeffs, &refs, &mut out);
        let checks: Vec<u64> = blocks.iter().map(|b| block_check(b)).collect();
        assert_eq!(block_check(&out), linear_check(&coeffs, &checks));
    }

    #[test]
    #[should_panic(expected = "linear_check")]
    fn linear_check_rejects_ragged_input() {
        let _ = linear_check(&[Gf256::ONE], &[1, 2]);
    }
}
