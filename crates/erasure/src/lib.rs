//! # tq-erasure — systematic (n, k) MDS erasure codes with delta updates
//!
//! This crate implements the storage scheme the TRAP-ERC paper (Relaza et
//! al., IPDPSW 2015) assumes in §III-A:
//!
//! > An (n, k) MDS erasure code stores the original k data blocks into k
//! > nodes out of n and generates n−k redundant blocks such that any k
//! > nodes out of n can reconstruct the original data.
//! > For k+1 ≤ j ≤ n:  b_j = Σ_{i=1..k} α_{j,i}·b_i   (eq. 1)
//!
//! The pieces:
//!
//! * [`CodeParams`] — validated (n, k) pair.
//! * [`ReedSolomon`] — the codec. Systematic generator derived from a
//!   Vandermonde matrix (or, optionally, the identity-over-Cauchy
//!   construction); exposes the coefficients `α_{j,i}` that Algorithm 1 of
//!   the paper multiplies deltas by, encodes parity blocks, reconstructs
//!   any subset of lost blocks from any k survivors, and recovers a single
//!   data block without decoding the whole stripe.
//! * [`delta`] — the in-place update path: `Δ_j = α_{j,i}·(x − c)` per
//!   parity block, the GF-commutativity trick the paper's write algorithm
//!   relies on (Algorithm 1 line 27).
//! * [`Stripe`] — an owned (data, parity) pair that maintains the eq. 1
//!   invariant under full writes and delta updates; the unit the storage
//!   nodes of `tq-cluster` ultimately hold slices of.
//! * [`check`] — stripe cross-checksum vectors: per-data-block GF-linear
//!   checksums from which a reader derives the expected checksum of *any*
//!   shard (data or parity) and verifies it before decoding — the
//!   integrity mode's defense against silently corrupt shards.
//!
//! ## Quickstart
//!
//! ```
//! use tq_erasure::{CodeParams, ReedSolomon};
//!
//! // A (9, 6) MDS code — the paper's §I example.
//! let rs = ReedSolomon::new(CodeParams::new(9, 6).unwrap());
//! let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 64]).collect();
//! let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
//! let parity = rs.encode(&data_refs);
//!
//! // Lose any 3 blocks (= n - k), still decode.
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
//! shards[0] = None;
//! shards[4] = None;
//! shards[7] = None;
//! rs.reconstruct(&mut shards).unwrap();
//! assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
//! ```

// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub mod check;
pub mod code;
pub mod delta;
pub mod params;
pub mod repair;
pub mod stripe;

pub use check::{data_checks, expected_block_check, expected_parity_check, verify_block};
pub use code::{GeneratorKind, ReedSolomon};
pub use delta::ParityDelta;
pub use params::{CodeParams, ParamError};
pub use repair::{plan_exact_repair, RepairPlan};
pub use stripe::Stripe;

/// Errors produced by encode/decode operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// Fewer than k shards were present; reconstruction is impossible.
    TooFewShards {
        /// Number of shards available.
        present: usize,
        /// Number of shards required (k).
        needed: usize,
    },
    /// Shard lengths disagree within one call.
    ShardSizeMismatch,
    /// A shard index was outside `0..n`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Total number of blocks n.
        n: usize,
    },
    /// The shard vector handed to reconstruct had the wrong length.
    WrongShardCount {
        /// Length of the vector supplied.
        got: usize,
        /// Expected length (n).
        expected: usize,
    },
}

impl core::fmt::Display for CodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodeError::TooFewShards { present, needed } => write!(
                f,
                "only {present} shards present, need at least {needed} to decode"
            ),
            CodeError::ShardSizeMismatch => write!(f, "shards have differing lengths"),
            CodeError::IndexOutOfRange { index, n } => {
                write!(f, "shard index {index} out of range for n = {n}")
            }
            CodeError::WrongShardCount { got, expected } => {
                write!(f, "expected {expected} shard slots, got {got}")
            }
        }
    }
}

impl std::error::Error for CodeError {}
