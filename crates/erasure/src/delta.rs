//! In-place parity delta updates — the GF-commutativity trick of
//! Algorithm 1.
//!
//! When data block `b_i` changes from `c` to `x`, every parity block
//! `b_j = Σ α_{j,t}·b_t` changes by exactly `α_{j,i}·(x − c)`, because
//! addition commutes and no other term involves `b_i`. The paper's write
//! algorithm sends each parity node `add(α_{j,i}·(x − chunk))` (line 27),
//! so a single-block update costs `1 + (n−k)` block writes instead of a
//! full re-encode — this is the "(9,6)-MDS needs 8 read+write operations"
//! arithmetic of the paper's introduction.
//!
//! The diff and the per-parity scaling both run on the dispatched
//! [`tq_gf256::slice_ops`] kernels, so a delta update moves at the same
//! SIMD throughput as a full encode — just over `1 + (n−k)` blocks
//! instead of `n` of them.

use tq_gf256::slice_ops;
use tq_gf256::Gf256;

use crate::code::ReedSolomon;
use crate::CodeError;

/// The delta a single parity node must fold into its block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityDelta {
    /// 0-based stripe index of the parity block (`k ≤ index < n`).
    pub index: usize,
    /// The bytes to XOR into the parity block: `α_{j,i}·(x − c)`.
    pub delta: Vec<u8>,
}

impl ParityDelta {
    /// Applies this delta to a parity block in place (the `Nj.add(buf)`
    /// of the paper: `b_j ← b_j + buf`).
    ///
    /// # Panics
    /// Panics if lengths disagree.
    pub fn apply(&self, parity_block: &mut [u8]) {
        slice_ops::add_assign(parity_block, &self.delta);
    }
}

/// Computes the raw block delta `x − c` (XOR in characteristic 2).
///
/// # Errors
/// [`CodeError::ShardSizeMismatch`] if old and new lengths differ.
pub fn block_delta(old: &[u8], new: &[u8]) -> Result<Vec<u8>, CodeError> {
    if old.len() != new.len() {
        return Err(CodeError::ShardSizeMismatch);
    }
    Ok(old.iter().zip(new).map(|(&o, &n)| o ^ n).collect())
}

/// Computes all parity deltas for an update of data block `i` from `old`
/// to `new`: one [`ParityDelta`] per parity index `j ∈ k..n`, carrying
/// `α_{j,i}·(new − old)`.
///
/// # Errors
/// [`CodeError::IndexOutOfRange`] if `i` is not a data index,
/// [`CodeError::ShardSizeMismatch`] if lengths differ.
pub fn parity_deltas(
    rs: &ReedSolomon,
    i: usize,
    old: &[u8],
    new: &[u8],
) -> Result<Vec<ParityDelta>, CodeError> {
    if !rs.params().is_data_index(i) {
        return Err(CodeError::IndexOutOfRange {
            index: i,
            n: rs.params().k(),
        });
    }
    let raw = block_delta(old, new)?;
    Ok(rs
        .params()
        .parity_indices()
        .map(|j| {
            let mut delta = vec![0u8; raw.len()];
            slice_ops::mul_slice(rs.coefficient(j, i), &raw, &mut delta);
            ParityDelta { index: j, delta }
        })
        .collect())
}

/// Computes the single parity delta `α_{j,i}·(new − old)` for one parity
/// index `j` — what Algorithm 1 sends to one node.
///
/// # Errors
/// [`CodeError::IndexOutOfRange`] on a non-data `i` or non-parity `j`,
/// [`CodeError::ShardSizeMismatch`] on length mismatch.
pub fn parity_delta_for(
    rs: &ReedSolomon,
    j: usize,
    i: usize,
    old: &[u8],
    new: &[u8],
) -> Result<ParityDelta, CodeError> {
    if !rs.params().is_data_index(i) {
        return Err(CodeError::IndexOutOfRange {
            index: i,
            n: rs.params().k(),
        });
    }
    if !rs.params().is_parity_index(j) {
        return Err(CodeError::IndexOutOfRange {
            index: j,
            n: rs.params().n(),
        });
    }
    let raw = block_delta(old, new)?;
    let mut delta = vec![0u8; raw.len()];
    slice_ops::mul_slice(rs.coefficient(j, i), &raw, &mut delta);
    Ok(ParityDelta { index: j, delta })
}

/// Scales an already-computed raw delta by `α_{j,i}` without re-diffing —
/// used when one write fans out to many parity nodes.
pub fn scale_delta(rs: &ReedSolomon, j: usize, i: usize, raw_delta: &[u8]) -> ParityDelta {
    let c: Gf256 = rs.coefficient(j, i);
    let mut delta = vec![0u8; raw_delta.len()];
    slice_ops::mul_slice(c, raw_delta, &mut delta);
    ParityDelta { index: j, delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CodeParams;

    fn setup(n: usize, k: usize) -> (ReedSolomon, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap());
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..32).map(|b| (i * 17 + b) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        (rs, data, parity)
    }

    #[test]
    fn delta_update_equals_full_reencode() {
        let (rs, mut data, mut parity) = setup(9, 6);
        // Update block 2 via deltas.
        let new_block: Vec<u8> = (0..32).map(|b| (b * 7 + 3) as u8).collect();
        let deltas = parity_deltas(&rs, 2, &data[2], &new_block).unwrap();
        assert_eq!(deltas.len(), 3);
        for d in &deltas {
            d.apply(&mut parity[d.index - 6]);
        }
        data[2] = new_block;
        // Full re-encode must agree.
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let expect = rs.encode(&refs);
        assert_eq!(parity, expect);
    }

    #[test]
    fn repeated_deltas_compose() {
        let (rs, mut data, mut parity) = setup(6, 4);
        for round in 0..5u8 {
            let target = (round as usize) % 4;
            let new_block: Vec<u8> = (0..32)
                .map(|b| round.wrapping_mul(b as u8 ^ 0x5A))
                .collect();
            for d in parity_deltas(&rs, target, &data[target], &new_block).unwrap() {
                d.apply(&mut parity[d.index - 4]);
            }
            data[target] = new_block;
        }
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(parity, rs.encode(&refs));
    }

    #[test]
    fn identity_update_produces_zero_deltas() {
        let (rs, data, _) = setup(5, 3);
        let deltas = parity_deltas(&rs, 1, &data[1], &data[1]).unwrap();
        for d in deltas {
            assert!(d.delta.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn single_delta_matches_bulk() {
        let (rs, data, _) = setup(8, 5);
        let new_block = vec![0xFFu8; 32];
        let bulk = parity_deltas(&rs, 0, &data[0], &new_block).unwrap();
        for j in 5..8 {
            let single = parity_delta_for(&rs, j, 0, &data[0], &new_block).unwrap();
            assert_eq!(single, bulk[j - 5]);
        }
    }

    #[test]
    fn scale_delta_matches() {
        let (rs, data, _) = setup(8, 5);
        let new_block = vec![0x11u8; 32];
        let raw = block_delta(&data[3], &new_block).unwrap();
        for j in 5..8 {
            assert_eq!(
                scale_delta(&rs, j, 3, &raw),
                parity_delta_for(&rs, j, 3, &data[3], &new_block).unwrap()
            );
        }
    }

    #[test]
    fn error_cases() {
        let (rs, data, _) = setup(5, 3);
        assert!(matches!(
            parity_deltas(&rs, 4, &data[0], &data[0]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            parity_deltas(&rs, 0, &data[0], &data[0][..8]),
            Err(CodeError::ShardSizeMismatch)
        ));
        assert!(matches!(
            parity_delta_for(&rs, 2, 0, &data[0], &data[0]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn delta_path_always_matches_reencode(
                k in 1usize..6,
                extra in 1usize..5,
                target_raw in any::<usize>(),
                old_seed in any::<u8>(),
                new_seed in any::<u8>(),
                len in 1usize..40,
            ) {
                let n = k + extra;
                let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap());
                let target = target_raw % k;
                let mut data: Vec<Vec<u8>> = (0..k)
                    .map(|i| (0..len).map(|b| old_seed.wrapping_add((i * 13 + b * 7) as u8)).collect())
                    .collect();
                let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                let mut parity = rs.encode(&refs);
                let new_block: Vec<u8> = (0..len).map(|b| new_seed.wrapping_mul(b as u8 | 1)).collect();
                for d in parity_deltas(&rs, target, &data[target], &new_block).unwrap() {
                    d.apply(&mut parity[d.index - k]);
                }
                data[target] = new_block;
                let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
                prop_assert_eq!(parity, rs.encode(&refs));
            }
        }
    }
}
