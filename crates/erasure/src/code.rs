//! The systematic Reed–Solomon codec.
//!
//! The generator is an `n × k` matrix `G` whose top `k × k` block is the
//! identity (systematic: data blocks are stored verbatim) and whose lower
//! `(n−k) × k` block holds the coefficients `α_{j,i}` of the paper's eq. 1.
//! Encoding multiplies `G` by the column of data blocks; any `k` rows of
//! `G` are linearly independent (MDS), so any `k` surviving blocks
//! reconstruct the data by inverting the corresponding `k × k` submatrix.

use tq_gf256::matrix::Matrix;
use tq_gf256::slice_ops;
use tq_gf256::Gf256;

use crate::params::CodeParams;
use crate::CodeError;

/// Which MDS construction the systematic generator is derived from.
///
/// Both satisfy eq. 1 with "carefully chosen constants"; they differ only
/// in which constants come out. Vandermonde is the classical choice;
/// Cauchy gives the super-regularity property directly without the
/// normalisation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeneratorKind {
    /// `G = V · V_top⁻¹` for an `n × k` Vandermonde matrix `V`.
    #[default]
    Vandermonde,
    /// Identity stacked on an `(n−k) × k` Cauchy matrix.
    Cauchy,
}

/// A systematic (n, k) MDS Reed–Solomon codec over GF(2⁸).
///
/// Construction cost is one `k × k` inversion (Vandermonde) or nothing
/// beyond table lookups (Cauchy); clone is cheap relative to block work.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    kind: GeneratorKind,
    /// Full `n × k` generator; rows `0..k` are the identity.
    generator: Matrix,
}

impl ReedSolomon {
    /// Builds the codec with the default (Vandermonde-derived) generator.
    pub fn new(params: CodeParams) -> Self {
        Self::with_generator(params, GeneratorKind::default())
    }

    /// Builds a codec from an explicit `(n−k) × k` parity coefficient
    /// matrix (rows are the `α_{j,·}` vectors). Used by *functional
    /// repair*, which replaces a lost parity row with a fresh one rather
    /// than recomputing the original.
    ///
    /// # Errors
    /// Returns `None` if the stacked identity-over-parity generator is
    /// not MDS (some k rows dependent) — the caller should draw another
    /// candidate row.
    pub fn with_parity_matrix(params: CodeParams, parity: &Matrix) -> Option<Self> {
        let (n, k) = (params.n(), params.k());
        assert_eq!(parity.rows(), n - k, "parity matrix must have n-k rows");
        assert_eq!(parity.cols(), k, "parity matrix must have k columns");
        let mut generator = Matrix::zero(n.max(1), k);
        for i in 0..k {
            generator[(i, i)] = Gf256::ONE;
        }
        for r in 0..n - k {
            for c in 0..k {
                generator[(k + r, c)] = parity[(r, c)];
            }
        }
        if !generator.is_mds_generator() {
            return None;
        }
        Some(ReedSolomon {
            params,
            kind: GeneratorKind::Vandermonde, // kind is informational here
            generator,
        })
    }

    /// Builds the codec with an explicit generator construction.
    pub fn with_generator(params: CodeParams, kind: GeneratorKind) -> Self {
        let k = params.k();
        let n = params.n();
        let generator = match kind {
            GeneratorKind::Vandermonde => {
                let v = Matrix::vandermonde(n, k);
                let top = v.select_rows(&(0..k).collect::<Vec<_>>());
                let top_inv = top
                    .inverse()
                    .expect("Vandermonde top block is always invertible");
                v.mul(&top_inv)
            }
            GeneratorKind::Cauchy => {
                let mut g = Matrix::zero(n.max(1), k);
                for i in 0..k {
                    g[(i, i)] = Gf256::ONE;
                }
                if n > k {
                    let c = Matrix::cauchy(n - k, k);
                    for r in 0..n - k {
                        for col in 0..k {
                            g[(k + r, col)] = c[(r, col)];
                        }
                    }
                }
                g
            }
        };
        debug_assert!({
            let id = generator.select_rows(&(0..k).collect::<Vec<_>>());
            id == Matrix::identity(k)
        });
        ReedSolomon {
            params,
            kind,
            generator,
        }
    }

    /// The (n, k) parameters.
    #[inline]
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// Which construction the generator came from.
    #[inline]
    pub fn generator_kind(&self) -> GeneratorKind {
        self.kind
    }

    /// The coefficient `α_{j,i}` of eq. 1: the weight of data block `i`
    /// in parity block `j` (0-based: `k ≤ j < n`, `0 ≤ i < k`).
    ///
    /// # Panics
    /// Panics if `j` is not a parity index or `i` not a data index.
    #[inline]
    pub fn coefficient(&self, j: usize, i: usize) -> Gf256 {
        assert!(
            self.params.is_parity_index(j),
            "coefficient: j = {j} is not a parity index of {}",
            self.params
        );
        assert!(
            self.params.is_data_index(i),
            "coefficient: i = {i} is not a data index of {}",
            self.params
        );
        self.generator[(j, i)]
    }

    /// The full generator row for block `j` (identity row for data blocks,
    /// `α_{j,·}` for parity blocks).
    #[inline]
    pub fn generator_row(&self, j: usize) -> &[Gf256] {
        self.generator.row(j)
    }

    /// Encodes `k` data blocks into `n − k` parity blocks.
    ///
    /// # Panics
    /// Panics if `data.len() != k` or block lengths disagree — these are
    /// programmer errors, not runtime conditions.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        let k = self.params.k();
        assert_eq!(data.len(), k, "encode: expected {k} data blocks");
        let block_len = data[0].len();
        assert!(
            data.iter().all(|d| d.len() == block_len),
            "encode: data blocks must share one length"
        );
        let mut parity = vec![vec![0u8; block_len]; self.params.parity_count()];
        self.encode_into(data, &mut parity);
        parity
    }

    /// Encodes into caller-provided parity buffers (avoids allocation on
    /// re-encode paths — the scrub/repair workflows pool these).
    ///
    /// Each parity block is one fused
    /// [`mul_add_multi`](tq_gf256::slice_ops::mul_add_multi) pass over
    /// all `k` data blocks: the dispatched SIMD backend keeps the
    /// accumulator strip in registers, writing every output byte once.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn encode_into(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) {
        let k = self.params.k();
        assert_eq!(data.len(), k, "encode_into: expected {k} data blocks");
        assert_eq!(
            parity.len(),
            self.params.parity_count(),
            "encode_into: expected {} parity buffers",
            self.params.parity_count()
        );
        for (p, j) in parity.iter_mut().zip(self.params.parity_indices()) {
            slice_ops::linear_combination(self.generator.row(j), data, p);
        }
    }

    /// Verifies that a full stripe satisfies eq. 1.
    ///
    /// # Panics
    /// Panics if `shards.len() != n` or lengths disagree.
    pub fn verify(&self, shards: &[&[u8]]) -> bool {
        let (k, n) = (self.params.k(), self.params.n());
        assert_eq!(shards.len(), n, "verify: expected {n} shards");
        let data = &shards[..k];
        let expected = self.encode(data);
        expected
            .iter()
            .zip(&shards[k..])
            .all(|(e, s)| e.as_slice() == *s)
    }

    /// Reconstructs every missing shard in place from any `k` survivors.
    ///
    /// `shards` must have exactly `n` slots; `None` marks a lost block.
    /// On success every slot is `Some` and eq. 1 holds again.
    ///
    /// # Errors
    /// [`CodeError::TooFewShards`] if fewer than `k` survive,
    /// [`CodeError::WrongShardCount`] / [`CodeError::ShardSizeMismatch`]
    /// on malformed input.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        let (k, n) = (self.params.k(), self.params.n());
        if shards.len() != n {
            return Err(CodeError::WrongShardCount {
                got: shards.len(),
                expected: n,
            });
        }
        let present: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < k {
            return Err(CodeError::TooFewShards {
                present: present.len(),
                needed: k,
            });
        }
        let block_len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != block_len)
        {
            return Err(CodeError::ShardSizeMismatch);
        }
        if present.len() == n {
            return Ok(()); // nothing to do
        }

        // Recover the k data blocks from the first k survivors, then
        // re-encode whatever parity is missing.
        let chosen = &present[..k];
        let data = self.solve_data(chosen, shards, block_len)?;
        for i in 0..k {
            if shards[i].is_none() {
                shards[i] = Some(data[i].clone());
            }
        }
        let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        for j in self.params.parity_indices() {
            if shards[j].is_none() {
                let mut out = vec![0u8; block_len];
                slice_ops::linear_combination(self.generator.row(j), &data_refs, &mut out);
                shards[j] = Some(out);
            }
        }
        Ok(())
    }

    /// Decodes a single block `target` (data or parity) from at least `k`
    /// available `(index, bytes)` pairs, without materialising the rest of
    /// the stripe. This is the read path of Algorithm 2 Case 2: "the
    /// decode operation will be launched using any k updated nodes out of
    /// n nodes in order to reconstruct the original data block".
    ///
    /// # Errors
    /// [`CodeError::TooFewShards`], [`CodeError::IndexOutOfRange`],
    /// [`CodeError::ShardSizeMismatch`]; duplicate indices count once.
    pub fn decode_block(
        &self,
        target: usize,
        available: &[(usize, &[u8])],
    ) -> Result<Vec<u8>, CodeError> {
        let (k, n) = (self.params.k(), self.params.n());
        if target >= n {
            return Err(CodeError::IndexOutOfRange { index: target, n });
        }
        for &(idx, _) in available {
            if idx >= n {
                return Err(CodeError::IndexOutOfRange { index: idx, n });
            }
        }
        // Fast path: the target itself is among the survivors.
        if let Some(&(_, bytes)) = available.iter().find(|&&(i, _)| i == target) {
            return Ok(bytes.to_vec());
        }
        // Deduplicate indices, keep the first k distinct.
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(k);
        for &(idx, bytes) in available {
            if chosen.iter().all(|&(c, _)| c != idx) {
                chosen.push((idx, bytes));
                if chosen.len() == k {
                    break;
                }
            }
        }
        if chosen.len() < k {
            return Err(CodeError::TooFewShards {
                present: chosen.len(),
                needed: k,
            });
        }
        let block_len = chosen[0].1.len();
        if chosen.iter().any(|&(_, b)| b.len() != block_len) {
            return Err(CodeError::ShardSizeMismatch);
        }

        // data = M⁻¹ · survivors, where M = generator rows of survivors.
        let indices: Vec<usize> = chosen.iter().map(|&(i, _)| i).collect();
        let sub = self.generator.select_rows(&indices);
        let inv = sub
            .inverse()
            .expect("any k generator rows are invertible (MDS)");
        // Target row of the *full* reconstruction map: for a data target
        // it is row `target` of M⁻¹; for a parity target it is
        // generator_row(target) · M⁻¹.
        let coeffs: Vec<Gf256> = if self.params.is_data_index(target) {
            inv.row(target).to_vec()
        } else {
            let grow = self.generator.row(target);
            (0..k)
                .map(|c| (0..k).fold(Gf256::ZERO, |acc, r| acc + grow[r] * inv[(r, c)]))
                .collect()
        };
        let blocks: Vec<&[u8]> = chosen.iter().map(|&(_, b)| b).collect();
        let mut out = vec![0u8; block_len];
        slice_ops::linear_combination(&coeffs, &blocks, &mut out);
        Ok(out)
    }

    /// Solves for all k data blocks given k survivor indices.
    fn solve_data(
        &self,
        chosen: &[usize],
        shards: &[Option<Vec<u8>>],
        block_len: usize,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let k = self.params.k();
        debug_assert_eq!(chosen.len(), k);
        let sub = self.generator.select_rows(chosen);
        let inv = sub
            .inverse()
            .expect("any k generator rows are invertible (MDS)");
        let blocks: Vec<&[u8]> = chosen
            .iter()
            .map(|&i| shards[i].as_ref().expect("chosen are present").as_slice())
            .collect();
        let mut data = vec![vec![0u8; block_len]; k];
        for (i, out) in data.iter_mut().enumerate() {
            slice_ops::linear_combination(inv.row(i), &blocks, out);
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| (seed ^ (i as u8)).wrapping_mul(31).wrapping_add(b as u8))
                    .collect()
            })
            .collect()
    }

    fn refs(data: &[Vec<u8>]) -> Vec<&[u8]> {
        data.iter().map(|d| d.as_slice()).collect()
    }

    #[test]
    fn systematic_top_block_is_identity() {
        for kind in [GeneratorKind::Vandermonde, GeneratorKind::Cauchy] {
            let rs = ReedSolomon::with_generator(CodeParams::new(9, 6).unwrap(), kind);
            for i in 0..6 {
                for c in 0..6 {
                    let expect = if i == c { Gf256::ONE } else { Gf256::ZERO };
                    assert_eq!(rs.generator_row(i)[c], expect, "kind {kind:?}");
                }
            }
        }
    }

    #[test]
    fn coefficients_are_nonzero() {
        // A zero α_{j,i} would mean parity j ignores data block i, breaking
        // the delta-update path for that pair.
        for kind in [GeneratorKind::Vandermonde, GeneratorKind::Cauchy] {
            let rs = ReedSolomon::with_generator(CodeParams::new(15, 8).unwrap(), kind);
            for j in 8..15 {
                for i in 0..8 {
                    assert!(!rs.coefficient(j, i).is_zero(), "α_{j},{i} = 0 ({kind:?})");
                }
            }
        }
    }

    #[test]
    fn encode_then_verify() {
        let rs = ReedSolomon::new(CodeParams::new(9, 6).unwrap());
        let data = make_data(6, 128, 7);
        let parity = rs.encode(&refs(&data));
        let all: Vec<&[u8]> = refs(&data).into_iter().chain(refs(&parity)).collect();
        assert!(rs.verify(&all));
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(CodeParams::new(6, 4).unwrap());
        let data = make_data(4, 32, 3);
        let mut parity = rs.encode(&refs(&data));
        parity[1][5] ^= 0x40;
        let all: Vec<&[u8]> = refs(&data).into_iter().chain(refs(&parity)).collect();
        assert!(!rs.verify(&all));
    }

    #[test]
    fn reconstruct_all_loss_patterns_exhaustively() {
        // (6, 4): C(6,2) = 15 double-loss patterns plus all single losses.
        let params = CodeParams::new(6, 4).unwrap();
        for kind in [GeneratorKind::Vandermonde, GeneratorKind::Cauchy] {
            let rs = ReedSolomon::with_generator(params, kind);
            let data = make_data(4, 64, 11);
            let parity = rs.encode(&refs(&data));
            let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
            for a in 0..6 {
                for b in a..6 {
                    let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                    shards[a] = None;
                    shards[b] = None;
                    rs.reconstruct(&mut shards).unwrap();
                    for (i, s) in shards.iter().enumerate() {
                        assert_eq!(s.as_deref(), Some(full[i].as_slice()), "loss {a},{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn reconstruct_fails_beyond_tolerance() {
        let rs = ReedSolomon::new(CodeParams::new(5, 3).unwrap());
        let data = make_data(3, 16, 1);
        let parity = rs.encode(&refs(&data));
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[3] = None; // three losses > n - k = 2
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(CodeError::TooFewShards {
                present: 2,
                needed: 3
            })
        );
    }

    #[test]
    fn reconstruct_rejects_malformed_input() {
        let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
        let mut wrong_count: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 8]); 3];
        assert_eq!(
            rs.reconstruct(&mut wrong_count),
            Err(CodeError::WrongShardCount {
                got: 3,
                expected: 4
            })
        );
        let mut ragged: Vec<Option<Vec<u8>>> =
            vec![Some(vec![0; 8]), Some(vec![0; 9]), None, Some(vec![0; 8])];
        assert_eq!(
            rs.reconstruct(&mut ragged),
            Err(CodeError::ShardSizeMismatch)
        );
    }

    #[test]
    fn reconstruct_noop_when_complete() {
        let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
        let data = make_data(2, 8, 5);
        let parity = rs.encode(&refs(&data));
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let before = shards.clone();
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards, before);
    }

    #[test]
    fn decode_block_every_target_every_k_subset() {
        let params = CodeParams::new(6, 3).unwrap();
        let rs = ReedSolomon::new(params);
        let data = make_data(3, 48, 9);
        let parity = rs.encode(&refs(&data));
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity.iter().cloned()).collect();
        // All C(6,3) = 20 subsets of survivors, all 6 targets.
        for a in 0..6 {
            for b in a + 1..6 {
                for c in b + 1..6 {
                    let avail: Vec<(usize, &[u8])> =
                        [a, b, c].iter().map(|&i| (i, full[i].as_slice())).collect();
                    for (target, expect) in full.iter().enumerate().take(6) {
                        let got = rs.decode_block(target, &avail).unwrap();
                        assert_eq!(&got, expect, "target {target} from {a},{b},{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn decode_block_fast_path_when_target_present() {
        let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
        let data = make_data(2, 8, 2);
        let parity = rs.encode(&refs(&data));
        let avail = vec![(1usize, data[1].as_slice()), (2, parity[0].as_slice())];
        assert_eq!(rs.decode_block(1, &avail).unwrap(), data[1]);
    }

    #[test]
    fn decode_block_errors() {
        let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
        let block = vec![0u8; 4];
        assert_eq!(
            rs.decode_block(9, &[(0, block.as_slice())]),
            Err(CodeError::IndexOutOfRange { index: 9, n: 4 })
        );
        assert_eq!(
            rs.decode_block(1, &[(0, block.as_slice())]),
            Err(CodeError::TooFewShards {
                present: 1,
                needed: 2
            })
        );
        // Duplicates only count once.
        assert_eq!(
            rs.decode_block(1, &[(0, block.as_slice()), (0, block.as_slice())]),
            Err(CodeError::TooFewShards {
                present: 1,
                needed: 2
            })
        );
    }

    #[test]
    fn k_equals_n_degenerate_code() {
        // No parity: encode returns nothing, reconstruct requires all.
        let rs = ReedSolomon::new(CodeParams::new(3, 3).unwrap());
        let data = make_data(3, 8, 4);
        assert!(rs.encode(&refs(&data)).is_empty());
        let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
        rs.reconstruct(&mut shards).unwrap();
        shards[1] = None;
        assert!(rs.reconstruct(&mut shards).is_err());
    }

    #[test]
    fn k_one_replication_code() {
        // (4, 1): parity blocks are scalar multiples of the single data
        // block; with Vandermonde normalisation they are exact copies.
        let rs = ReedSolomon::new(CodeParams::new(4, 1).unwrap());
        let data = vec![vec![1u8, 2, 3]];
        let parity = rs.encode(&refs(&data));
        assert_eq!(parity.len(), 3);
        for (j, p) in parity.iter().enumerate() {
            let c = rs.coefficient(1 + j, 0);
            let expect: Vec<u8> = data[0].iter().map(|&b| (Gf256(b) * c).value()).collect();
            assert_eq!(*p, expect);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        struct Case {
            n: usize,
            k: usize,
            block_len: usize,
            data: Vec<Vec<u8>>,
            kind: GeneratorKind,
        }

        fn case() -> impl Strategy<Value = Case> {
            (
                2usize..10,
                1usize..6,
                1usize..64,
                any::<u8>(),
                any::<bool>(),
            )
                .prop_map(|(extra, k, block_len, seed, cauchy)| {
                    let n = k + extra.min(10 - k);
                    let data = (0..k)
                        .map(|i| {
                            (0..block_len)
                                .map(|b| seed.wrapping_add((i * 37 + b * 101) as u8))
                                .collect()
                        })
                        .collect();
                    Case {
                        n,
                        k,
                        block_len,
                        data,
                        kind: if cauchy {
                            GeneratorKind::Cauchy
                        } else {
                            GeneratorKind::Vandermonde
                        },
                    }
                })
        }

        proptest! {
            #[test]
            fn round_trip_under_random_loss(case in case(), loss_seed in any::<u64>()) {
                let params = CodeParams::new(case.n, case.k).unwrap();
                let rs = ReedSolomon::with_generator(params, case.kind);
                let data_refs: Vec<&[u8]> = case.data.iter().map(|d| d.as_slice()).collect();
                let parity = rs.encode(&data_refs);
                let full: Vec<Vec<u8>> = case
                    .data
                    .iter()
                    .cloned()
                    .chain(parity.into_iter())
                    .collect();
                // Drop exactly n - k blocks chosen by the seed.
                let mut order: Vec<usize> = (0..case.n).collect();
                let mut s = loss_seed;
                for i in (1..order.len()).rev() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    order.swap(i, (s >> 33) as usize % (i + 1));
                }
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                for &lost in order.iter().take(case.n - case.k) {
                    shards[lost] = None;
                }
                rs.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    prop_assert_eq!(s.as_deref(), Some(full[i].as_slice()));
                }
                prop_assert_eq!(case.block_len, full[0].len());
            }

            #[test]
            fn parity_rows_mds(k in 1usize..8, extra in 1usize..8) {
                let params = CodeParams::new(k + extra, k).unwrap();
                for kind in [GeneratorKind::Vandermonde, GeneratorKind::Cauchy] {
                    let rs = ReedSolomon::with_generator(params, kind);
                    let mut g = Matrix::zero(params.n(), k);
                    for r in 0..params.n() {
                        for c in 0..k {
                            g[(r, c)] = rs.generator_row(r)[c];
                        }
                    }
                    prop_assert!(g.is_mds_generator(), "{:?}", kind);
                }
            }
        }
    }
}
