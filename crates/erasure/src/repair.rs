//! Node repair — the exact / functional / hybrid taxonomy of §I.
//!
//! When a node fails, the blocks it held must be rebuilt on a
//! replacement. The paper's introduction classifies MDS repairs:
//!
//! * **exact repair** — the new blocks are bit-identical to the lost
//!   ones. Costs a full decode (k block reads) but keeps the code
//!   systematic, so later reads of data blocks stay one-hop.
//! * **functional repair** — the new blocks merely keep the code MDS
//!   (any k of n still reconstruct). For a parity node this means a
//!   *fresh coefficient row*; the paper notes such codes need "a more
//!   heavy processing to retrieve or update the original data", which is
//!   why it sticks to exact repair for data.
//! * **hybrid repair** — exact for the k data blocks, functional for
//!   parity: the variant the paper highlights as practical.
//!
//! This module implements all three at the codec level. `tq-trapezoid`
//! exposes the cluster-level rebuild built on top of the exact path.

use tq_gf256::{Gf256, Matrix};

use crate::code::ReedSolomon;
use crate::params::CodeParams;
use crate::CodeError;

/// A costed exact-repair plan for one lost block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// The stripe index being rebuilt.
    pub target: usize,
    /// The k survivor indices whose blocks the repair will read.
    pub sources: Vec<usize>,
}

impl RepairPlan {
    /// Blocks read from survivors (the network/IO cost §I worries about:
    /// k reads per lost block for a classical MDS code).
    pub fn reads(&self) -> usize {
        self.sources.len()
    }

    /// Total bytes transferred for a given block length.
    pub fn bytes_read(&self, block_len: usize) -> usize {
        self.sources.len() * block_len
    }
}

/// Plans an exact repair of `target` from the live stripe indices.
///
/// # Errors
/// [`CodeError::TooFewShards`] with fewer than k distinct live survivors
/// (excluding the target itself), [`CodeError::IndexOutOfRange`] on a bad
/// target.
pub fn plan_exact_repair(
    rs: &ReedSolomon,
    target: usize,
    live: &[usize],
) -> Result<RepairPlan, CodeError> {
    let (n, k) = (rs.params().n(), rs.params().k());
    if target >= n {
        return Err(CodeError::IndexOutOfRange { index: target, n });
    }
    let mut sources = Vec::with_capacity(k);
    for &idx in live {
        if idx >= n {
            return Err(CodeError::IndexOutOfRange { index: idx, n });
        }
        if idx != target && !sources.contains(&idx) {
            sources.push(idx);
            if sources.len() == k {
                break;
            }
        }
    }
    if sources.len() < k {
        return Err(CodeError::TooFewShards {
            present: sources.len(),
            needed: k,
        });
    }
    Ok(RepairPlan { target, sources })
}

/// Executes an exact repair: `blocks[i]` must be the bytes of
/// `plan.sources[i]`. Returns the lost block, bit-identical to the
/// original.
///
/// # Errors
/// Propagates decode failures ([`CodeError::ShardSizeMismatch`] etc.).
pub fn execute_exact_repair(
    rs: &ReedSolomon,
    plan: &RepairPlan,
    blocks: &[&[u8]],
) -> Result<Vec<u8>, CodeError> {
    if blocks.len() != plan.sources.len() {
        return Err(CodeError::TooFewShards {
            present: blocks.len(),
            needed: plan.sources.len(),
        });
    }
    let available: Vec<(usize, &[u8])> = plan
        .sources
        .iter()
        .copied()
        .zip(blocks.iter().copied())
        .collect();
    rs.decode_block(plan.target, &available)
}

/// Functional repair of a lost *parity* row: derives candidate rows from
/// *fresh evaluation points* of the generator's underlying family and
/// returns the first that keeps the stacked generator MDS (verified
/// exhaustively), together with the replacement codec.
///
/// Why structured candidates: a uniformly random row over GF(2⁸) keeps
/// the code MDS with probability ≈ exp(−C(n−1, k−1)/255) — fine for a
/// (9, 6) code (≈ 0.8) but ≈ 10⁻⁶ for (15, 8). Extending the Vandermonde
/// point family (row = `vand(x_new) · V_top⁻¹` for a previously unused
/// point `x_new`) preserves the any-k-rows-independent argument by
/// construction; the explicit MDS check then guards repeated repairs,
/// whose rows no longer all come from one family. `seed` selects where
/// the point search starts, so distinct seeds give distinct rows.
///
/// The replacement parity *block* is then `Σ row[i]·b_i` over current
/// data — different bytes than the lost block, same fault tolerance.
///
/// # Errors
/// [`CodeError::IndexOutOfRange`] if `lost` is not a parity index;
/// [`CodeError::TooFewShards`] if no unused evaluation point yields an
/// MDS generator (possible only after exhausting all 255 − n points on a
/// heavily re-repaired code).
pub fn functional_repair_row(
    rs: &ReedSolomon,
    lost: usize,
    seed: u64,
) -> Result<(ReedSolomon, Vec<Gf256>), CodeError> {
    let params: CodeParams = rs.params();
    let (n, k) = (params.n(), params.k());
    if !params.is_parity_index(lost) {
        return Err(CodeError::IndexOutOfRange { index: lost, n });
    }
    // Transform that maps a raw Vandermonde row onto the systematic
    // basis: T = (top k×k of the n×k Vandermonde)⁻¹.
    let transform = Matrix::vandermonde(k, k)
        .inverse()
        .expect("Vandermonde top block is always invertible");
    // Exponents 0..n name the original points; n..255 are fresh.
    let pool: Vec<u32> = (n as u32..255).collect();
    if pool.is_empty() {
        return Err(CodeError::TooFewShards {
            present: 0,
            needed: k,
        });
    }
    let start = (seed % pool.len() as u64) as usize;
    for offset in 0..pool.len() {
        let exponent = pool[(start + offset) % pool.len()];
        let x = Gf256::alpha_pow(exponent);
        // row = vand(x) · T, expressed on the systematic basis.
        let row: Vec<Gf256> = (0..k)
            .map(|c| {
                (0..k).fold(Gf256::ZERO, |acc, t| {
                    acc + x.pow(t as u32) * transform[(t, c)]
                })
            })
            .collect();
        let mut parity = Matrix::zero(n - k, k);
        for (r, j) in params.parity_indices().enumerate() {
            for c in 0..k {
                parity[(r, c)] = if j == lost {
                    row[c]
                } else {
                    rs.coefficient(j, c)
                };
            }
        }
        if let Some(new_rs) = ReedSolomon::with_parity_matrix(params, &parity) {
            return Ok((new_rs, row));
        }
    }
    Err(CodeError::TooFewShards {
        present: 0,
        needed: k,
    })
}

/// What [`hybrid_repair`] produces: the (possibly new) codec, the
/// rebuilt blocks in `lost` order, and the replacement generator rows
/// used for parity targets (`None` for data targets).
pub type HybridRepairOutcome = (ReedSolomon, Vec<Vec<u8>>, Vec<Option<Vec<Gf256>>>);

/// Hybrid repair of a whole failed node set: exact for data indices,
/// functional for parity indices. Returns the (possibly new) codec, the
/// rebuilt blocks in `lost` order, and the replacement rows used for
/// parity targets (`None` for data targets).
///
/// `survivor_blocks` maps stripe index → bytes for every live node.
///
/// # Errors
/// Propagates planning/decoding failures from the exact path.
pub fn hybrid_repair(
    rs: &ReedSolomon,
    lost: &[usize],
    survivor_blocks: &[(usize, &[u8])],
    seed: u64,
) -> Result<HybridRepairOutcome, CodeError> {
    let k = rs.params().k();
    let live: Vec<usize> = survivor_blocks.iter().map(|&(i, _)| i).collect();
    let mut current = rs.clone();
    let mut rebuilt = Vec::with_capacity(lost.len());
    let mut rows = Vec::with_capacity(lost.len());
    // Recover the data vector once (needed by both paths).
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
    for i in 0..k {
        if let Some(&(_, bytes)) = survivor_blocks.iter().find(|&&(idx, _)| idx == i) {
            data.push(bytes.to_vec());
        } else {
            let plan = plan_exact_repair(rs, i, &live)?;
            let blocks: Vec<&[u8]> = plan
                .sources
                .iter()
                .map(|s| {
                    survivor_blocks
                        .iter()
                        .find(|&&(idx, _)| idx == *s)
                        .expect("plan sources are live")
                        .1
                })
                .collect();
            data.push(execute_exact_repair(rs, &plan, &blocks)?);
        }
    }
    let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    for (ordinal, &target) in lost.iter().enumerate() {
        if rs.params().is_data_index(target) {
            rebuilt.push(data[target].clone());
            rows.push(None);
        } else {
            let (new_rs, row) = functional_repair_row(&current, target, seed + ordinal as u64)?;
            let mut block = vec![0u8; data_refs[0].len()];
            tq_gf256::slice_ops::linear_combination(&row, &data_refs, &mut block);
            current = new_rs;
            rebuilt.push(block);
            rows.push(Some(row));
        }
    }
    Ok((current, rebuilt, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CodeParams;

    fn setup(n: usize, k: usize) -> (ReedSolomon, Vec<Vec<u8>>) {
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap());
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..48).map(|b| (i * 29 + b * 3) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        (rs, full)
    }

    #[test]
    fn exact_repair_is_bit_identical() {
        let (rs, full) = setup(9, 6);
        for target in 0..9 {
            let live: Vec<usize> = (0..9).filter(|&i| i != target).collect();
            let plan = plan_exact_repair(&rs, target, &live).unwrap();
            assert_eq!(plan.reads(), 6);
            assert_eq!(plan.bytes_read(48), 288);
            let blocks: Vec<&[u8]> = plan.sources.iter().map(|&s| full[s].as_slice()).collect();
            let rebuilt = execute_exact_repair(&rs, &plan, &blocks).unwrap();
            assert_eq!(rebuilt, full[target], "target {target}");
        }
    }

    #[test]
    fn exact_repair_needs_k_survivors() {
        let (rs, _) = setup(6, 4);
        let err = plan_exact_repair(&rs, 0, &[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            CodeError::TooFewShards {
                present: 3,
                needed: 4
            }
        );
        // Target itself in the live list is ignored.
        let err = plan_exact_repair(&rs, 0, &[0, 1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            CodeError::TooFewShards {
                present: 3,
                needed: 4
            }
        );
        assert!(plan_exact_repair(&rs, 9, &[0, 1, 2, 3]).is_err());
    }

    #[test]
    fn functional_repair_keeps_mds() {
        let (rs, full) = setup(9, 6);
        let (new_rs, row) = functional_repair_row(&rs, 7, 42).unwrap();
        assert_eq!(row.len(), 6);
        // New code: re-encode parity 7 with the fresh row, keep the rest.
        let data_refs: Vec<&[u8]> = full[..6].iter().map(|d| d.as_slice()).collect();
        let new_parity = new_rs.encode(&data_refs);
        // Blocks 6 and 8 unchanged, block 7 replaced.
        assert_eq!(new_parity[0], full[6]);
        assert_ne!(new_parity[1], full[7], "functional repair is not exact");
        assert_eq!(new_parity[2], full[8]);
        // Any k of the new stripe reconstructs the data: exhaustive spot
        // check over a handful of subsets including the new block.
        let new_full: Vec<Vec<u8>> = full[..6].iter().cloned().chain(new_parity).collect();
        for subset in [
            [0usize, 1, 2, 3, 4, 7],
            [1, 2, 3, 6, 7, 8],
            [0, 2, 4, 5, 7, 8],
        ] {
            let avail: Vec<(usize, &[u8])> = subset
                .iter()
                .map(|&i| (i, new_full[i].as_slice()))
                .collect();
            for (target, expect) in new_full.iter().enumerate().take(6) {
                assert_eq!(
                    &new_rs.decode_block(target, &avail).unwrap(),
                    expect,
                    "subset {subset:?} target {target}"
                );
            }
        }
    }

    /// Regression (found by the `repair_cost` bench): for (15, 8) a
    /// random replacement row keeps the code MDS with probability ~1e-6,
    /// so the original random search effectively never terminated. The
    /// structured Vandermonde-extension candidates must succeed
    /// immediately, for every parity target and many seeds.
    #[test]
    fn functional_repair_works_at_paper_scale() {
        let (rs, full) = setup(15, 8);
        for lost in 8..15 {
            for seed in [0u64, 1, 42, 0xFFFF_FFFF] {
                let (new_rs, row) = functional_repair_row(&rs, lost, seed).unwrap();
                assert_eq!(row.len(), 8);
                assert!(
                    row.iter().all(|c| !c.is_zero()),
                    "Lagrange basis rows have no zeros"
                );
                // Decode still works from a subset including the new row.
                let data_refs: Vec<&[u8]> = full[..8].iter().map(|d| d.as_slice()).collect();
                let new_parity = new_rs.encode(&data_refs);
                let mut new_full: Vec<Vec<u8>> = full[..8].to_vec();
                new_full.extend(new_parity);
                let subset: Vec<usize> = (1..8).chain([lost]).collect();
                let avail: Vec<(usize, &[u8])> = subset
                    .iter()
                    .map(|&i| (i, new_full[i].as_slice()))
                    .collect();
                assert_eq!(new_rs.decode_block(0, &avail).unwrap(), new_full[0]);
            }
        }
    }

    #[test]
    fn functional_repair_rejects_data_targets() {
        let (rs, _) = setup(6, 4);
        assert!(matches!(
            functional_repair_row(&rs, 2, 1),
            Err(CodeError::IndexOutOfRange { index: 2, .. })
        ));
    }

    #[test]
    fn functional_repair_deterministic_in_seed() {
        let (rs, _) = setup(9, 6);
        let (_, row_a) = functional_repair_row(&rs, 6, 7).unwrap();
        let (_, row_b) = functional_repair_row(&rs, 6, 7).unwrap();
        assert_eq!(row_a, row_b);
        let (_, row_c) = functional_repair_row(&rs, 6, 8).unwrap();
        assert_ne!(row_a, row_c);
    }

    #[test]
    fn hybrid_repair_mixed_loss() {
        let (rs, full) = setup(9, 6);
        // Lose one data and one parity node.
        let lost = [2usize, 7];
        let survivors: Vec<(usize, &[u8])> = (0..9)
            .filter(|i| !lost.contains(i))
            .map(|i| (i, full[i].as_slice()))
            .collect();
        let (new_rs, rebuilt, rows) = hybrid_repair(&rs, &lost, &survivors, 99).unwrap();
        // Data target: exact.
        assert_eq!(rebuilt[0], full[2]);
        assert!(rows[0].is_none());
        // Parity target: functional (fresh row, consistent with data).
        assert!(rows[1].is_some());
        let data_refs: Vec<&[u8]> = full[..6].iter().map(|d| d.as_slice()).collect();
        let reencoded = new_rs.encode(&data_refs);
        assert_eq!(rebuilt[1], reencoded[1], "parity 7 = row · data");
        // The post-repair stripe is still any-k-of-n decodable.
        let mut new_full = full.clone();
        new_full[2] = rebuilt[0].clone();
        new_full[7] = rebuilt[1].clone();
        let avail: Vec<(usize, &[u8])> = [2usize, 3, 6, 7, 8, 5]
            .iter()
            .map(|&i| (i, new_full[i].as_slice()))
            .collect();
        for (target, expect) in new_full.iter().enumerate().take(6) {
            assert_eq!(&new_rs.decode_block(target, &avail).unwrap(), expect);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn exact_repair_any_target_any_live_set(
                k in 1usize..6,
                extra in 1usize..5,
                target_raw in any::<usize>(),
                drop_extra in any::<usize>(),
            ) {
                let n = k + extra;
                let (rs, full) = setup(n, k);
                let target = target_raw % n;
                // Drop one more random node besides the target when the
                // code tolerates it.
                let mut live: Vec<usize> = (0..n).filter(|&i| i != target).collect();
                if extra >= 2 && !live.is_empty() {
                    live.remove(drop_extra % live.len());
                }
                let plan = plan_exact_repair(&rs, target, &live).unwrap();
                let blocks: Vec<&[u8]> =
                    plan.sources.iter().map(|&s| full[s].as_slice()).collect();
                prop_assert_eq!(execute_exact_repair(&rs, &plan, &blocks).unwrap(), full[target].clone());
            }

            #[test]
            fn functional_repair_always_mds(
                k in 1usize..6,
                extra in 1usize..5,
                seed in any::<u64>(),
                which in any::<usize>(),
            ) {
                let n = k + extra;
                let (rs, _) = setup(n, k);
                let lost = k + which % extra;
                let (new_rs, row) = functional_repair_row(&rs, lost, seed).unwrap();
                prop_assert_eq!(row.len(), k);
                prop_assert!(row.iter().all(|c| !c.is_zero()));
                // Structural MDS check on the replacement generator.
                let mut g = tq_gf256::Matrix::zero(n, k);
                for r in 0..n {
                    for c in 0..k {
                        g[(r, c)] = new_rs.generator_row(r)[c];
                    }
                }
                prop_assert!(g.is_mds_generator());
            }
        }
    }
}
