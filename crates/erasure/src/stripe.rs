//! An owned stripe: k data blocks + (n−k) parity blocks kept consistent.
//!
//! `Stripe` is the in-memory model of what the n storage nodes of one
//! stripe collectively hold. It maintains the eq. 1 invariant
//! (`parity = G_parity · data`) under both full writes and delta updates,
//! and tracks a per-data-block version counter — the quantity the
//! trapezoid protocol's version matrix V distributes across nodes.

use tq_gf256::slice_ops;

use crate::code::ReedSolomon;
use crate::delta;
use crate::CodeError;

/// A consistent (data, parity) pair with per-block versions.
#[derive(Debug, Clone)]
pub struct Stripe {
    rs: ReedSolomon,
    block_len: usize,
    data: Vec<Vec<u8>>,
    parity: Vec<Vec<u8>>,
    /// Version of each data block; bumped on every update. Starts at 0
    /// for freshly encoded content (the paper's algorithms compare these
    /// integers to find "the latest version").
    versions: Vec<u64>,
}

impl Stripe {
    /// Encodes `k` data blocks into a fresh stripe at version 0.
    ///
    /// # Panics
    /// Panics if `data.len() != k` or block lengths disagree (programmer
    /// error, mirrors [`ReedSolomon::encode`]).
    pub fn new(rs: ReedSolomon, data: Vec<Vec<u8>>) -> Self {
        let k = rs.params().k();
        assert_eq!(data.len(), k, "stripe needs exactly {k} data blocks");
        let block_len = data[0].len();
        assert!(
            data.iter().all(|d| d.len() == block_len),
            "stripe blocks must share one length"
        );
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        Stripe {
            block_len,
            versions: vec![0; k],
            rs,
            data,
            parity,
        }
    }

    /// Creates an all-zero stripe (parity of zeros is zeros).
    pub fn zeroed(rs: ReedSolomon, block_len: usize) -> Self {
        let k = rs.params().k();
        Stripe::new(rs, vec![vec![0u8; block_len]; k])
    }

    /// The codec this stripe is encoded under.
    pub fn codec(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Block length in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Borrow data block `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ k`.
    pub fn data_block(&self, i: usize) -> &[u8] {
        &self.data[i]
    }

    /// Borrow parity block with stripe index `j ∈ k..n`.
    ///
    /// # Panics
    /// Panics if `j` is not a parity index.
    pub fn parity_block(&self, j: usize) -> &[u8] {
        let k = self.rs.params().k();
        assert!(
            self.rs.params().is_parity_index(j),
            "{j} is not a parity index"
        );
        &self.parity[j - k]
    }

    /// Borrow any block by stripe index.
    pub fn block(&self, idx: usize) -> &[u8] {
        if self.rs.params().is_data_index(idx) {
            self.data_block(idx)
        } else {
            self.parity_block(idx)
        }
    }

    /// Current version of data block `i`.
    pub fn version(&self, i: usize) -> u64 {
        self.versions[i]
    }

    /// Updates data block `i` via the delta path (what Algorithm 1 does
    /// across nodes), bumping its version. Returns the new version.
    ///
    /// # Errors
    /// [`CodeError::ShardSizeMismatch`] if `new.len() != block_len`;
    /// [`CodeError::IndexOutOfRange`] if `i` is not a data index.
    pub fn update_block(&mut self, i: usize, new: &[u8]) -> Result<u64, CodeError> {
        if !self.rs.params().is_data_index(i) {
            return Err(CodeError::IndexOutOfRange {
                index: i,
                n: self.rs.params().k(),
            });
        }
        if new.len() != self.block_len {
            return Err(CodeError::ShardSizeMismatch);
        }
        let deltas = delta::parity_deltas(&self.rs, i, &self.data[i], new)?;
        let k = self.rs.params().k();
        for d in &deltas {
            d.apply(&mut self.parity[d.index - k]);
        }
        self.data[i].copy_from_slice(new);
        self.versions[i] += 1;
        Ok(self.versions[i])
    }

    /// Checks the eq. 1 invariant by re-encoding (test/diagnostic path).
    pub fn is_consistent(&self) -> bool {
        let refs: Vec<&[u8]> = self.data.iter().map(|d| d.as_slice()).collect();
        let expect = self.rs.encode(&refs);
        expect == self.parity
    }

    /// Simulates losing `lost` stripe indices and reconstructing them from
    /// the survivors; returns the reconstructed blocks in `lost` order.
    /// The stripe itself is untouched — this is the repair *computation*,
    /// used by recovery workflows and tests.
    ///
    /// # Errors
    /// Propagates [`CodeError::TooFewShards`] when more than n−k indices
    /// are lost.
    pub fn reconstruct_lost(&self, lost: &[usize]) -> Result<Vec<Vec<u8>>, CodeError> {
        let n = self.rs.params().n();
        for &idx in lost {
            if idx >= n {
                return Err(CodeError::IndexOutOfRange { index: idx, n });
            }
        }
        let available: Vec<(usize, &[u8])> = (0..n)
            .filter(|i| !lost.contains(i))
            .map(|i| (i, self.block(i)))
            .collect();
        lost.iter()
            .map(|&idx| self.rs.decode_block(idx, &available))
            .collect()
    }

    /// XOR-folds a raw parity delta into parity block `j` *without* going
    /// through the data path — models a parity node applying `add(buf)`
    /// independently. Breaks the invariant unless the matching data write
    /// is applied too; exposed for protocol-level tests that need to build
    /// partially-updated states.
    ///
    /// # Panics
    /// Panics if `j` is not a parity index or lengths mismatch.
    pub fn apply_raw_parity_delta(&mut self, j: usize, buf: &[u8]) {
        let k = self.rs.params().k();
        assert!(
            self.rs.params().is_parity_index(j),
            "{j} is not a parity index"
        );
        slice_ops::add_assign(&mut self.parity[j - k], buf);
    }

    /// Overwrites data block `i` *without* touching parity (models a data
    /// node applying `write(x)` in isolation). Protocol-level helper; see
    /// [`Stripe::apply_raw_parity_delta`].
    ///
    /// # Panics
    /// Panics if `i` is not a data index or lengths mismatch.
    pub fn overwrite_data_unchecked(&mut self, i: usize, new: &[u8]) {
        assert!(self.rs.params().is_data_index(i), "{i} is not a data index");
        assert_eq!(new.len(), self.block_len, "block length mismatch");
        self.data[i].copy_from_slice(new);
        self.versions[i] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CodeParams;
    use crate::ReedSolomon;

    fn stripe(n: usize, k: usize) -> Stripe {
        let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap());
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..24).map(|b| (i * 31 + b * 3) as u8).collect())
            .collect();
        Stripe::new(rs, data)
    }

    #[test]
    fn fresh_stripe_is_consistent() {
        let s = stripe(9, 6);
        assert!(s.is_consistent());
        assert_eq!(s.block_len(), 24);
        for i in 0..6 {
            assert_eq!(s.version(i), 0);
        }
    }

    #[test]
    fn zeroed_stripe() {
        let rs = ReedSolomon::new(CodeParams::new(5, 3).unwrap());
        let s = Stripe::zeroed(rs, 16);
        assert!(s.is_consistent());
        for idx in 0..5 {
            assert!(s.block(idx).iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn update_preserves_invariant_and_bumps_version() {
        let mut s = stripe(6, 4);
        let new = vec![0xABu8; 24];
        let v = s.update_block(2, &new).unwrap();
        assert_eq!(v, 1);
        assert_eq!(s.version(2), 1);
        assert_eq!(s.version(0), 0);
        assert_eq!(s.data_block(2), new.as_slice());
        assert!(s.is_consistent());
    }

    #[test]
    fn many_updates_stay_consistent() {
        let mut s = stripe(8, 5);
        for round in 0u8..20 {
            let i = (round as usize * 3) % 5;
            let new: Vec<u8> = (0..24)
                .map(|b| round.wrapping_mul(b as u8).wrapping_add(1))
                .collect();
            s.update_block(i, &new).unwrap();
            assert!(s.is_consistent(), "round {round}");
        }
    }

    #[test]
    fn update_errors() {
        let mut s = stripe(5, 3);
        assert!(matches!(
            s.update_block(3, &[0; 24]),
            Err(CodeError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            s.update_block(0, &[0; 10]),
            Err(CodeError::ShardSizeMismatch)
        ));
    }

    #[test]
    fn reconstruct_lost_round_trip() {
        let s = stripe(9, 6);
        let lost = vec![1usize, 7, 8];
        let rebuilt = s.reconstruct_lost(&lost).unwrap();
        for (b, &idx) in rebuilt.iter().zip(&lost) {
            assert_eq!(b.as_slice(), s.block(idx), "idx {idx}");
        }
    }

    #[test]
    fn reconstruct_too_many_lost_fails() {
        let s = stripe(5, 3);
        assert!(s.reconstruct_lost(&[0, 1, 2]).is_err()); // 3 > n-k = 2
    }

    #[test]
    fn raw_ops_model_partial_writes() {
        let mut s = stripe(6, 4);
        let orig_parity: Vec<u8> = s.parity_block(4).to_vec();
        // Apply only the parity half of an update: invariant breaks.
        let new = vec![0x5Au8; 24];
        let deltas = crate::delta::parity_deltas(s.codec(), 0, s.data_block(0), &new).unwrap();
        s.apply_raw_parity_delta(4, &deltas[0].delta);
        assert!(!s.is_consistent());
        // Apply the data half plus the remaining parity: consistent again.
        s.overwrite_data_unchecked(0, &new);
        s.apply_raw_parity_delta(5, &deltas[1].delta);
        assert!(s.is_consistent());
        assert_ne!(orig_parity, s.parity_block(4));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn random_update_sequences_preserve_invariant(
                k in 1usize..5,
                extra in 1usize..4,
                ops in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..12),
            ) {
                let n = k + extra;
                let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap());
                let mut s = Stripe::zeroed(rs, 16);
                for (raw_i, seed) in ops {
                    let i = raw_i % k;
                    let block: Vec<u8> = (0..16).map(|b| seed.wrapping_add(b as u8)).collect();
                    s.update_block(i, &block).unwrap();
                    prop_assert!(s.is_consistent());
                }
            }

            #[test]
            fn any_recoverable_loss_recovers(
                k in 1usize..5,
                extra in 1usize..4,
                loss_mask in any::<u16>(),
            ) {
                let n = k + extra;
                let rs = ReedSolomon::new(CodeParams::new(n, k).unwrap());
                let data: Vec<Vec<u8>> = (0..k)
                    .map(|i| (0..8).map(|b| (i + b * 5) as u8).collect())
                    .collect();
                let s = Stripe::new(rs, data);
                let lost: Vec<usize> = (0..n).filter(|i| loss_mask & (1 << i) != 0).collect();
                let result = s.reconstruct_lost(&lost);
                if lost.len() <= n - k {
                    let rebuilt = result.unwrap();
                    for (b, &idx) in rebuilt.iter().zip(&lost) {
                        prop_assert_eq!(b.as_slice(), s.block(idx));
                    }
                } else {
                    prop_assert!(result.is_err());
                }
            }
        }
    }
}
