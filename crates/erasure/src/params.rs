//! Validated (n, k) code parameters.

use core::fmt;

/// The parameters of an (n, k) MDS code: k data blocks, n−k parity blocks,
/// any k of the n total reconstruct everything.
///
/// Invariants enforced at construction:
/// * `1 ≤ k ≤ n` — at least one data block, parity count non-negative;
/// * `n ≤ 255` — every block needs a distinct non-zero evaluation point in
///   GF(2⁸) (the paper works "over some finite field, usually GF(2^h)";
///   we fix h = 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    n: usize,
    k: usize,
}

/// Parameter validation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// k was zero.
    ZeroDataBlocks,
    /// k exceeded n.
    KExceedsN {
        /// Requested n.
        n: usize,
        /// Requested k.
        k: usize,
    },
    /// n exceeded the GF(256) limit of 255 blocks.
    TooManyBlocks {
        /// Requested n.
        n: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::ZeroDataBlocks => write!(f, "k must be at least 1"),
            ParamError::KExceedsN { n, k } => {
                write!(f, "k = {k} exceeds n = {n}")
            }
            ParamError::TooManyBlocks { n } => {
                write!(f, "n = {n} exceeds the GF(256) limit of 255 blocks")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl CodeParams {
    /// Validates and constructs an (n, k) parameter pair.
    ///
    /// # Errors
    /// See [`ParamError`].
    pub fn new(n: usize, k: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::ZeroDataBlocks);
        }
        if k > n {
            return Err(ParamError::KExceedsN { n, k });
        }
        if n > 255 {
            return Err(ParamError::TooManyBlocks { n });
        }
        Ok(CodeParams { n, k })
    }

    /// Total number of blocks in a stripe (data + parity).
    #[inline]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Number of data blocks.
    #[inline]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// Number of parity (redundant) blocks, `n − k`.
    #[inline]
    pub const fn parity_count(&self) -> usize {
        self.n - self.k
    }

    /// Maximum number of simultaneous block losses the code tolerates.
    #[inline]
    pub const fn fault_tolerance(&self) -> usize {
        self.parity_count()
    }

    /// Storage expansion factor n/k — eq. 15 of the paper divides through
    /// by blocksize: `D_used = (n/k)·blocksize`.
    #[inline]
    pub fn expansion_factor(&self) -> f64 {
        self.n as f64 / self.k as f64
    }

    /// Storage used by the *full replication* equivalent of this code
    /// (eq. 14): each data block replicated on n−k+1 nodes.
    #[inline]
    pub const fn replication_factor(&self) -> usize {
        self.n - self.k + 1
    }

    /// `true` if index `i` (0-based) refers to a data block.
    #[inline]
    pub const fn is_data_index(&self, i: usize) -> bool {
        i < self.k
    }

    /// `true` if index `i` (0-based) refers to a parity block.
    #[inline]
    pub const fn is_parity_index(&self, i: usize) -> bool {
        i >= self.k && i < self.n
    }

    /// Iterator over data block indices `0..k`.
    pub fn data_indices(&self) -> impl Iterator<Item = usize> {
        0..self.k
    }

    /// Iterator over parity block indices `k..n`.
    pub fn parity_indices(&self) -> impl Iterator<Item = usize> + use<> {
        self.k..self.n
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})-MDS", self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = CodeParams::new(9, 6).unwrap();
        assert_eq!(p.n(), 9);
        assert_eq!(p.k(), 6);
        assert_eq!(p.parity_count(), 3);
        assert_eq!(p.fault_tolerance(), 3);
        assert_eq!(p.replication_factor(), 4);
        assert!((p.expansion_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_k_equals_n() {
        let p = CodeParams::new(4, 4).unwrap();
        assert_eq!(p.parity_count(), 0);
        assert_eq!(p.replication_factor(), 1);
    }

    #[test]
    fn k_one_is_replication() {
        // (n, 1) MDS is n-way replication of a single block.
        let p = CodeParams::new(5, 1).unwrap();
        assert_eq!(p.parity_count(), 4);
        assert!((p.expansion_factor() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_params() {
        assert_eq!(CodeParams::new(5, 0), Err(ParamError::ZeroDataBlocks));
        assert_eq!(
            CodeParams::new(3, 5),
            Err(ParamError::KExceedsN { n: 3, k: 5 })
        );
        assert_eq!(
            CodeParams::new(256, 10),
            Err(ParamError::TooManyBlocks { n: 256 })
        );
    }

    #[test]
    fn index_classification() {
        let p = CodeParams::new(6, 4).unwrap();
        assert!(p.is_data_index(0));
        assert!(p.is_data_index(3));
        assert!(!p.is_data_index(4));
        assert!(p.is_parity_index(4));
        assert!(p.is_parity_index(5));
        assert!(!p.is_parity_index(6));
        assert_eq!(p.data_indices().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(p.parity_indices().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn display() {
        assert_eq!(CodeParams::new(15, 8).unwrap().to_string(), "(15, 8)-MDS");
    }
}
