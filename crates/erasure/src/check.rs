//! Stripe cross-checksum vectors — the metadata the integrity mode
//! stores alongside each stripe version.
//!
//! A stripe's cross-checksum is the vector of 8-lane GF(2⁸) block
//! checksums ([`tq_gf256::check::block_check`]) of its `k` *data*
//! blocks. Because the checksum is GF-linear and parity blocks are
//! linear combinations of data blocks (eq. 1), the data-block vector
//! determines every parity block's expected checksum too
//! ([`expected_parity_check`]) — a reader holding the vector can verify
//! any fetched shard, data or parity, before handing it to the decoder,
//! and a delta write updates exactly one vector entry.

use tq_gf256::check::{block_check, linear_check};

use crate::code::ReedSolomon;

/// The cross-checksum vector of a stripe's data blocks: entry `i` is
/// `block_check(blocks[i])`.
pub fn data_checks(blocks: &[&[u8]]) -> Vec<u64> {
    blocks.iter().map(|b| block_check(b)).collect()
}

/// The expected checksum of parity block `j` (`k ≤ j < n`), derived
/// from the data-block cross-checksum vector alone:
/// `Σ_i combine(α_{j,i}, checks[i])`.
///
/// # Panics
/// Panics if `j` is not a parity index of the codec or `checks` is not
/// `k` entries long.
pub fn expected_parity_check(rs: &ReedSolomon, j: usize, checks: &[u64]) -> u64 {
    let k = rs.params().k();
    assert_eq!(
        checks.len(),
        k,
        "expected_parity_check: cross-checksum vector has {} entries, stripe has k = {k}",
        checks.len()
    );
    // generator_row(j) panics (via the indexing) only on j ≥ n; reject
    // data rows explicitly so misuse fails loudly, not with an identity
    // row silently producing checks[j].
    assert!(
        rs.params().is_parity_index(j),
        "expected_parity_check: {j} is not a parity index of {}",
        rs.params()
    );
    linear_check(&rs.generator_row(j)[..k], checks)
}

/// The expected checksum of *any* block `j` of the stripe: entry `j` of
/// the vector for data blocks, the derived combination for parity
/// blocks.
///
/// # Panics
/// Panics if `j ≥ n` or `checks` is not `k` entries long.
pub fn expected_block_check(rs: &ReedSolomon, j: usize, checks: &[u64]) -> u64 {
    if rs.params().is_data_index(j) {
        checks[j]
    } else {
        expected_parity_check(rs, j, checks)
    }
}

/// Verifies fetched shard bytes against the cross-checksum vector.
/// Returns `true` iff `block_check(bytes)` matches the vector's
/// expectation for block `j`.
///
/// # Panics
/// As [`expected_block_check`].
pub fn verify_block(rs: &ReedSolomon, j: usize, bytes: &[u8], checks: &[u64]) -> bool {
    block_check(bytes) == expected_block_check(rs, j, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodeParams, GeneratorKind};

    fn stripe(rs: &ReedSolomon, len: usize, seed: u8) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let k = rs.params().k();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| seed.wrapping_add((i * 31 + b * 7) as u8))
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        (data, parity)
    }

    #[test]
    fn every_parity_check_is_derivable_from_the_data_vector() {
        for kind in [GeneratorKind::Vandermonde, GeneratorKind::Cauchy] {
            let rs = ReedSolomon::with_generator(CodeParams::new(9, 6).unwrap(), kind);
            let (data, parity) = stripe(&rs, 96, 17);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let checks = data_checks(&refs);
            for (j, p) in parity.iter().enumerate() {
                let j = 6 + j;
                assert_eq!(
                    block_check(p),
                    expected_parity_check(&rs, j, &checks),
                    "parity {j} ({kind:?})"
                );
                assert!(verify_block(&rs, j, p, &checks));
            }
            for (i, d) in data.iter().enumerate() {
                assert!(verify_block(&rs, i, d, &checks));
            }
        }
    }

    #[test]
    fn corruption_in_any_shard_is_flagged() {
        let rs = ReedSolomon::new(CodeParams::new(6, 4).unwrap());
        let (data, parity) = stripe(&rs, 48, 99);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let checks = data_checks(&refs);
        let all: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        for (j, block) in all.iter().enumerate() {
            let mut bad = block.clone();
            let pos = j % bad.len();
            bad[pos] ^= 0x20;
            assert!(
                !verify_block(&rs, j, &bad, &checks),
                "bit flip in shard {j} not flagged"
            );
        }
    }

    #[test]
    fn delta_update_moves_exactly_one_vector_entry() {
        let rs = ReedSolomon::new(CodeParams::new(9, 6).unwrap());
        let (mut data, _) = stripe(&rs, 64, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let old = data_checks(&refs);
        data[2] = vec![0xA5; 64];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let new = data_checks(&refs);
        for i in 0..6 {
            if i == 2 {
                assert_ne!(old[i], new[i]);
            } else {
                assert_eq!(old[i], new[i]);
            }
        }
        // And the new parity expectations follow from the updated vector.
        let parity = rs.encode(&refs);
        for (j, p) in parity.iter().enumerate() {
            assert_eq!(block_check(p), expected_parity_check(&rs, 6 + j, &new));
        }
    }

    #[test]
    #[should_panic(expected = "not a parity index")]
    fn expected_parity_check_rejects_data_rows() {
        let rs = ReedSolomon::new(CodeParams::new(4, 2).unwrap());
        let _ = expected_parity_check(&rs, 1, &[0, 0]);
    }
}
