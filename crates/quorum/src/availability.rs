//! Closed-form availability analysis — §IV of the paper.
//!
//! All formulas assume the paper's model: node availability `p` i.i.d.
//! across nodes, fail-stop failures, perfect links. The building block is
//!
//! ```text
//! Φ_z(i, j) = Σ_{t=i..j} C(z, t) · p^t · (1 − p)^(z−t)      (eq. 7)
//! ```
//!
//! the probability that between `i` and `j` of `z` nodes are live.
//!
//! | quantity | equation | function |
//! |---|---|---|
//! | write availability (FR *and* ERC) | 8, 9 | [`write_availability`] |
//! | read availability, TRAP-FR | 10 | [`read_availability_fr`] |
//! | read availability, TRAP-ERC | 11–13 | [`read_availability_erc`] |
//! | storage per block, TRAP-FR | 14 | [`storage_fr`] |
//! | storage per block, TRAP-ERC | 15 | [`storage_erc`] |
//!
//! The FR formulas are *exact* for the structural predicates in
//! [`crate::trapezoid`] (levels are disjoint, hence independent); the ERC
//! read formula is exact in its P1 term but approximates P2 by dropping
//! the version check when `N_i` is down — `tq-sim` and
//! [`crate::exact`] quantify that gap (see EXPERIMENTS.md).
//!
//! Closed forms for the related-work baselines (majority, ROWA, grid,
//! tree) are included for the comparison benches.

use crate::trapezoid::{TrapezoidShape, WriteThresholds};

/// Binomial coefficient `C(z, t)` as `f64` (exact for `z ≤ 255` well
/// within `f64` range).
pub fn binomial(z: usize, t: usize) -> f64 {
    if t > z {
        return 0.0;
    }
    let t = t.min(z - t);
    let mut acc = 1.0f64;
    for i in 0..t {
        acc = acc * (z - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Eq. 7: probability that between `lo` and `hi` (inclusive) of `z`
/// Bernoulli(`p`) nodes are live. Out-of-range bounds are clamped;
/// an empty range yields 0.
pub fn phi(z: usize, lo: usize, hi: usize, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    let hi = hi.min(z);
    if lo > hi {
        return 0.0;
    }
    let q = 1.0 - p;
    let mut sum = 0.0;
    for t in lo..=hi {
        sum += binomial(z, t) * p.powi(t as i32) * q.powi((z - t) as i32);
    }
    // Clamp tiny negative / >1 excursions from floating-point noise.
    sum.clamp(0.0, 1.0)
}

/// Eqs. 8 and 9 — write availability of the trapezoid protocol, identical
/// under full replication and ERC (the paper's "first noticeable point"):
/// every level `l` must have at least `w_l` live nodes.
pub fn write_availability(shape: &TrapezoidShape, th: &WriteThresholds, p: f64) -> f64 {
    (0..shape.num_levels())
        .map(|l| {
            phi(
                shape.level_size(l),
                th.write_threshold(l),
                shape.level_size(l),
                p,
            )
        })
        .product()
}

/// Eq. 10 — read availability of TRAP-FR: some level `l` has at least
/// `r_l = s_l − w_l + 1` live nodes.
pub fn read_availability_fr(shape: &TrapezoidShape, th: &WriteThresholds, p: f64) -> f64 {
    1.0 - (0..shape.num_levels())
        .map(|l| {
            1.0 - phi(
                shape.level_size(l),
                th.read_threshold(shape, l),
                shape.level_size(l),
                p,
            )
        })
        .product::<f64>()
}

/// Eqs. 11–13 — read availability of TRAP-ERC for an `(n, k)` stripe
/// whose per-block trapezoid has the given shape/thresholds
/// (`shape.node_count()` must equal `n − k + 1`; debug-asserted).
///
/// `P1` (block served by `N_i` directly): `N_i` live and the version
/// check passes on some level, where level 0 already counts `N_i`
/// (`λ_0 = s_0 − 1`, `β_0 = max(0, r_0 − 2)`) and higher levels need the
/// full `r_l` (`λ_l = s_l`, `β_l = r_l − 1`).
///
/// `P2` (decode path): `N_i` down, at least `k` of the remaining `n − 1`
/// stripe nodes live.
pub fn read_availability_erc(
    shape: &TrapezoidShape,
    th: &WriteThresholds,
    n: usize,
    k: usize,
    p: f64,
) -> f64 {
    debug_assert_eq!(
        shape.node_count(),
        n - k + 1,
        "trapezoid must organise n-k+1 nodes (eq. 5)"
    );
    // Π_l Φ_{λ_l}(0, β_l): probability the version check fails on every
    // level, given N_i live.
    let all_levels_fail: f64 = (0..shape.num_levels())
        .map(|l| {
            let r = th.read_threshold(shape, l);
            let (lambda, beta) = if l == 0 {
                (shape.level_size(0) - 1, r.saturating_sub(2)) // eq. 11/12, level 0
            } else {
                (shape.level_size(l), r - 1)
            };
            phi(lambda, 0, beta, p)
        })
        .product();
    let p1 = p * (1.0 - all_levels_fail);
    let p2 = (1.0 - p) * phi(n - 1, k, n - 1, p);
    p1 + p2
}

/// Eq. 14 — disk space (in block units) to store one data block under
/// full replication on `n − k + 1` nodes.
pub fn storage_fr(n: usize, k: usize) -> f64 {
    debug_assert!(k >= 1 && k <= n);
    (n - k + 1) as f64
}

/// Eq. 15 — disk space (in block units) to store one data block under the
/// (n, k) ERC scheme: the block itself plus `n − k` coded fragments of
/// `1/k` block each.
pub fn storage_erc(n: usize, k: usize) -> f64 {
    debug_assert!(k >= 1 && k <= n);
    n as f64 / k as f64
}

// ---------------------------------------------------------------------
// Baseline closed forms (related-work protocols, §II).
// ---------------------------------------------------------------------

/// Majority quorum availability (read = write): at least `⌊n/2⌋ + 1` of
/// `n` live.
pub fn majority_availability(n: usize, p: f64) -> f64 {
    phi(n, n / 2 + 1, n, p)
}

/// ROWA write availability: all `n` live.
pub fn rowa_write_availability(n: usize, p: f64) -> f64 {
    p.powi(n as i32)
}

/// ROWA read availability: at least one of `n` live.
pub fn rowa_read_availability(n: usize, p: f64) -> f64 {
    1.0 - (1.0 - p).powi(n as i32)
}

/// Grid read availability: every column (height `rows`) has a live node.
pub fn grid_read_availability(rows: usize, cols: usize, p: f64) -> f64 {
    let q = 1.0 - p;
    (1.0 - q.powi(rows as i32)).powi(cols as i32)
}

/// Grid write availability: every column has a live node *and* at least
/// one column is fully live. Columns are independent, so
/// `P = Π(1 − q^R) − Π(1 − q^R − p^R)` (second term: covers with no full
/// column).
pub fn grid_write_availability(rows: usize, cols: usize, p: f64) -> f64 {
    let q = 1.0 - p;
    let cover = 1.0 - q.powi(rows as i32);
    let cover_not_full = cover - p.powi(rows as i32);
    (cover.powi(cols as i32) - cover_not_full.powi(cols as i32)).clamp(0.0, 1.0)
}

/// Tree quorum availability for a complete binary tree of `depth`:
/// `A(0) = p`, `A(d) = p·(1 − (1 − A)²) + (1 − p)·A²` with `A = A(d−1)`
/// (live root continues into either subtree; dead root needs both).
pub fn tree_availability(depth: usize, p: f64) -> f64 {
    let mut a = p;
    for _ in 0..depth {
        a = p * (1.0 - (1.0 - a) * (1.0 - a)) + (1.0 - p) * a * a;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_availability;
    use crate::grid::GridQuorum;
    use crate::majority::MajorityQuorum;
    use crate::rowa::Rowa;
    use crate::system::QuorumSystem;
    use crate::trapezoid::{TrapErcSystem, TrapezoidQuorum};
    use crate::tree::TreeQuorum;

    const PS: [f64; 7] = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
    const TOL: f64 = 1e-12;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 6), 0.0);
        assert_eq!(binomial(14, 7), 3432.0);
        // Symmetry.
        for z in 0..30 {
            for t in 0..=z {
                assert!((binomial(z, t) - binomial(z, z - t)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn phi_basic_identities() {
        for &p in &PS {
            // Full range sums to 1.
            for z in 0..20 {
                assert!((phi(z, 0, z, p) - 1.0).abs() < TOL, "z={z} p={p}");
            }
            // Empty range.
            assert_eq!(phi(5, 3, 2, p), 0.0);
            // Single point z=0.
            assert_eq!(phi(0, 0, 0, p), 1.0);
            assert_eq!(phi(0, 1, 5, p), 0.0);
        }
        // Φ_3(2,3) at p = 0.5 = (C(3,2) + C(3,3)) / 8 = 4/8.
        assert!((phi(3, 2, 3, 0.5) - 0.5).abs() < TOL);
        // Clamped hi.
        assert!((phi(3, 2, 99, 0.5) - 0.5).abs() < TOL);
    }

    #[test]
    fn phi_monotone_in_p_for_upper_tail() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let v = phi(10, 6, 10, p);
            assert!(v >= prev - TOL, "upper-tail Φ must grow with p");
            prev = v;
        }
    }

    fn fig1() -> (TrapezoidShape, WriteThresholds) {
        let s = TrapezoidShape::new(2, 3, 2).unwrap();
        let w = WriteThresholds::paper_default(&s, 2).unwrap();
        (s, w)
    }

    #[test]
    fn write_availability_bounds_and_monotonicity() {
        let (s, w) = fig1();
        let mut prev = -1.0;
        for i in 0..=50 {
            let p = i as f64 / 50.0;
            let v = write_availability(&s, &w, p);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev - TOL);
            prev = v;
        }
        assert_eq!(write_availability(&s, &w, 0.0), 0.0);
        assert_eq!(write_availability(&s, &w, 1.0), 1.0);
    }

    /// Eq. 8 is exact: validate against exhaustive 2^N enumeration of the
    /// structural write predicate.
    #[test]
    fn eq8_matches_exact_enumeration() {
        for (a, b, h, wparam) in [
            (2usize, 3usize, 2usize, 2usize),
            (0, 4, 1, 2),
            (1, 2, 2, 1),
            (0, 3, 1, 3),
        ] {
            let s = TrapezoidShape::new(a, b, h).unwrap();
            let th = WriteThresholds::paper_default(&s, wparam).unwrap();
            let q = TrapezoidQuorum::new(s, th.clone());
            for &p in &[0.2, 0.5, 0.8] {
                let exact = exact_availability(q.node_count(), p, |up| q.is_write_available(up));
                let formula = write_availability(&s, &th, p);
                assert!(
                    (exact - formula).abs() < 1e-9,
                    "shape ({a},{b},{h}) w={wparam} p={p}: exact {exact} vs eq8 {formula}"
                );
            }
        }
    }

    /// Eq. 10 is exact: levels are disjoint node sets.
    #[test]
    fn eq10_matches_exact_enumeration() {
        for (a, b, h, wparam) in [(2usize, 3usize, 2usize, 2usize), (0, 4, 1, 2), (1, 2, 2, 1)] {
            let s = TrapezoidShape::new(a, b, h).unwrap();
            let th = WriteThresholds::paper_default(&s, wparam).unwrap();
            let q = TrapezoidQuorum::new(s, th.clone());
            for &p in &[0.2, 0.5, 0.8] {
                let exact = exact_availability(q.node_count(), p, |up| q.is_read_available(up));
                let formula = read_availability_fr(&s, &th, p);
                assert!(
                    (exact - formula).abs() < 1e-9,
                    "shape ({a},{b},{h}) w={wparam} p={p}: exact {exact} vs eq10 {formula}"
                );
            }
        }
    }

    /// Eq. 13: the P1 term is exact; P2 drops the version check, so the
    /// formula upper-bounds the structural predicate. Check both the
    /// bound and that the gap is small for the paper's parameter ranges.
    #[test]
    fn eq13_upper_bounds_structural_predicate() {
        // (15, 8) stripe is too wide to enumerate (2^15 fine actually).
        let s = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        let sys = TrapErcSystem::new(s, th.clone(), 15, 8, 0).unwrap();
        for &p in &[0.3, 0.5, 0.7, 0.9] {
            let exact = exact_availability(15, p, |up| sys.is_read_available(up));
            let formula = read_availability_erc(&s, &th, 15, 8, p);
            assert!(
                formula >= exact - 1e-9,
                "p={p}: eq13 {formula} below exact {exact}"
            );
            assert!(
                (formula - exact).abs() < 0.06,
                "p={p}: gap {:.4} unexpectedly large",
                formula - exact
            );
        }
    }

    /// Reproduction finding: eq. 11 sets `β_0 = max(0, r_0 − 2)`, which is
    /// only correct for `r_0 ≥ 2`. When `r_0 = 1` (i.e. `b ≤ 2`, since
    /// `r_0 = ⌈b/2⌉`), a live `N_i` alone completes the level-0 version
    /// check, so the check *never* fails given `N_i` live — but the
    /// formula still charges `Φ_{λ_0}(0, 0) = (1−p)^{λ_0} > 0` against it.
    /// eq. 13 then grossly *underestimates* availability (e.g. 0.011 vs
    /// the true 0.109 at p = 0.1 for shape (0, 2, 1), n = 15, k = 12).
    #[test]
    fn eq13_underestimates_when_r0_is_one() {
        let s = TrapezoidShape::new(0, 2, 1).unwrap(); // b = 2 ⇒ r_0 = 1
        let th = WriteThresholds::paper_default(&s, 1).unwrap();
        assert_eq!(th.read_threshold(&s, 0), 1);
        let sys = TrapErcSystem::new(s, th.clone(), 15, 12, 0).unwrap();
        let p = 0.1;
        let formula = read_availability_erc(&s, &th, 15, 12, p);
        let exact = exact_availability(15, p, |up| sys.is_read_available(up));
        assert!(
            exact > 5.0 * formula,
            "expected gross underestimate: formula {formula}, exact {exact}"
        );
        // For r_0 >= 2 shapes the formula stays an upper bound instead.
        let s2 = TrapezoidShape::new(0, 4, 0).unwrap();
        let th2 = WriteThresholds::paper_default(&s2, 1).unwrap();
        let sys2 = TrapErcSystem::new(s2, th2.clone(), 15, 12, 0).unwrap();
        let f2 = read_availability_erc(&s2, &th2, 15, 12, p);
        let e2 = exact_availability(15, p, |up| sys2.is_read_available(up));
        assert!(f2 >= e2 - 1e-9, "r_0 >= 2: formula {f2} vs exact {e2}");
    }

    #[test]
    fn erc_read_below_fr_read() {
        // The paper's Fig. 3 claim: ERC read availability never exceeds
        // FR's, and the two coincide for p >= 0.8 (within ~2%).
        let s = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let fr = read_availability_fr(&s, &th, p);
            let erc = read_availability_erc(&s, &th, 15, 8, p);
            assert!(erc <= fr + 0.02, "p={p}: erc {erc} > fr {fr}");
        }
        for i in 16..=20 {
            let p = i as f64 / 20.0;
            let fr = read_availability_fr(&s, &th, p);
            let erc = read_availability_erc(&s, &th, 15, 8, p);
            assert!((fr - erc).abs() < 0.02, "p={p}: curves should merge");
        }
    }

    #[test]
    fn fig3_anchor_points() {
        // §IV-D: at p = 0.5 FR reads ≈ 0.75 and ERC reads ≈ 0.63
        // (the paper says "write" but the context is Fig. 3 / reads).
        let s = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        let fr = read_availability_fr(&s, &th, 0.5);
        let erc = read_availability_erc(&s, &th, 15, 8, 0.5);
        assert!((fr - 0.75).abs() < 0.06, "FR at p=0.5: {fr}");
        assert!((erc - 0.63).abs() < 0.06, "ERC at p=0.5: {erc}");
    }

    #[test]
    fn storage_equations() {
        // Fig. 5 example: n = 15, k = 8 — FR uses 8 blocks, ERC n/k.
        assert_eq!(storage_fr(15, 8), 8.0);
        assert!((storage_erc(15, 8) - 1.875).abs() < TOL);
        // ERC never uses more space than FR (k ≥ 1):
        for k in 1..=15 {
            assert!(storage_erc(15, k) <= storage_fr(15, k) + TOL, "k={k}");
        }
        // k = 1: both store n block-equivalents.
        assert_eq!(storage_fr(15, 15), 1.0);
        assert!((storage_erc(15, 1) - storage_fr(15, 1)).abs() < TOL);
    }

    #[test]
    fn majority_closed_form_matches_exact() {
        for n in [3usize, 5, 8, 11] {
            let m = MajorityQuorum::new(n);
            for &p in &[0.3, 0.5, 0.8] {
                let exact = exact_availability(n, p, |up| m.is_write_available(up));
                assert!((exact - majority_availability(n, p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rowa_closed_form_matches_exact() {
        for n in [1usize, 4, 9] {
            let r = Rowa::new(n);
            for &p in &[0.25, 0.6, 0.95] {
                let ew = exact_availability(n, p, |up| r.is_write_available(up));
                let er = exact_availability(n, p, |up| r.is_read_available(up));
                assert!((ew - rowa_write_availability(n, p)).abs() < 1e-9);
                assert!((er - rowa_read_availability(n, p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn grid_closed_form_matches_exact() {
        for (rows, cols) in [(2usize, 2usize), (2, 3), (3, 3), (4, 2)] {
            let g = GridQuorum::new(rows, cols);
            for &p in &[0.3, 0.5, 0.8] {
                let er = exact_availability(rows * cols, p, |up| g.is_read_available(up));
                let ew = exact_availability(rows * cols, p, |up| g.is_write_available(up));
                assert!(
                    (er - grid_read_availability(rows, cols, p)).abs() < 1e-9,
                    "{rows}x{cols} read p={p}"
                );
                assert!(
                    (ew - grid_write_availability(rows, cols, p)).abs() < 1e-9,
                    "{rows}x{cols} write p={p}"
                );
            }
        }
    }

    #[test]
    fn tree_closed_form_matches_exact() {
        for depth in [0usize, 1, 2, 3] {
            let t = TreeQuorum::new(depth);
            for &p in &[0.3, 0.5, 0.8] {
                let exact = exact_availability(t.node_count(), p, |up| t.is_write_available(up));
                assert!(
                    (exact - tree_availability(depth, p)).abs() < 1e-9,
                    "depth {depth} p {p}"
                );
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn all_availabilities_in_unit_interval(
                a in 0usize..3,
                b in 1usize..4,
                h in 0usize..3,
                w in 1usize..4,
                p in 0.0f64..=1.0,
            ) {
                let Ok(s) = TrapezoidShape::new(a, b, h) else { return Ok(()); };
                let Ok(th) = WriteThresholds::paper_default(&s, w) else { return Ok(()); };
                let nb = s.node_count();
                let k = 3usize;
                let n = nb - 1 + k;
                for v in [
                    write_availability(&s, &th, p),
                    read_availability_fr(&s, &th, p),
                    read_availability_erc(&s, &th, n, k, p),
                ] {
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{v}");
                }
            }

            #[test]
            fn read_erc_monotone_in_p(
                w in 1usize..4,
                steps in 2usize..20,
            ) {
                let s = TrapezoidShape::new(0, 4, 1).unwrap();
                let Ok(th) = WriteThresholds::paper_default(&s, w) else { return Ok(()); };
                let mut prev = -1.0;
                for i in 0..=steps {
                    let p = i as f64 / steps as f64;
                    let v = read_availability_erc(&s, &th, 15, 8, p);
                    prop_assert!(v >= prev - 1e-9, "p={p}: {v} < {prev}");
                    prev = v;
                }
            }

            #[test]
            fn more_parity_improves_erc_reads(p in 0.05f64..0.95) {
                // Fig. 4's claim: larger n−k ⇒ better read availability.
                // Family: h = 1, b = (n−k+1)/2 even splits, k fixed at 8.
                let mut prev = -1.0;
                for half in [2usize, 3, 4] {
                    let s = TrapezoidShape::new(0, half, 1).unwrap();
                    let th = WriteThresholds::paper_default(&s, (half / 2).max(1)).unwrap();
                    let nbnode = 2 * half;
                    let k = 8;
                    let n = nbnode - 1 + k;
                    let v = read_availability_erc(&s, &th, n, k, p);
                    prop_assert!(
                        v >= prev - 0.02,
                        "n-k = {}: {v} dropped well below previous {prev}",
                        nbnode - 1
                    );
                    prev = v;
                }
            }
        }
    }
}
