//! The grid protocol (Cheung, Ammar & Ahamad 1990) — reference \[4\].
//!
//! Replicas are arranged in an `rows × cols` logical grid (row-major
//! node indexing: node `r·cols + c` sits at row `r`, column `c`).
//!
//! * A **read quorum** is one node from *every column* (a "c-cover").
//! * A **write quorum** is one full column plus one node from every other
//!   column.
//!
//! Any write's full column intersects any read's column cover, and two
//! writes intersect because each write's cover hits the other's full
//! column. Availability has a clean closed form because column states are
//! independent — see [`crate::availability::grid_read_availability`].

use crate::nodeset::NodeSet;
use crate::system::QuorumSystem;

/// Grid quorum over `rows × cols` replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridQuorum {
    rows: usize,
    cols: usize,
}

impl GridQuorum {
    /// Builds a grid of `rows × cols` nodes.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the grid exceeds the
    /// [`NodeSet`] capacity.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid dimensions must be non-zero");
        assert!(
            rows * cols <= crate::nodeset::MAX_NODES,
            "grid limited to {} nodes",
            crate::nodeset::MAX_NODES
        );
        GridQuorum { rows, cols }
    }

    /// Grid height.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Node index at `(row, col)`.
    pub const fn node_at(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// Count of live nodes in column `c`.
    fn live_in_column(&self, up: NodeSet, c: usize) -> usize {
        (0..self.rows)
            .filter(|&r| up.contains(self.node_at(r, c)))
            .count()
    }

    /// `true` iff every column has at least one live node.
    pub fn column_cover_available(&self, up: NodeSet) -> bool {
        (0..self.cols).all(|c| self.live_in_column(up, c) >= 1)
    }

    /// `true` iff some column is fully live.
    pub fn full_column_available(&self, up: NodeSet) -> bool {
        (0..self.cols).any(|c| self.live_in_column(up, c) == self.rows)
    }
}

impl QuorumSystem for GridQuorum {
    fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    /// One full column plus a cover of the rest; the cover requirement
    /// collapses to "every column live ≥ 1" given the full column.
    fn is_write_available(&self, up: NodeSet) -> bool {
        self.full_column_available(up) && self.column_cover_available(up)
    }

    fn is_read_available(&self, up: NodeSet) -> bool {
        self.column_cover_available(up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_by_three_basics() {
        let g = GridQuorum::new(3, 3);
        assert_eq!(g.node_count(), 9);
        assert!(g.is_write_available(NodeSet::full(9)));
        assert!(g.is_read_available(NodeSet::full(9)));
    }

    #[test]
    fn read_needs_column_cover() {
        let g = GridQuorum::new(2, 3);
        // One node in each column: nodes (0,0), (1,1), (0,2) = 0, 4, 2.
        let up = NodeSet::from_indices([0, 4, 2]);
        assert!(g.is_read_available(up));
        // Kill column 1 entirely: read impossible.
        let up = NodeSet::from_indices([0, 2, 3, 5]);
        assert!(!g.is_read_available(up));
    }

    #[test]
    fn write_needs_full_column() {
        let g = GridQuorum::new(2, 3);
        // Column 0 full (nodes 0, 3) + cover of columns 1, 2 (nodes 1, 2).
        let up = NodeSet::from_indices([0, 3, 1, 2]);
        assert!(g.is_write_available(up));
        // Cover without any full column.
        let up = NodeSet::from_indices([0, 1, 2]);
        assert!(g.is_read_available(up));
        assert!(!g.is_write_available(up));
        // Full column but a dead column elsewhere.
        let up = NodeSet::from_indices([0, 3, 1]);
        assert!(!g.is_write_available(up));
    }

    #[test]
    fn write_implies_read() {
        // Structural: every write-available state is read-available.
        let g = GridQuorum::new(2, 2);
        for bits in 0u128..16 {
            let up = NodeSet::from_bits(bits);
            if g.is_write_available(up) {
                assert!(g.is_read_available(up), "{up:?}");
            }
        }
    }

    #[test]
    fn quorum_intersections_exhaustive() {
        // For a 2x2 grid enumerate all (read, write) pairs of minimal
        // quorums and verify intersection structurally: any write's full
        // column meets any read's cover.
        // Minimal read quorums: one node per column.
        let reads = [
            NodeSet::from_indices([0, 1]),
            NodeSet::from_indices([0, 3]),
            NodeSet::from_indices([2, 1]),
            NodeSet::from_indices([2, 3]),
        ];
        // Minimal write quorums: full column + one from the other.
        let writes = [
            NodeSet::from_indices([0, 2, 1]),
            NodeSet::from_indices([0, 2, 3]),
            NodeSet::from_indices([1, 3, 0]),
            NodeSet::from_indices([1, 3, 2]),
        ];
        for r in &reads {
            for w in &writes {
                assert!(r.intersects(*w), "read {r:?} write {w:?}");
            }
        }
        for w1 in &writes {
            for w2 in &writes {
                assert!(w1.intersects(*w2));
            }
        }
    }
}
