//! The trapezoid quorum geometry (§III-B of the paper).
//!
//! Nodes are arranged on a logical trapezoid of `h + 1` levels; level `l`
//! holds `s_l = a·l + b` nodes (`a ≥ 0`, `b ≥ 1`). Figure 1 of the paper
//! is `a = 2, b = 3, h = 2`: levels of 3, 5 and 7 nodes, 15 nodes total.
//!
//! * A **write quorum** takes `w_l` arbitrary nodes *from every level*,
//!   with `w_0 = ⌊b/2⌋ + 1` (an absolute majority of level 0 — this alone
//!   guarantees any two write quorums intersect) and `1 ≤ w_l ≤ s_l`
//!   elsewhere.
//! * A **read** checks versions on `r_l = s_l − w_l + 1` nodes of *some*
//!   level; `r_l + w_l > s_l` forces read/write intersection per level.
//!
//! Two [`QuorumSystem`] views are provided:
//!
//! * [`TrapezoidQuorum`] — the classical full-replication protocol
//!   (TRAP-FR): every trapezoid node holds a full copy.
//! * [`TrapErcSystem`] — the paper's contribution (TRAP-ERC): the
//!   trapezoid organises the `n − k + 1` nodes relevant to one data block
//!   `b_i` (`N_i` at level 0 plus all parity nodes), while reads that find
//!   `N_i` stale must decode from any `k` of the full stripe's `n` nodes.

use core::fmt;

use crate::nodeset::NodeSet;
use crate::system::QuorumSystem;

/// Errors from shape/threshold validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// `b` must be at least 1 so level 0 is non-empty.
    EmptyBaseLevel,
    /// The shape would exceed [`crate::nodeset::MAX_NODES`] nodes.
    TooManyNodes {
        /// Total node count requested.
        count: usize,
    },
    /// A threshold `w_l` fell outside `1..=s_l`.
    ThresholdOutOfRange {
        /// Level of the offending threshold.
        level: usize,
        /// The threshold value.
        w: usize,
        /// The level size `s_l`.
        s: usize,
    },
    /// `w_0` was below the absolute majority `⌊b/2⌋ + 1` required for
    /// write–write intersection (eq. 3).
    Level0NotMajority {
        /// The requested `w_0`.
        w0: usize,
        /// The minimum legal value.
        needed: usize,
    },
    /// Threshold vector length differs from `h + 1`.
    WrongThresholdCount {
        /// Provided length.
        got: usize,
        /// Expected `h + 1`.
        expected: usize,
    },
    /// Trapezoid node count does not match the (n, k) stripe it should
    /// organise (`node_count == n − k + 1`).
    StripeMismatch {
        /// The trapezoid's node count.
        node_count: usize,
        /// Expected `n − k + 1`.
        expected: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::EmptyBaseLevel => write!(f, "b must be >= 1 (level 0 non-empty)"),
            ShapeError::TooManyNodes { count } => {
                write!(f, "trapezoid of {count} nodes exceeds the NodeSet limit")
            }
            ShapeError::ThresholdOutOfRange { level, w, s } => {
                write!(f, "w_{level} = {w} outside 1..={s}")
            }
            ShapeError::Level0NotMajority { w0, needed } => {
                write!(f, "w_0 = {w0} below level-0 majority {needed}")
            }
            ShapeError::WrongThresholdCount { got, expected } => {
                write!(f, "expected {expected} thresholds, got {got}")
            }
            ShapeError::StripeMismatch {
                node_count,
                expected,
            } => write!(
                f,
                "trapezoid has {node_count} nodes but the stripe needs n-k+1 = {expected}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// The `(a, b, h)` parameters of a trapezoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrapezoidShape {
    a: usize,
    b: usize,
    h: usize,
}

impl TrapezoidShape {
    /// Validates and builds a shape.
    ///
    /// # Errors
    /// [`ShapeError::EmptyBaseLevel`] if `b = 0`;
    /// [`ShapeError::TooManyNodes`] if the node count exceeds the
    /// [`NodeSet`] capacity.
    pub fn new(a: usize, b: usize, h: usize) -> Result<Self, ShapeError> {
        if b == 0 {
            return Err(ShapeError::EmptyBaseLevel);
        }
        let shape = TrapezoidShape { a, b, h };
        let count = shape.node_count();
        if count > crate::nodeset::MAX_NODES {
            return Err(ShapeError::TooManyNodes { count });
        }
        Ok(shape)
    }

    /// Slope `a` of the level sizes.
    pub const fn a(&self) -> usize {
        self.a
    }

    /// Size `b` of level 0.
    pub const fn b(&self) -> usize {
        self.b
    }

    /// Highest level index `h` (the trapezoid has `h + 1` levels).
    pub const fn h(&self) -> usize {
        self.h
    }

    /// Number of levels, `h + 1`.
    pub const fn num_levels(&self) -> usize {
        self.h + 1
    }

    /// `s_l = a·l + b`, the number of nodes on level `l`.
    ///
    /// # Panics
    /// Panics if `l > h`.
    pub fn level_size(&self, l: usize) -> usize {
        assert!(l <= self.h, "level {l} beyond h = {}", self.h);
        self.a * l + self.b
    }

    /// Total node count: eq. 4, `Σ_{l=0..h} s_l`.
    pub const fn node_count(&self) -> usize {
        // (h+1)·b + a·h(h+1)/2
        (self.h + 1) * self.b + self.a * self.h * (self.h + 1) / 2
    }

    /// Offset of level `l`'s first position in level-major ordering
    /// (level 0 occupies positions `0..s_0`, level 1 the next `s_1`, …).
    pub fn level_offset(&self, l: usize) -> usize {
        assert!(l <= self.h, "level {l} beyond h = {}", self.h);
        (0..l).map(|i| self.level_size(i)).sum()
    }

    /// Position range of level `l` in level-major ordering.
    pub fn level_range(&self, l: usize) -> core::ops::Range<usize> {
        let off = self.level_offset(l);
        off..off + self.level_size(l)
    }

    /// Level containing position `pos`.
    ///
    /// # Panics
    /// Panics if `pos ≥ node_count()`.
    pub fn level_of(&self, pos: usize) -> usize {
        assert!(pos < self.node_count(), "position {pos} out of range");
        let mut remaining = pos;
        for l in 0..=self.h {
            let s = self.level_size(l);
            if remaining < s {
                return l;
            }
            remaining -= s;
        }
        unreachable!("pos checked against node_count")
    }

    /// Enumerates every `(a, b, h)` shape with exactly `count` nodes —
    /// used to pick configurations for a given `n − k + 1` (the paper
    /// fixes `Nbnode = n − k + 1`, eq. 5).
    pub fn with_node_count(count: usize) -> Vec<TrapezoidShape> {
        let mut shapes = Vec::new();
        if count == 0 || count > crate::nodeset::MAX_NODES {
            return shapes;
        }
        for h in 0..count {
            for b in 1..=count {
                // count = (h+1)b + a·h(h+1)/2  ⇒ solve for integer a ≥ 0.
                let base = (h + 1) * b;
                if base > count {
                    break;
                }
                let rem = count - base;
                if h == 0 {
                    if rem == 0 {
                        shapes.push(TrapezoidShape { a: 0, b, h });
                        // Any `a` works when h = 0 (no higher levels), but
                        // a = 0 is the canonical representative.
                    }
                    continue;
                }
                let denom = h * (h + 1) / 2;
                if rem.is_multiple_of(denom) {
                    let a = rem / denom;
                    shapes.push(TrapezoidShape { a, b, h });
                }
            }
        }
        shapes
    }
}

impl fmt::Display for TrapezoidShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trapezoid(a={}, b={}, h={}; s=[{}])",
            self.a,
            self.b,
            self.h,
            (0..=self.h)
                .map(|l| self.level_size(l).to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Per-level write thresholds `w_l`, with read thresholds derived as
/// `r_l = s_l − w_l + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteThresholds {
    w: Vec<usize>,
}

impl WriteThresholds {
    /// Validates an explicit threshold vector against a shape.
    ///
    /// # Errors
    /// Rejects wrong length, out-of-range `w_l`, and a non-majority `w_0`
    /// (the paper *fixes* `w_0 = ⌊b/2⌋ + 1`; any `w_0` at or above that
    /// majority preserves the intersection proofs, so we accept `≥`).
    pub fn new(shape: &TrapezoidShape, w: Vec<usize>) -> Result<Self, ShapeError> {
        if w.len() != shape.num_levels() {
            return Err(ShapeError::WrongThresholdCount {
                got: w.len(),
                expected: shape.num_levels(),
            });
        }
        let majority = shape.b() / 2 + 1;
        if w[0] < majority {
            return Err(ShapeError::Level0NotMajority {
                w0: w[0],
                needed: majority,
            });
        }
        for (l, &wl) in w.iter().enumerate() {
            let s = shape.level_size(l);
            if wl < 1 || wl > s {
                return Err(ShapeError::ThresholdOutOfRange { level: l, w: wl, s });
            }
        }
        Ok(WriteThresholds { w })
    }

    /// The paper's eq. 16 parameterisation: `w_0 = ⌊b/2⌋ + 1` and a single
    /// `w` for every level `1..=h` (`1 ≤ w ≤ s_1`).
    ///
    /// # Errors
    /// [`ShapeError::ThresholdOutOfRange`] if `w` exceeds some `s_l`
    /// (possible only when `w > s_1` since sizes grow with `l`).
    pub fn paper_default(shape: &TrapezoidShape, w: usize) -> Result<Self, ShapeError> {
        let mut v = Vec::with_capacity(shape.num_levels());
        v.push(shape.b() / 2 + 1);
        for _ in 1..shape.num_levels() {
            v.push(w);
        }
        WriteThresholds::new(shape, v)
    }

    /// `w_l`.
    pub fn write_threshold(&self, l: usize) -> usize {
        self.w[l]
    }

    /// `r_l = s_l − w_l + 1` — the version-check threshold of Algorithm 2.
    pub fn read_threshold(&self, shape: &TrapezoidShape, l: usize) -> usize {
        shape.level_size(l) - self.w[l] + 1
    }

    /// Borrow the full vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.w
    }
}

/// TRAP-FR: the classical trapezoid protocol over full replicas.
///
/// Node indices are level-major positions `0..shape.node_count()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapezoidQuorum {
    shape: TrapezoidShape,
    thresholds: WriteThresholds,
}

impl TrapezoidQuorum {
    /// Bundles a validated shape and thresholds.
    pub fn new(shape: TrapezoidShape, thresholds: WriteThresholds) -> Self {
        TrapezoidQuorum { shape, thresholds }
    }

    /// The shape.
    pub fn shape(&self) -> &TrapezoidShape {
        &self.shape
    }

    /// The thresholds.
    pub fn thresholds(&self) -> &WriteThresholds {
        &self.thresholds
    }

    /// Enumerates one write quorum: the lexicographically first choice of
    /// `w_l` nodes per level among those in `up`; `None` if `up` cannot
    /// host a write quorum.
    pub fn write_quorum_from(&self, up: NodeSet) -> Option<NodeSet> {
        let mut q = NodeSet::EMPTY;
        for l in 0..self.shape.num_levels() {
            let need = self.thresholds.write_threshold(l);
            let mut got = 0;
            for pos in self.shape.level_range(l) {
                if up.contains(pos) {
                    q.insert(pos);
                    got += 1;
                    if got == need {
                        break;
                    }
                }
            }
            if got < need {
                return None;
            }
        }
        Some(q)
    }

    /// Enumerates one read (version-check) quorum from `up`: the first
    /// level that has `r_l` live nodes, restricted to that level.
    pub fn read_quorum_from(&self, up: NodeSet) -> Option<NodeSet> {
        for l in 0..self.shape.num_levels() {
            let need = self.thresholds.read_threshold(&self.shape, l);
            let range = self.shape.level_range(l);
            if up.count_in_range(range.start, range.end) >= need {
                let mut q = NodeSet::EMPTY;
                let mut got = 0;
                for pos in range {
                    if up.contains(pos) {
                        q.insert(pos);
                        got += 1;
                        if got == need {
                            break;
                        }
                    }
                }
                return Some(q);
            }
        }
        None
    }
}

impl QuorumSystem for TrapezoidQuorum {
    fn node_count(&self) -> usize {
        self.shape.node_count()
    }

    fn is_write_available(&self, up: NodeSet) -> bool {
        (0..self.shape.num_levels()).all(|l| {
            let range = self.shape.level_range(l);
            up.count_in_range(range.start, range.end) >= self.thresholds.write_threshold(l)
        })
    }

    fn is_read_available(&self, up: NodeSet) -> bool {
        (0..self.shape.num_levels()).any(|l| {
            let range = self.shape.level_range(l);
            up.count_in_range(range.start, range.end)
                >= self.thresholds.read_threshold(&self.shape, l)
        })
    }
}

/// TRAP-ERC: the paper's protocol viewed over one data block of an (n, k)
/// stripe.
///
/// Node universe: stripe indices `0..n` — `0..k` are the data nodes
/// `N_1..N_k` (0-based), `k..n` the parity nodes. For the tracked block
/// `b_i` the trapezoid contains `N_i` (placed at level 0) and all `n − k`
/// parity nodes, in index order: parity nodes fill the rest of level 0,
/// then level 1, and so on. Eq. 5: `Nbnode = n − k + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapErcSystem {
    shape: TrapezoidShape,
    thresholds: WriteThresholds,
    n: usize,
    k: usize,
    /// Index of the tracked data block / its node `N_i` (`0 ≤ i < k`).
    block: usize,
    /// Trapezoid members in level-major order; `members[0] == block`.
    members: Vec<usize>,
}

impl TrapErcSystem {
    /// Builds the ERC view for data block `block` of an `(n, k)` stripe.
    ///
    /// # Errors
    /// [`ShapeError::StripeMismatch`] unless
    /// `shape.node_count() == n − k + 1`.
    ///
    /// # Panics
    /// Panics if `block ≥ k` or `k > n` (programmer errors).
    pub fn new(
        shape: TrapezoidShape,
        thresholds: WriteThresholds,
        n: usize,
        k: usize,
        block: usize,
    ) -> Result<Self, ShapeError> {
        assert!(k <= n, "k = {k} exceeds n = {n}");
        assert!(block < k, "block {block} is not a data index (k = {k})");
        let expected = n - k + 1;
        if shape.node_count() != expected {
            return Err(ShapeError::StripeMismatch {
                node_count: shape.node_count(),
                expected,
            });
        }
        // Level-major membership: N_i first (level 0), then parity nodes.
        let mut members = Vec::with_capacity(expected);
        members.push(block);
        members.extend(k..n);
        Ok(TrapErcSystem {
            shape,
            thresholds,
            n,
            k,
            block,
            members,
        })
    }

    /// Stripe width `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data block count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The tracked block index `i`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The shape.
    pub fn shape(&self) -> &TrapezoidShape {
        &self.shape
    }

    /// The thresholds.
    pub fn thresholds(&self) -> &WriteThresholds {
        &self.thresholds
    }

    /// Stripe index of the trapezoid member at level-major position `pos`.
    pub fn member(&self, pos: usize) -> usize {
        self.members[pos]
    }

    /// Stripe indices of the trapezoid members on level `l`.
    pub fn level_members(&self, l: usize) -> &[usize] {
        let range = self.shape.level_range(l);
        &self.members[range]
    }

    /// Counts live trapezoid members on level `l`.
    fn live_on_level(&self, up: NodeSet, l: usize) -> usize {
        self.level_members(l)
            .iter()
            .filter(|&&idx| up.contains(idx))
            .count()
    }

    /// The version check of Algorithm 2: some level `l` has at least
    /// `r_l` live members.
    pub fn version_check_available(&self, up: NodeSet) -> bool {
        (0..self.shape.num_levels())
            .any(|l| self.live_on_level(up, l) >= self.thresholds.read_threshold(&self.shape, l))
    }

    /// The decode precondition of Algorithm 2 Case 2: at least `k` live
    /// nodes among the full stripe (any `k` of `n` reconstruct `b_i`;
    /// `N_i` itself being down is the reason we are decoding).
    pub fn decode_available(&self, up: NodeSet) -> bool {
        (0..self.n).filter(|&idx| up.contains(idx)).count() >= self.k
    }
}

impl QuorumSystem for TrapErcSystem {
    /// The node universe is the whole stripe: reads may touch any of the
    /// `n` nodes (decode path), even though writes stay on the trapezoid.
    fn node_count(&self) -> usize {
        self.n
    }

    fn is_write_available(&self, up: NodeSet) -> bool {
        (0..self.shape.num_levels())
            .all(|l| self.live_on_level(up, l) >= self.thresholds.write_threshold(l))
    }

    /// Structural availability of Algorithm 2: the version check must
    /// succeed on some level, then either `N_i` is live (direct read) or
    /// `k` live stripe nodes allow a decode.
    fn is_read_available(&self, up: NodeSet) -> bool {
        if !self.version_check_available(up) {
            return false;
        }
        up.contains(self.block) || self.decode_available(up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_shape() -> TrapezoidShape {
        TrapezoidShape::new(2, 3, 2).unwrap()
    }

    #[test]
    fn figure1_geometry() {
        // Fig. 1: Nbnode = 15, s_l = 2l + 3.
        let s = fig1_shape();
        assert_eq!(s.num_levels(), 3);
        assert_eq!(s.level_size(0), 3);
        assert_eq!(s.level_size(1), 5);
        assert_eq!(s.level_size(2), 7);
        assert_eq!(s.node_count(), 15);
        assert_eq!(s.level_range(0), 0..3);
        assert_eq!(s.level_range(1), 3..8);
        assert_eq!(s.level_range(2), 8..15);
        assert_eq!(s.level_of(0), 0);
        assert_eq!(s.level_of(2), 0);
        assert_eq!(s.level_of(3), 1);
        assert_eq!(s.level_of(14), 2);
    }

    #[test]
    fn shape_validation() {
        assert_eq!(
            TrapezoidShape::new(1, 0, 2),
            Err(ShapeError::EmptyBaseLevel)
        );
        assert!(TrapezoidShape::new(0, 1, 0).is_ok());
        assert!(matches!(
            TrapezoidShape::new(10, 100, 10),
            Err(ShapeError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn with_node_count_enumerates() {
        // Every returned shape must actually have the requested count.
        for count in 1..=20 {
            let shapes = TrapezoidShape::with_node_count(count);
            assert!(!shapes.is_empty(), "no shape for count {count}");
            for s in &shapes {
                assert_eq!(s.node_count(), count, "{s}");
            }
        }
        // Fig. 1's shape must be found for 15.
        assert!(TrapezoidShape::with_node_count(15)
            .iter()
            .any(|s| s.a() == 2 && s.b() == 3 && s.h() == 2));
    }

    #[test]
    fn paper_default_thresholds() {
        let s = fig1_shape();
        let w = WriteThresholds::paper_default(&s, 2).unwrap();
        assert_eq!(w.write_threshold(0), 2); // ⌊3/2⌋ + 1
        assert_eq!(w.write_threshold(1), 2);
        assert_eq!(w.write_threshold(2), 2);
        assert_eq!(w.read_threshold(&s, 0), 2); // 3 - 2 + 1
        assert_eq!(w.read_threshold(&s, 1), 4); // 5 - 2 + 1
        assert_eq!(w.read_threshold(&s, 2), 6); // 7 - 2 + 1
    }

    #[test]
    fn threshold_validation() {
        let s = fig1_shape();
        assert!(matches!(
            WriteThresholds::new(&s, vec![1, 2, 2]),
            Err(ShapeError::Level0NotMajority { w0: 1, needed: 2 })
        ));
        assert!(matches!(
            WriteThresholds::new(&s, vec![2, 2]),
            Err(ShapeError::WrongThresholdCount {
                got: 2,
                expected: 3
            })
        ));
        assert!(matches!(
            WriteThresholds::new(&s, vec![2, 6, 2]),
            Err(ShapeError::ThresholdOutOfRange {
                level: 1,
                w: 6,
                s: 5
            })
        ));
        assert!(matches!(
            WriteThresholds::new(&s, vec![2, 2, 0]),
            Err(ShapeError::ThresholdOutOfRange {
                level: 2,
                w: 0,
                s: 7
            })
        ));
        // w beyond s_1 rejected by paper_default too.
        assert!(WriteThresholds::paper_default(&s, 6).is_err());
    }

    #[test]
    fn fr_write_needs_every_level() {
        let s = fig1_shape();
        let q = TrapezoidQuorum::new(s, WriteThresholds::paper_default(&s, 2).unwrap());
        // All nodes up: write available.
        assert!(q.is_write_available(NodeSet::full(15)));
        // Kill level 1 entirely (positions 3..8): write must fail.
        let mut up = NodeSet::full(15);
        for pos in 3..8 {
            up.remove(pos);
        }
        assert!(!q.is_write_available(up));
        // Read still fine via level 0 or 2.
        assert!(q.is_read_available(up));
    }

    #[test]
    fn fr_read_any_level_suffices() {
        let s = fig1_shape();
        let q = TrapezoidQuorum::new(s, WriteThresholds::paper_default(&s, 2).unwrap());
        // Only level 2 alive with r_2 = 6 nodes.
        let up = NodeSet::from_indices(8..14);
        assert!(q.is_read_available(up));
        assert!(!q.is_write_available(up));
        // 5 nodes of level 2 only: below r_2.
        let up = NodeSet::from_indices(8..13);
        assert!(!q.is_read_available(up));
    }

    #[test]
    fn fr_quorum_extraction() {
        let s = fig1_shape();
        let q = TrapezoidQuorum::new(s, WriteThresholds::paper_default(&s, 2).unwrap());
        let up = NodeSet::full(15);
        let wq = q.write_quorum_from(up).unwrap();
        assert_eq!(wq.len(), 2 + 2 + 2);
        assert!(q.is_write_available(wq));
        let rq = q.read_quorum_from(up).unwrap();
        assert_eq!(rq.len(), 2); // r_0 at level 0
        assert!(rq.intersects(wq), "eq. 2: RQ ∩ WQ ≠ ∅");
        // Nothing up: no quorums.
        assert!(q.write_quorum_from(NodeSet::EMPTY).is_none());
        assert!(q.read_quorum_from(NodeSet::EMPTY).is_none());
    }

    #[test]
    fn erc_membership_layout() {
        // (15, 8) stripe: trapezoid of 8 nodes, e.g. a=0, b=4, h=1.
        let s = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        let sys = TrapErcSystem::new(s, th, 15, 8, 3).unwrap();
        // Level 0: N_3 plus parity nodes 8, 9, 10.
        assert_eq!(sys.level_members(0), &[3, 8, 9, 10]);
        // Level 1: parity nodes 11..15.
        assert_eq!(sys.level_members(1), &[11, 12, 13, 14]);
        assert_eq!(sys.node_count(), 15);
    }

    #[test]
    fn erc_rejects_shape_stripe_mismatch() {
        let s = fig1_shape(); // 15 nodes
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        assert!(matches!(
            TrapErcSystem::new(s, th, 15, 8, 0),
            Err(ShapeError::StripeMismatch {
                node_count: 15,
                expected: 8
            })
        ));
    }

    #[test]
    fn erc_read_direct_vs_decode() {
        let s = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        let sys = TrapErcSystem::new(s, th, 15, 8, 0).unwrap();
        // Everything up: read available.
        assert!(sys.is_read_available(NodeSet::full(15)));

        // N_0 down; version check possible on level 1 (r_1 = 3 of
        // {11..14}); decode needs 8 live among the stripe.
        let mut up = NodeSet::full(15);
        up.remove(0);
        assert!(sys.is_read_available(up)); // 14 live ≥ 8

        // N_0 down and only 7 other nodes live: version check may pass but
        // decode cannot.
        let up = NodeSet::from_indices([8, 9, 10, 11, 12, 13, 14]);
        assert!(sys.version_check_available(up));
        assert!(!sys.decode_available(up));
        assert!(!sys.is_read_available(up));

        // N_0 alive but no level passes the version check: read fails.
        // Level 0 members {0, 8, 9, 10}, r_0 = 2: keep only N_0 alive
        // there; level 1 members {11..14}, r_1 = 3: keep 2.
        let up = NodeSet::from_indices([0, 11, 12]);
        assert!(!sys.version_check_available(up));
        assert!(!sys.is_read_available(up));

        // N_0 alive and level-0 check passes: direct read, no decode need.
        let up = NodeSet::from_indices([0, 8]);
        assert!(sys.is_read_available(up));
    }

    #[test]
    fn erc_write_is_trapezoid_write() {
        let s = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&s, 2).unwrap();
        let sys = TrapErcSystem::new(s, th.clone(), 15, 8, 0).unwrap();
        // w_0 = 3 of {0,8,9,10}, w_1 = 2 of {11..14}.
        let up = NodeSet::from_indices([0, 8, 9, 11, 12]);
        assert!(sys.is_write_available(up));
        let up = NodeSet::from_indices([0, 8, 11, 12]);
        assert!(!sys.is_write_available(up), "level 0 below majority");
        // Data nodes other than N_i are irrelevant to writes.
        let up = NodeSet::from_indices([1, 2, 3, 4, 5, 6, 7]);
        assert!(!sys.is_write_available(up));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Strategy: a valid (shape, thresholds) pair.
        fn shape_and_thresholds() -> impl Strategy<Value = (TrapezoidShape, WriteThresholds)> {
            (0usize..4, 1usize..5, 0usize..4)
                .prop_filter_map("node budget", |(a, b, h)| {
                    let s = TrapezoidShape::new(a, b, h).ok()?;
                    (s.node_count() <= 24).then_some(s)
                })
                .prop_flat_map(|s| {
                    let per_level: Vec<_> = (0..s.num_levels())
                        .map(|l| {
                            if l == 0 {
                                (s.b() / 2 + 1..=s.b()).boxed()
                            } else {
                                (1..=s.level_size(l)).boxed()
                            }
                        })
                        .collect();
                    (Just(s), per_level)
                })
                .prop_map(|(s, w)| {
                    let th = WriteThresholds::new(&s, w).expect("strategy respects bounds");
                    (s, th)
                })
        }

        proptest! {
            /// Eq. 3: any two write quorums intersect.
            #[test]
            fn write_quorums_pairwise_intersect(
                (shape, th) in shape_and_thresholds(),
                seed1 in any::<u128>(),
                seed2 in any::<u128>(),
            ) {
                let q = TrapezoidQuorum::new(shape, th);
                let n = shape.node_count();
                // Two arbitrary availability patterns; quorums drawn from
                // each must intersect whenever both exist (the proof rests
                // on w_0 being a level-0 majority).
                let up1 = NodeSet::from_bits(seed1).intersection(NodeSet::full(n));
                let up2 = NodeSet::from_bits(seed2).intersection(NodeSet::full(n));
                if let (Some(w1), Some(w2)) = (q.write_quorum_from(up1), q.write_quorum_from(up2)) {
                    prop_assert!(w1.intersects(w2), "WQ1 ∩ WQ2 = ∅");
                }
            }

            /// Eq. 2: every read quorum intersects every write quorum.
            #[test]
            fn read_write_quorums_intersect(
                (shape, th) in shape_and_thresholds(),
                seed1 in any::<u128>(),
                seed2 in any::<u128>(),
            ) {
                let q = TrapezoidQuorum::new(shape, th);
                let n = shape.node_count();
                let up1 = NodeSet::from_bits(seed1).intersection(NodeSet::full(n));
                let up2 = NodeSet::from_bits(seed2).intersection(NodeSet::full(n));
                if let (Some(rq), Some(wq)) = (q.read_quorum_from(up1), q.write_quorum_from(up2)) {
                    prop_assert!(rq.intersects(wq), "RQ ∩ WQ = ∅");
                }
            }

            /// Write availability is monotone: adding live nodes never
            /// breaks a write quorum.
            #[test]
            fn availability_monotone(
                (shape, th) in shape_and_thresholds(),
                seed in any::<u128>(),
                extra in any::<u128>(),
            ) {
                let q = TrapezoidQuorum::new(shape, th);
                let n = shape.node_count();
                let up = NodeSet::from_bits(seed).intersection(NodeSet::full(n));
                let bigger = up.union(NodeSet::from_bits(extra).intersection(NodeSet::full(n)));
                if q.is_write_available(up) {
                    prop_assert!(q.is_write_available(bigger));
                }
                if q.is_read_available(up) {
                    prop_assert!(q.is_read_available(bigger));
                }
            }

            /// The ERC system's write predicate agrees with the FR
            /// trapezoid predicate under the membership mapping.
            #[test]
            fn erc_write_matches_fr_on_trapezoid(
                (shape, th) in shape_and_thresholds(),
                k_extra in 1usize..5,
                seed in any::<u128>(),
            ) {
                let nbnode = shape.node_count();
                let k = k_extra;
                let n = nbnode - 1 + k;
                prop_assume!(n <= 24);
                let sys = TrapErcSystem::new(shape, th.clone(), n, k, 0).unwrap();
                let fr = TrapezoidQuorum::new(shape, th);
                let up = NodeSet::from_bits(seed).intersection(NodeSet::full(n));
                // Map stripe availability onto trapezoid positions.
                let mut trap_up = NodeSet::EMPTY;
                for pos in 0..nbnode {
                    if up.contains(sys.member(pos)) {
                        trap_up.insert(pos);
                    }
                }
                prop_assert_eq!(sys.is_write_available(up), fr.is_write_available(trap_up));
                prop_assert_eq!(sys.version_check_available(up), fr.is_read_available(trap_up));
            }
        }
    }
}
