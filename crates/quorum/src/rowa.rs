//! ROWA — Read One, Write All (§II of the paper).
//!
//! The most basic replication control: a write must reach *every* replica
//! (so any single replica is current), a read touches any one. Maximal
//! read availability, minimal write availability — the paper cites its
//! "write penalty" and "lack of reliability of the write operations" as
//! the motivation for quorum systems.

use crate::nodeset::NodeSet;
use crate::system::QuorumSystem;

/// ROWA over `n` full replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rowa {
    n: usize,
}

impl Rowa {
    /// Builds a ROWA system over `n ≥ 1` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n` exceeds the [`NodeSet`] capacity.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "ROWA needs at least one node");
        assert!(
            n <= crate::nodeset::MAX_NODES,
            "ROWA limited to {} nodes",
            crate::nodeset::MAX_NODES
        );
        Rowa { n }
    }
}

impl QuorumSystem for Rowa {
    fn node_count(&self) -> usize {
        self.n
    }

    /// All `n` replicas must accept the write.
    fn is_write_available(&self, up: NodeSet) -> bool {
        up.count_in_range(0, self.n) == self.n
    }

    /// Any single live replica serves the read.
    fn is_read_available(&self, up: NodeSet) -> bool {
        up.count_in_range(0, self.n) >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_needs_all() {
        let r = Rowa::new(4);
        assert!(r.is_write_available(NodeSet::full(4)));
        let mut up = NodeSet::full(4);
        up.remove(2);
        assert!(!r.is_write_available(up));
    }

    #[test]
    fn read_needs_one() {
        let r = Rowa::new(4);
        assert!(r.is_read_available(NodeSet::from_indices([3])));
        assert!(!r.is_read_available(NodeSet::EMPTY));
    }
}
