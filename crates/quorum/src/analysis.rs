//! Sweep utilities producing the data series behind the paper's figures.
//!
//! Every figure in §IV-D is a family of curves `availability = f(p)` (or
//! `space = f(k)` for Fig. 5). [`Series`] is one labelled curve;
//! [`Series::sweep_p`] evaluates a closed form over a `p` grid; the comparison
//! helpers quantify the qualitative claims the paper makes about the
//! curves ("no difference when p ≥ 0.8", crossovers, monotonicity).

/// One labelled curve of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"TRAP-ERC n=15 k=8 w=2"`.
    pub label: String,
    /// Sample points in ascending `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series by sweeping `f` over `steps + 1` evenly spaced
    /// points of `[0, 1]` (the node-availability axis of Figs. 2–4).
    pub fn sweep_p(
        label: impl Into<String>,
        steps: usize,
        mut f: impl FnMut(f64) -> f64,
    ) -> Series {
        assert!(steps >= 1, "need at least one interval");
        let points = (0..=steps)
            .map(|i| {
                let p = i as f64 / steps as f64;
                (p, f(p))
            })
            .collect();
        Series {
            label: label.into(),
            points,
        }
    }

    /// Builds a series over explicit integer x values (the k axis of
    /// Fig. 5).
    pub fn over_ints(
        label: impl Into<String>,
        xs: impl IntoIterator<Item = usize>,
        mut f: impl FnMut(usize) -> f64,
    ) -> Series {
        Series {
            label: label.into(),
            points: xs.into_iter().map(|x| (x as f64, f(x))).collect(),
        }
    }

    /// Linear interpolation of `y` at `x` (clamped to the sampled range).
    pub fn at(&self, x: f64) -> f64 {
        let pts = &self.points;
        assert!(!pts.is_empty(), "empty series");
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|&(px, _)| px < x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Largest vertical gap `self − other` over the common x grid
    /// (requires identical grids; returns `(x, gap)` at the maximum).
    pub fn max_gap(&self, other: &Series) -> (f64, f64) {
        assert_eq!(
            self.points.len(),
            other.points.len(),
            "series must share one grid"
        );
        self.points
            .iter()
            .zip(&other.points)
            .map(|(&(x, y1), &(_, y2))| (x, y1 - y2))
            .fold((0.0, f64::NEG_INFINITY), |acc, (x, gap)| {
                if gap > acc.1 {
                    (x, gap)
                } else {
                    acc
                }
            })
    }

    /// Smallest `x` from which `|self − other| ≤ tol` holds for the rest
    /// of the grid — the "curves merge at p ≈ …" statements of §IV-D.
    pub fn merge_point(&self, other: &Series, tol: f64) -> Option<f64> {
        assert_eq!(self.points.len(), other.points.len());
        let n = self.points.len();
        let mut merge_from = None;
        for i in (0..n).rev() {
            let (x, y1) = self.points[i];
            let y2 = other.points[i].1;
            if (y1 - y2).abs() <= tol {
                merge_from = Some(x);
            } else {
                break;
            }
        }
        merge_from
    }

    /// Renders the series as CSV lines `x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x:.6},{y:.6}\n"));
        }
        out
    }
}

/// Renders several series as a markdown table with one `x` column (series
/// must share a grid) — the textual stand-in for the paper's plots.
pub fn markdown_table(x_label: &str, series: &[&Series]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let n = series[0].points.len();
    assert!(
        series.iter().all(|s| s.points.len() == n),
        "series must share one grid"
    );
    let mut out = String::new();
    out.push_str(&format!("| {x_label} |"));
    for s in series {
        out.push_str(&format!(" {} |", s.label));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    for i in 0..n {
        out.push_str(&format!("| {:.2} |", series[0].points[i].0));
        for s in series {
            out.push_str(&format!(" {:.4} |", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_p_grid() {
        let s = Series::sweep_p("id", 4, |p| p);
        assert_eq!(s.points.len(), 5);
        assert_eq!(s.points[0], (0.0, 0.0));
        assert_eq!(s.points[4], (1.0, 1.0));
        assert_eq!(s.points[2], (0.5, 0.5));
    }

    #[test]
    fn over_ints_grid() {
        let s = Series::over_ints("k", 1..=3, |k| k as f64 * 2.0);
        assert_eq!(s.points, vec![(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]);
    }

    #[test]
    fn interpolation() {
        let s = Series::sweep_p("lin", 2, |p| 2.0 * p);
        assert!((s.at(0.25) - 0.5).abs() < 1e-12);
        assert_eq!(s.at(-1.0), 0.0);
        assert_eq!(s.at(2.0), 2.0);
    }

    #[test]
    fn max_gap_and_merge() {
        let a = Series::sweep_p("a", 10, |p| p);
        let b = Series::sweep_p("b", 10, |p| if p < 0.5 { p / 2.0 } else { p });
        let (x, gap) = a.max_gap(&b);
        assert!((gap - 0.2).abs() < 1e-12, "gap {gap}");
        assert!((x - 0.4).abs() < 1e-12, "x {x}");
        let merge = a.merge_point(&b, 1e-9).unwrap();
        assert!((merge - 0.5).abs() < 1e-12);
        // Curves that never merge.
        let c = Series::sweep_p("c", 10, |p| p + 1.0);
        assert_eq!(a.merge_point(&c, 0.5), None);
    }

    #[test]
    fn csv_and_markdown() {
        let a = Series::sweep_p("A", 2, |p| p);
        let b = Series::sweep_p("B", 2, |p| 1.0 - p);
        let csv = a.to_csv();
        assert!(csv.starts_with("0.000000,0.000000\n"));
        let md = markdown_table("p", &[&a, &b]);
        assert!(md.contains("| p | A | B |"));
        assert!(md.lines().count() == 5);
    }
}
