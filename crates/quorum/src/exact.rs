//! Exact availability by exhaustive state enumeration.
//!
//! For `N ≤ MAX_EXACT_NODES` nodes the Bernoulli state space has `2^N`
//! configurations; summing `p^|up|·(1−p)^(N−|up|)` over every configuration
//! satisfying a predicate gives the *exact* availability of that predicate
//! — the strongest possible check of the paper's closed forms, and the
//! reference the Monte-Carlo engine in `tq-sim` is itself validated
//! against.

use crate::nodeset::NodeSet;
use crate::system::QuorumSystem;

/// Largest node count accepted by [`exact_availability`] (2^24 ≈ 16M
/// predicate evaluations — fractions of a second for bitmask predicates).
pub const MAX_EXACT_NODES: usize = 24;

/// Exact probability that `predicate(up)` holds when each of `n` nodes is
/// independently live with probability `p`.
///
/// # Panics
/// Panics if `n > MAX_EXACT_NODES` (use Monte-Carlo above that) or `p`
/// is outside `[0, 1]`.
pub fn exact_availability(n: usize, p: f64, predicate: impl Fn(NodeSet) -> bool) -> f64 {
    assert!(
        n <= MAX_EXACT_NODES,
        "exact enumeration limited to {MAX_EXACT_NODES} nodes, got {n}"
    );
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    let q = 1.0 - p;
    // Precompute p^i q^(n-i) per population count: the weight of a state
    // depends only on how many nodes are live.
    let weights: Vec<f64> = (0..=n)
        .map(|i| p.powi(i as i32) * q.powi((n - i) as i32))
        .collect();
    let mut total = 0.0;
    for bits in 0u64..(1u64 << n) {
        let up = NodeSet::from_bits(bits as u128);
        if predicate(up) {
            total += weights[up.len()];
        }
    }
    total.clamp(0.0, 1.0)
}

/// Exact write availability of a [`QuorumSystem`].
///
/// # Panics
/// See [`exact_availability`].
pub fn exact_write_availability(system: &impl QuorumSystem, p: f64) -> f64 {
    exact_availability(system.node_count(), p, |up| system.is_write_available(up))
}

/// Exact read availability of a [`QuorumSystem`].
///
/// # Panics
/// See [`exact_availability`].
pub fn exact_read_availability(system: &impl QuorumSystem, p: f64) -> f64 {
    exact_availability(system.node_count(), p, |up| system.is_read_available(up))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_predicates() {
        for &p in &[0.0, 0.25, 0.5, 1.0] {
            assert_eq!(exact_availability(8, p, |_| true), 1.0);
            assert_eq!(exact_availability(8, p, |_| false), 0.0);
        }
    }

    #[test]
    fn single_node_predicate() {
        // P(node 0 live) = p.
        for &p in &[0.0, 0.3, 0.7, 1.0] {
            let v = exact_availability(5, p, |up| up.contains(0));
            assert!((v - p).abs() < 1e-12);
        }
    }

    #[test]
    fn conjunction_of_independent_nodes() {
        // P(nodes 0 and 1 both live) = p².
        let p = 0.6;
        let v = exact_availability(6, p, |up| up.contains(0) && up.contains(1));
        assert!((v - p * p).abs() < 1e-12);
    }

    #[test]
    fn popcount_threshold_matches_phi() {
        use crate::availability::phi;
        for n in [4usize, 7, 10] {
            for t in 0..=n {
                for &p in &[0.2, 0.5, 0.9] {
                    let v = exact_availability(n, p, |up| up.len() >= t);
                    assert!((v - phi(n, t, n, p)).abs() < 1e-10, "n={n} t={t} p={p}");
                }
            }
        }
    }

    #[test]
    fn zero_nodes_degenerate() {
        assert_eq!(exact_availability(0, 0.5, |up| up.is_empty()), 1.0);
        assert_eq!(exact_availability(0, 0.5, |up| !up.is_empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_many_nodes_panics() {
        let _ = exact_availability(25, 0.5, |_| true);
    }

    #[test]
    fn system_helpers() {
        use crate::majority::MajorityQuorum;
        let m = MajorityQuorum::new(5);
        let w = exact_write_availability(&m, 0.5);
        let r = exact_read_availability(&m, 0.5);
        assert!((w - r).abs() < 1e-15, "majority read == write");
        // Φ_5(3,5) at 0.5 = (10 + 5 + 1)/32 = 0.5.
        assert!((w - 0.5).abs() < 1e-12);
    }
}
