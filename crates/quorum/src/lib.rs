//! # tq-quorum — quorum systems and the TRAP-ERC availability analysis
//!
//! The analytical half of the reproduction of Relaza et al., *Trapezoid
//! Quorum Protocol Dedicated to Erasure Resilient Coding Based Schemes*
//! (IPDPSW 2015). This crate knows nothing about bytes or networks; it
//! models *which sets of live nodes allow an operation* and *how likely
//! such sets are* under i.i.d. fail-stop nodes with availability `p`.
//!
//! Contents:
//!
//! * [`NodeSet`] — a bitmask over up to 128 logical nodes.
//! * [`trapezoid`] — the trapezoid geometry of Suzuki & Ohara as the paper
//!   uses it: `h+1` levels, level `l` holding `s_l = a·l + b` nodes,
//!   write thresholds `w_l` (with `w_0 = ⌊b/2⌋+1` forced to a level-0
//!   majority) and read thresholds `r_l = s_l − w_l + 1`.
//! * [`system`] — the [`QuorumSystem`] predicate trait; implemented by
//!   the trapezoid (full-replication semantics), the TRAP-ERC view over a
//!   whole (n, k) stripe, and the related-work baselines in [`majority`],
//!   [`rowa`], [`grid`] and [`tree`].
//! * [`availability`] — the paper's closed forms: Φ (eq. 7), write
//!   availability (eqs. 8/9), read availability for TRAP-FR (eq. 10) and
//!   TRAP-ERC (eqs. 11–13), and the storage-space equations (14/15);
//!   plus closed forms for the baselines.
//! * [`exact`] — exhaustive 2^N enumeration of any [`QuorumSystem`]
//!   predicate, the ground truth the closed forms are tested against.
//! * [`analysis`] — sweep helpers producing the (p, availability) series
//!   behind every figure of the paper.
//!
//! ```
//! use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
//! use tq_quorum::availability;
//!
//! // Figure 1 of the paper: a = 2, b = 3, h = 2 → levels of 3, 5, 7.
//! let shape = TrapezoidShape::new(2, 3, 2).unwrap();
//! assert_eq!(shape.node_count(), 15);
//! let w = WriteThresholds::paper_default(&shape, 2).unwrap();
//! let pw = availability::write_availability(&shape, &w, 0.9);
//! assert!(pw > 0.9 && pw <= 1.0);
//! ```

// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub mod analysis;
pub mod availability;
pub mod exact;
pub mod grid;
pub mod majority;
pub mod nodeset;
pub mod rowa;
pub mod system;
pub mod trapezoid;
pub mod tree;

pub use nodeset::NodeSet;
pub use system::QuorumSystem;
pub use trapezoid::{ShapeError, TrapErcSystem, TrapezoidQuorum, TrapezoidShape, WriteThresholds};
