//! The tree quorum protocol (Agrawal & El Abbadi 1991) — reference \[1\].
//!
//! Replicas form a complete binary tree. A quorum is assembled by walking
//! from the root towards the leaves: a live node is taken and the walk
//! continues into *one* of its subtrees; a dead node is bypassed by
//! assembling quorums in *both* its subtrees. With every node live a
//! quorum is a single root-to-leaf path (`depth + 1` nodes out of
//! `2^(depth+1) − 1`).
//!
//! We implement the symmetric (mutual-exclusion style) variant: read and
//! write quorums coincide. It serves as a structural baseline against the
//! trapezoid; the paper cites it among the "many logical structures"
//! proposed for replication control.
//!
//! Nodes are indexed in heap order: root = 0, children of `v` are
//! `2v + 1` and `2v + 2`.

use crate::nodeset::NodeSet;
use crate::system::QuorumSystem;

/// Tree quorum over a complete binary tree of the given depth
/// (`depth = 0` is a single node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeQuorum {
    depth: usize,
}

impl TreeQuorum {
    /// Builds a tree of the given depth (`2^(depth+1) − 1` nodes).
    ///
    /// # Panics
    /// Panics if the tree exceeds the [`NodeSet`] capacity (depth ≤ 5 for
    /// 128 nodes).
    pub fn new(depth: usize) -> Self {
        let nodes = (1usize << (depth + 1)) - 1;
        assert!(
            nodes <= crate::nodeset::MAX_NODES,
            "tree of depth {depth} has {nodes} nodes, exceeding the NodeSet limit"
        );
        TreeQuorum { depth }
    }

    /// Tree depth.
    pub const fn depth(&self) -> usize {
        self.depth
    }

    /// `true` iff `v` is a leaf.
    const fn is_leaf(&self, v: usize) -> bool {
        // Leaves occupy indices 2^depth - 1 .. 2^(depth+1) - 1.
        v >= (1usize << self.depth) - 1
    }

    /// Recursive quorum feasibility (the `GetQuorum` predicate):
    /// live node → need a quorum in one child subtree (none if leaf);
    /// dead node → need quorums in both child subtrees.
    fn can_form(&self, v: usize, up: NodeSet) -> bool {
        if self.is_leaf(v) {
            return up.contains(v);
        }
        let (l, r) = (2 * v + 1, 2 * v + 2);
        if up.contains(v) {
            self.can_form(l, up) || self.can_form(r, up)
        } else {
            self.can_form(l, up) && self.can_form(r, up)
        }
    }

    /// Materialises one quorum from `up`, if feasible (greedy left-first).
    pub fn quorum_from(&self, up: NodeSet) -> Option<NodeSet> {
        fn build(t: &TreeQuorum, v: usize, up: NodeSet, out: &mut NodeSet) -> bool {
            if t.is_leaf(v) {
                if up.contains(v) {
                    out.insert(v);
                    true
                } else {
                    false
                }
            } else {
                let (l, r) = (2 * v + 1, 2 * v + 2);
                if up.contains(v) {
                    out.insert(v);
                    // Build each child path into a scratch set so a failed
                    // left attempt leaves no stray nodes in the quorum.
                    let mut tmp = NodeSet::EMPTY;
                    if build(t, l, up, &mut tmp) || {
                        tmp = NodeSet::EMPTY;
                        build(t, r, up, &mut tmp)
                    } {
                        *out = out.union(tmp);
                        true
                    } else {
                        false
                    }
                } else {
                    // Both subtrees must deliver; evaluate both eagerly so
                    // a failed right side doesn't leave a half-built set.
                    let mut tmp = NodeSet::EMPTY;
                    if build(t, l, up, &mut tmp) && build(t, r, up, &mut tmp) {
                        *out = out.union(tmp);
                        true
                    } else {
                        false
                    }
                }
            }
        }
        let mut out = NodeSet::EMPTY;
        build(self, 0, up, &mut out).then_some(out)
    }
}

impl QuorumSystem for TreeQuorum {
    fn node_count(&self) -> usize {
        (1usize << (self.depth + 1)) - 1
    }

    fn is_write_available(&self, up: NodeSet) -> bool {
        self.can_form(0, up)
    }

    fn is_read_available(&self, up: NodeSet) -> bool {
        self.can_form(0, up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_single_node() {
        let t = TreeQuorum::new(0);
        assert_eq!(t.node_count(), 1);
        assert!(t.is_write_available(NodeSet::from_indices([0])));
        assert!(!t.is_write_available(NodeSet::EMPTY));
    }

    #[test]
    fn root_to_leaf_path_is_quorum() {
        // Depth 2: nodes 0..7; path 0 → 1 → 3.
        let t = TreeQuorum::new(2);
        assert_eq!(t.node_count(), 7);
        let up = NodeSet::from_indices([0, 1, 3]);
        assert!(t.is_write_available(up));
        let q = t.quorum_from(up).unwrap();
        assert_eq!(q, up);
    }

    #[test]
    fn dead_root_requires_both_subtrees() {
        let t = TreeQuorum::new(2);
        // Root dead; left subtree path 1→3, right subtree path 2→5.
        let up = NodeSet::from_indices([1, 3, 2, 5]);
        assert!(t.is_write_available(up));
        // Only the left subtree: not a quorum.
        let up = NodeSet::from_indices([1, 3]);
        assert!(!t.is_write_available(up));
    }

    #[test]
    fn dead_internal_node_bypassed() {
        let t = TreeQuorum::new(2);
        // Root alive, node 1 dead → both of node 1's children needed
        // (leaves 3 and 4) OR the walk goes right instead.
        let up = NodeSet::from_indices([0, 1 + 2, 4]); // 0, 3, 4: node 1 dead
        assert!(t.is_write_available(up));
        let q = t.quorum_from(up).unwrap();
        assert!(q.contains(0) && q.contains(3) && q.contains(4));
    }

    #[test]
    fn all_leaves_dead_fails() {
        let t = TreeQuorum::new(2);
        let up = NodeSet::from_indices([0, 1, 2]); // only internals
        assert!(!t.is_write_available(up));
    }

    #[test]
    fn any_two_quorums_intersect_exhaustive() {
        // Depth 2 (7 nodes): enumerate all up-sets, materialise quorums,
        // check pairwise intersection — the tree protocol's core claim.
        let t = TreeQuorum::new(2);
        let mut quorums = Vec::new();
        for bits in 0u128..128 {
            if let Some(q) = t.quorum_from(NodeSet::from_bits(bits)) {
                quorums.push(q);
            }
        }
        assert!(!quorums.is_empty());
        for a in &quorums {
            for b in &quorums {
                assert!(a.intersects(*b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn quorum_feasible_iff_predicate() {
        let t = TreeQuorum::new(2);
        for bits in 0u128..128 {
            let up = NodeSet::from_bits(bits);
            assert_eq!(
                t.quorum_from(up).is_some(),
                t.is_write_available(up),
                "{up:?}"
            );
            if let Some(q) = t.quorum_from(up) {
                assert!(q.is_subset_of(up));
            }
        }
    }
}
