//! The [`QuorumSystem`] predicate trait.
//!
//! A quorum system here is characterised *extensionally*: given the set of
//! currently-live nodes, can a read / write operation assemble the sets it
//! needs? This is exactly the quantity the paper's availability formulas
//! integrate over the Bernoulli node-state distribution, and phrasing it
//! as a predicate lets one enumeration / sampling engine (see
//! [`crate::exact`] and `tq-sim`) serve every protocol.

use crate::nodeset::NodeSet;

/// A read/write quorum system over nodes `0..node_count()`.
pub trait QuorumSystem {
    /// Size of the node universe.
    fn node_count(&self) -> usize;

    /// `true` iff a write operation can complete when exactly the nodes
    /// in `up` are live.
    fn is_write_available(&self, up: NodeSet) -> bool;

    /// `true` iff a read operation can complete when exactly the nodes in
    /// `up` are live.
    fn is_read_available(&self, up: NodeSet) -> bool;

    /// Convenience: both operations available.
    fn is_fully_available(&self, up: NodeSet) -> bool {
        self.is_write_available(up) && self.is_read_available(up)
    }
}

/// Blanket impl so `&T` can be passed where a system is expected.
impl<T: QuorumSystem + ?Sized> QuorumSystem for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn is_write_available(&self, up: NodeSet) -> bool {
        (**self).is_write_available(up)
    }
    fn is_read_available(&self, up: NodeSet) -> bool {
        (**self).is_read_available(up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always;
    impl QuorumSystem for Always {
        fn node_count(&self) -> usize {
            3
        }
        fn is_write_available(&self, _up: NodeSet) -> bool {
            true
        }
        fn is_read_available(&self, up: NodeSet) -> bool {
            !up.is_empty()
        }
    }

    #[test]
    fn fully_available_combines_both() {
        let s = Always;
        assert!(!s.is_fully_available(NodeSet::EMPTY));
        assert!(s.is_fully_available(NodeSet::full(1)));
    }

    #[test]
    fn reference_blanket_impl() {
        fn takes_system(s: impl QuorumSystem) -> usize {
            s.node_count()
        }
        let s = Always;
        assert_eq!(takes_system(&s), 3);
        assert_eq!(takes_system(s), 3);
    }
}
