//! Bitmask node sets for quorum predicates.

use core::fmt;

/// Maximum number of logical nodes a [`NodeSet`] can describe.
pub const MAX_NODES: usize = 128;

/// A set of node indices `0..MAX_NODES` backed by a `u128` bitmask.
///
/// Quorum predicates are pure functions `NodeSet → bool`; keeping the set
/// in one word makes exhaustive 2^N enumeration and Monte-Carlo sampling
/// allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet(u128);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Set containing nodes `0..n`.
    ///
    /// # Panics
    /// Panics if `n > MAX_NODES`.
    pub fn full(n: usize) -> NodeSet {
        assert!(n <= MAX_NODES, "NodeSet supports at most {MAX_NODES} nodes");
        if n == MAX_NODES {
            NodeSet(u128::MAX)
        } else {
            NodeSet((1u128 << n) - 1)
        }
    }

    /// Builds a set from an iterator of node indices.
    ///
    /// # Panics
    /// Panics if any index is `≥ MAX_NODES`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Builds a set from a raw bitmask.
    pub const fn from_bits(bits: u128) -> NodeSet {
        NodeSet(bits)
    }

    /// The raw bitmask.
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Inserts node `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ MAX_NODES`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < MAX_NODES, "node index {i} out of range");
        self.0 |= 1u128 << i;
    }

    /// Removes node `i` if present.
    pub fn remove(&mut self, i: usize) {
        if i < MAX_NODES {
            self.0 &= !(1u128 << i);
        }
    }

    /// Membership test.
    pub const fn contains(self, i: usize) -> bool {
        i < MAX_NODES && self.0 & (1u128 << i) != 0
    }

    /// Number of nodes in the set.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set intersection.
    pub const fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set union.
    pub const fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set difference `self \ other`.
    pub const fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// `true` iff the two sets share at least one node — the quorum
    /// intersection property (eqs. 2 and 3 of the paper).
    pub const fn intersects(self, other: NodeSet) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` iff `self ⊆ other`.
    pub const fn is_subset_of(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of members within index range `lo..hi` — used to count live
    /// nodes inside one trapezoid level stored as a contiguous range.
    pub fn count_in_range(self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi <= MAX_NODES);
        if lo >= hi {
            return 0;
        }
        let width = hi - lo;
        let mask = if width == MAX_NODES {
            u128::MAX
        } else {
            ((1u128 << width) - 1) << lo
        };
        (self.0 & mask).count_ones() as usize
    }

    /// Iterates over member indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl FromIterator<usize> for NodeSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        NodeSet::from_indices(iter)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeSet{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        s.insert(127);
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(5) && s.contains(127));
        assert!(!s.contains(1));
        s.remove(5);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(5));
    }

    #[test]
    fn full_set() {
        assert_eq!(NodeSet::full(0), NodeSet::EMPTY);
        assert_eq!(NodeSet::full(3).len(), 3);
        assert_eq!(NodeSet::full(128).len(), 128);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_indices([0, 1, 2]);
        let b = NodeSet::from_indices([2, 3]);
        assert_eq!(a.intersection(b), NodeSet::from_indices([2]));
        assert_eq!(a.union(b), NodeSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.difference(b), NodeSet::from_indices([0, 1]));
        assert!(a.intersects(b));
        assert!(!a.intersects(NodeSet::from_indices([4, 5])));
        assert!(NodeSet::from_indices([1]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn count_in_range() {
        let s = NodeSet::from_indices([0, 2, 3, 9, 10]);
        assert_eq!(s.count_in_range(0, 4), 3);
        assert_eq!(s.count_in_range(4, 9), 0);
        assert_eq!(s.count_in_range(9, 11), 2);
        assert_eq!(s.count_in_range(3, 3), 0);
        assert_eq!(s.count_in_range(0, 128), 5);
    }

    #[test]
    fn iteration_order() {
        let s = NodeSet::from_indices([7, 1, 100]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 7, 100]);
    }

    #[test]
    fn debug_format() {
        let s = NodeSet::from_indices([1, 3]);
        assert_eq!(format!("{s:?}"), "NodeSet{1, 3}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = NodeSet::EMPTY;
        s.insert(128);
    }
}
