//! Majority quorum consensus (Thomas 1979) — reference \[13\] of the paper.
//!
//! Both reads and writes require a strict majority of the `n` replicas,
//! which trivially guarantees every pair of quorums intersects. This is
//! the simplest non-trivial quorum system and the natural baseline the
//! trapezoid protocol improves on.

use crate::nodeset::NodeSet;
use crate::system::QuorumSystem;

/// Majority quorum over `n` full replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityQuorum {
    n: usize,
}

impl MajorityQuorum {
    /// Builds a majority system over `n ≥ 1` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n` exceeds the [`NodeSet`] capacity.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "majority quorum needs at least one node");
        assert!(
            n <= crate::nodeset::MAX_NODES,
            "majority quorum limited to {} nodes",
            crate::nodeset::MAX_NODES
        );
        MajorityQuorum { n }
    }

    /// The quorum size: `⌊n/2⌋ + 1`.
    pub const fn quorum_size(&self) -> usize {
        self.n / 2 + 1
    }
}

impl QuorumSystem for MajorityQuorum {
    fn node_count(&self) -> usize {
        self.n
    }

    fn is_write_available(&self, up: NodeSet) -> bool {
        up.count_in_range(0, self.n) >= self.quorum_size()
    }

    fn is_read_available(&self, up: NodeSet) -> bool {
        self.is_write_available(up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes() {
        assert_eq!(MajorityQuorum::new(1).quorum_size(), 1);
        assert_eq!(MajorityQuorum::new(4).quorum_size(), 3);
        assert_eq!(MajorityQuorum::new(5).quorum_size(), 3);
        assert_eq!(MajorityQuorum::new(15).quorum_size(), 8);
    }

    #[test]
    fn availability_thresholds() {
        let m = MajorityQuorum::new(5);
        assert!(!m.is_write_available(NodeSet::from_indices([0, 1])));
        assert!(m.is_write_available(NodeSet::from_indices([0, 1, 2])));
        assert!(m.is_read_available(NodeSet::from_indices([2, 3, 4])));
        assert!(!m.is_read_available(NodeSet::from_indices([3, 4])));
    }

    #[test]
    fn any_two_majorities_intersect() {
        // Exhaustive over n = 7: any two sets of size >= 4 intersect.
        let m = MajorityQuorum::new(7);
        let q = m.quorum_size();
        for bits1 in 0u128..128 {
            let s1 = NodeSet::from_bits(bits1);
            if s1.len() < q {
                continue;
            }
            for bits2 in 0u128..128 {
                let s2 = NodeSet::from_bits(bits2);
                if s2.len() < q {
                    continue;
                }
                assert!(s1.intersects(s2));
            }
        }
    }
}
