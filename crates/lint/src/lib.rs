//! Workspace invariant linter for the TRAP-ERC reproduction.
//!
//! `tq-lint` tokenizes every first-party source file with a hand-rolled
//! lexer (the container is offline; no syn/proc-macro2) and runs a catalog
//! of project-specific lints, each enforcing a contract a past PR
//! established dynamically:
//!
//! * `idempotent-mutation` — node-state mutations in
//!   `crates/cluster/src/node.rs` must go through the monotone helpers
//!   (PR 4's idempotency contract).
//! * `opid-echo` — every `Reply`/`RoundReply` literal must thread the
//!   incoming envelope's `op_id` (PR 4's echo contract).
//! * `wire-tag-coverage` — every wire tag constant is unique within its
//!   decoder's namespace, every emitted tag has a decoder arm, and the
//!   `FrameKind` code tables stay symmetric (PR 7's total-decoding
//!   contract at the catalog level).
//! * `sim-determinism` — no wall clocks, OS entropy, or default-hashed
//!   maps in sim-reachable modules (PR 3's DST determinism contract).
//! * `panic-freedom` — no `unwrap`/`expect`/`panic!`/slice-indexing in
//!   wire decode paths or `NodeApi::execute` serve paths (PR 7).
//! * `lock-across-transport` — a lock guard's scope may not enclose a
//!   `transport.` call.
//! * `unsafe-allow` — no new `allow(unsafe_code)` beyond the documented
//!   `crates/gf256/src/simd.rs` site.
//! * `bounded-retry` — a loop in a client dispatch surface that puts
//!   envelopes on the wire must consult `RetryBudget::try_spend` or
//!   carry a waiver naming why it is bounded (PR 10's retry-storm
//!   contract: unbudgeted retry loops amplify load exactly when the
//!   cluster can least afford it).
//!
//! Waivers are inline comments of the form `// <marker> allow(NAME) --
//! JUSTIFICATION`, where `<marker>` is the crate name followed by a colon
//! (spelled out in [`WAIVER_MARKER`]; written indirectly here so this very
//! doc comment does not parse as a waiver). The justification is mandatory.
//! A trailing waiver covers its own line; a waiver on a line of its own
//! covers the next code line. Malformed or unknown waivers are themselves
//! diagnostics (`waiver-syntax`) and are never waivable.

use std::path::Path;

pub const L_IDEMPOTENT: &str = "idempotent-mutation";
pub const L_OPID: &str = "opid-echo";
pub const L_WIRETAG: &str = "wire-tag-coverage";
pub const L_SIMDET: &str = "sim-determinism";
pub const L_PANIC: &str = "panic-freedom";
pub const L_LOCK: &str = "lock-across-transport";
pub const L_UNSAFE: &str = "unsafe-allow";
pub const L_RETRY: &str = "bounded-retry";
pub const L_WAIVER: &str = "waiver-syntax";

/// The lint catalog: `(name, what it enforces)`. `waiver-syntax` is the
/// meta-lint for malformed waivers and cannot itself be waived.
pub const LINTS: &[(&str, &str)] = &[
    (
        L_IDEMPOTENT,
        "node.rs: .insert()/.remove() only inside the monotone helpers (idempotency, PR 4)",
    ),
    (
        L_OPID,
        "Reply/RoundReply literals must thread the incoming op_id (echo contract, PR 4)",
    ),
    (
        L_WIRETAG,
        "wire.rs: tag values unique per decoder, every emitted/defined tag has a decoder arm",
    ),
    (
        L_SIMDET,
        "sim-reachable code: no Instant/SystemTime::now, thread::sleep, thread_rng, or default-hashed HashMap/HashSet",
    ),
    (
        L_PANIC,
        "wire decode + node serve paths: no unwrap/expect/panic!/slice indexing (totality, PR 7)",
    ),
    (
        L_LOCK,
        "a lock guard scope may not enclose a transport. call",
    ),
    (
        L_UNSAFE,
        "no allow(unsafe_code) outside crates/gf256/src/simd.rs",
    ),
    (
        L_RETRY,
        "client dispatch loops must consult RetryBudget::try_spend (or carry a waiver naming why the loop is bounded)",
    ),
    (
        L_WAIVER,
        "waivers must parse as allow(<lint>) -- <justification> (not waivable)",
    ),
];

#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub lint: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub waived: bool,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = if self.waived { " (waived)" } else { "" };
        write!(
            f,
            "{}:{}: [{}]{} {}",
            self.file, self.line, self.lint, w, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Ident,
    Punct(char),
    Lit,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: Kind,
    text: String,
    line: u32,
}

#[derive(Debug, Clone)]
struct Comment {
    line: u32,
    text: String,
    own_line: bool,
}

fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut last_tok_line = 0u32;

    let ident_start = |ch: char| ch.is_alphabetic() || ch == '_';
    let ident_char = |ch: char| ch.is_alphanumeric() || ch == '_';

    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (includes doc comments).
        if ch == '/' && i + 1 < n && c[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && c[j] != '\n' {
                j += 1;
            }
            comments.push(Comment {
                line,
                text: c[start..j].iter().collect(),
                own_line: last_tok_line != line,
            });
            i = j;
            continue;
        }
        // Block comment, nested.
        if ch == '/' && i + 1 < n && c[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if c[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if c[j] == '/' && j + 1 < n && c[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if c[j] == '*' && j + 1 < n && c[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // String literal.
        if ch == '"' {
            let tline = line;
            let mut j = i + 1;
            while j < n {
                if c[j] == '\\' {
                    j += 2;
                } else if c[j] == '"' {
                    j += 1;
                    break;
                } else {
                    if c[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: Kind::Lit,
                text: String::new(),
                line: tline,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if ch == '\'' {
            if i + 1 < n && c[i + 1] == '\\' {
                let mut j = i + 3; // opening quote, backslash, escaped char
                while j < n && c[j] != '\'' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: Kind::Lit,
                    text: String::new(),
                    line,
                });
                last_tok_line = line;
                i = j + 1;
                continue;
            }
            if i + 2 < n && c[i + 2] == '\'' {
                toks.push(Tok {
                    kind: Kind::Lit,
                    text: String::new(),
                    line,
                });
                last_tok_line = line;
                i += 3;
                continue;
            }
            // Lifetime: skip the tick and its identifier, emit nothing.
            let mut j = i + 1;
            while j < n && ident_char(c[j]) {
                j += 1;
            }
            i = j;
            continue;
        }
        // Number literal (keep text: tag/kind values are needed).
        if ch.is_ascii_digit() {
            let tline = line;
            let mut j = i + 1;
            while j < n && (c[j].is_ascii_alphanumeric() || c[j] == '_') {
                j += 1;
            }
            if j + 1 < n && c[j] == '.' && c[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (c[j].is_ascii_alphanumeric() || c[j] == '_') {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: Kind::Lit,
                text: c[i..j].iter().collect(),
                line: tline,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }
        // Identifier (with raw/byte string prefix handling).
        if ident_start(ch) {
            let tline = line;
            let mut j = i + 1;
            while j < n && ident_char(c[j]) {
                j += 1;
            }
            let word: String = c[i..j].iter().collect();
            // Raw strings: r"..", r#".."#, br".."
            if (word == "r" || word == "br") && j < n && (c[j] == '"' || c[j] == '#') {
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && c[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && c[k] == '"' {
                    k += 1;
                    'raw: while k < n {
                        if c[k] == '\n' {
                            line += 1;
                        } else if c[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && k + 1 + h < n && c[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        k += 1;
                    }
                    toks.push(Tok {
                        kind: Kind::Lit,
                        text: String::new(),
                        line: tline,
                    });
                    last_tok_line = tline;
                    i = k;
                    continue;
                }
            }
            // Byte strings/chars: b".." / b'..' — let the next loop pass
            // lex the quoted part as a normal string/char literal.
            toks.push(Tok {
                kind: Kind::Ident,
                text: word,
                line: tline,
            });
            last_tok_line = tline;
            i = j;
            continue;
        }
        // Everything else: single-char punctuation.
        toks.push(Tok {
            kind: Kind::Punct(ch),
            text: String::new(),
            line,
        });
        last_tok_line = line;
        i += 1;
    }
    (toks, comments)
}

// ---------------------------------------------------------------------------
// Context pass: test regions, enum bodies, enclosing functions
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FnInfo {
    name: String,
    /// Token range `[start, end)` covering `fn` keyword through the body `{`.
    sig: (usize, usize),
    /// Token indices of the body's opening and closing braces (inclusive).
    body: (usize, usize),
    is_test: bool,
}

struct Ctx {
    in_test: Vec<bool>,
    in_enum: Vec<bool>,
    fn_of: Vec<Option<usize>>,
    fns: Vec<FnInfo>,
}

fn build_ctx(toks: &[Tok]) -> Ctx {
    let n = toks.len();
    let mut ctx = Ctx {
        in_test: vec![false; n],
        in_enum: vec![false; n],
        fn_of: vec![None; n],
        fns: Vec::new(),
    };
    let mut depth: i32 = 0;
    let mut paren: i32 = 0;
    let mut brack: i32 = 0;
    let mut test_stack: Vec<i32> = Vec::new();
    let mut enum_stack: Vec<i32> = Vec::new();
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    let mut pending_attr_test = false;
    let mut pending_test_item = false;
    let mut pending_enum = false;
    // (name, sig_start): a fn header seen, waiting for its body `{`.
    let mut awaiting: Option<(String, usize)> = None;

    let is_p = |i: usize, ch: char| matches!(toks.get(i), Some(t) if t.kind == Kind::Punct(ch));

    let mut i = 0usize;
    while i < n {
        ctx.in_test[i] = !test_stack.is_empty();
        ctx.in_enum[i] = !enum_stack.is_empty();
        ctx.fn_of[i] = fn_stack.last().map(|&(f, _)| f);

        // Attributes: scan `#[..]` / `#![..]` wholesale so their contents
        // (derive lists, cfg predicates) never reach keyword handling.
        if is_p(i, '#') {
            let open = if is_p(i + 1, '[') {
                Some(i + 2)
            } else if is_p(i + 1, '!') && is_p(i + 2, '[') {
                Some(i + 3)
            } else {
                None
            };
            if let Some(start) = open {
                let mut bd = 1i32;
                let mut saw_test = false;
                let mut saw_not = false;
                let mut j = start;
                while j < n && bd > 0 {
                    match &toks[j].kind {
                        Kind::Punct('[') => bd += 1,
                        Kind::Punct(']') => bd -= 1,
                        Kind::Ident => {
                            saw_test |= toks[j].text == "test";
                            saw_not |= toks[j].text == "not";
                        }
                        _ => {}
                    }
                    ctx.in_test[j] = !test_stack.is_empty();
                    ctx.in_enum[j] = !enum_stack.is_empty();
                    ctx.fn_of[j] = fn_stack.last().map(|&(f, _)| f);
                    j += 1;
                }
                if saw_test && !saw_not {
                    pending_attr_test = true;
                }
                i = j;
                continue;
            }
        }

        match &toks[i].kind {
            Kind::Ident => match toks[i].text.as_str() {
                "fn" => {
                    if pending_attr_test {
                        pending_test_item = true;
                        pending_attr_test = false;
                    }
                    // Only a named fn item (not a fn-pointer type) opens a
                    // new function frame.
                    if let Some(t) = toks.get(i + 1) {
                        if t.kind == Kind::Ident {
                            awaiting = Some((t.text.clone(), i));
                        }
                    }
                }
                "mod" | "struct" | "impl" | "trait" | "union" | "type" | "static" | "use"
                    if pending_attr_test =>
                {
                    pending_test_item = true;
                    pending_attr_test = false;
                }
                "enum" => {
                    if pending_attr_test {
                        pending_test_item = true;
                        pending_attr_test = false;
                    }
                    pending_enum = true;
                }
                _ => {}
            },
            Kind::Punct('(') => paren += 1,
            Kind::Punct(')') => paren -= 1,
            Kind::Punct('[') => brack += 1,
            Kind::Punct(']') => brack -= 1,
            Kind::Punct(';') if paren == 0 && brack == 0 => {
                // Bodyless items: trait method decls, `mod x;`, uses.
                awaiting = None;
                pending_enum = false;
                pending_test_item = false;
                pending_attr_test = false;
            }
            Kind::Punct('{') => {
                depth += 1;
                if let Some((name, sig_start)) = awaiting.take() {
                    let idx = ctx.fns.len();
                    ctx.fns.push(FnInfo {
                        name,
                        sig: (sig_start, i),
                        body: (i, n.saturating_sub(1)),
                        is_test: pending_test_item || !test_stack.is_empty(),
                    });
                    fn_stack.push((idx, depth));
                }
                if pending_test_item {
                    test_stack.push(depth);
                    pending_test_item = false;
                }
                if pending_enum {
                    enum_stack.push(depth);
                    pending_enum = false;
                }
            }
            Kind::Punct('}') => {
                while fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    let (f, _) = fn_stack.pop().unwrap_or((0, 0));
                    ctx.fns[f].body.1 = i;
                }
                while test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                while enum_stack.last() == Some(&depth) {
                    enum_stack.pop();
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    ctx
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

/// The comment marker that introduces a waiver.
pub const WAIVER_MARKER: &str = "tq-lint:";

#[derive(Debug)]
struct Waiver {
    lint: String,
    lines: Vec<u32>,
}

fn parse_waivers(comments: &[Comment], toks: &[Tok], file: &str) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    let mut bad = |line: u32, message: String| {
        diags.push(Diagnostic {
            lint: L_WAIVER,
            file: file.to_string(),
            line,
            message,
            waived: false,
        });
    };
    for cm in comments {
        let Some(pos) = cm.text.find(WAIVER_MARKER) else {
            continue;
        };
        let rest = cm.text[pos + WAIVER_MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(
                cm.line,
                "malformed waiver: expected `allow(<lint>) -- <justification>`".to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(cm.line, "malformed waiver: missing `)`".to_string());
            continue;
        };
        let name = rest[..close].trim();
        if !LINTS.iter().any(|&(l, _)| l == name) || name == L_WAIVER {
            bad(cm.line, format!("waiver names unknown lint `{name}`"));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(just) = after.strip_prefix("--") else {
            bad(
                cm.line,
                format!("waiver for `{name}` is missing the mandatory `-- <justification>`"),
            );
            continue;
        };
        if just.trim().is_empty() {
            bad(
                cm.line,
                format!("waiver for `{name}` has an empty justification"),
            );
            continue;
        }
        let mut lines = vec![cm.line];
        if cm.own_line {
            // An own-line waiver covers the next code line.
            if let Some(t) = toks.iter().find(|t| t.line > cm.line) {
                lines.push(t.line);
            }
        }
        waivers.push(Waiver {
            lint: name.to_string(),
            lines,
        });
    }
    (waivers, diags)
}

// ---------------------------------------------------------------------------
// Shared pass scaffolding
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    ctx: &'a Ctx,
}

impl FileCtx<'_> {
    fn id(&self, i: usize, s: &str) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == Kind::Ident && t.text == s)
    }
    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i) {
            Some(t) if t.kind == Kind::Ident => Some(&t.text),
            _ => None,
        }
    }
    fn p(&self, i: usize, ch: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == Kind::Punct(ch))
    }
    fn lit(&self, i: usize) -> Option<&str> {
        match self.toks.get(i) {
            Some(t) if t.kind == Kind::Lit => Some(&t.text),
            _ => None,
        }
    }
    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }
    fn diag(&self, lint: &'static str, i: usize, message: String) -> Diagnostic {
        Diagnostic {
            lint,
            file: self.path.to_string(),
            line: self.line(i),
            message,
            waived: false,
        }
    }
    /// Index of the `}` matching the `{` at `open` (brace counting only).
    fn match_brace(&self, open: usize) -> usize {
        let mut d = 0i32;
        for (k, t) in self.toks.iter().enumerate().skip(open) {
            match t.kind {
                Kind::Punct('{') => d += 1,
                Kind::Punct('}') => {
                    d -= 1;
                    if d == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        self.toks.len().saturating_sub(1)
    }
}

fn parse_u8(text: &str) -> Option<u8> {
    let t = text.replace('_', "");
    let t = t.strip_suffix("u8").unwrap_or(&t);
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u8::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

// ---------------------------------------------------------------------------
// L1: idempotent-mutation
// ---------------------------------------------------------------------------

/// Monotone helpers that are allowed to touch node-state maps directly.
const L1_ALLOWED_FNS: &[&str] = &["remember"];

fn l1_idempotent_mutation(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !f.path.ends_with("crates/cluster/src/node.rs") {
        return;
    }
    for i in 1..f.toks.len() {
        if f.ctx.in_test[i] {
            continue;
        }
        let Some(m) = f.ident(i) else { continue };
        if (m == "insert" || m == "remove") && f.p(i - 1, '.') && f.p(i + 1, '(') {
            let fname = f.ctx.fn_of[i]
                .map(|x| f.ctx.fns[x].name.as_str())
                .unwrap_or("");
            if !L1_ALLOWED_FNS.contains(&fname) {
                out.push(f.diag(
                    L_IDEMPOTENT,
                    i,
                    format!(
                        "direct `.{m}(` on node state in `{fname}`; mutations must go through \
                         a monotone-conditional helper ({L1_ALLOWED_FNS:?}) so redelivered \
                         ops stay idempotent"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L2: opid-echo
// ---------------------------------------------------------------------------

fn l2_opid_echo(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let n = f.toks.len();
    for i in 0..n {
        if f.ctx.in_test[i] || f.ctx.in_enum[i] {
            continue;
        }
        let Some(name) = f.ident(i) else { continue };
        if name != "Reply" && name != "RoundReply" {
            continue;
        }
        if !f.p(i + 1, '{') {
            continue;
        }
        // Not a literal: type/item positions (`-> Reply {`, `impl Reply {`,
        // `struct Reply {`) and path-qualified enum variants
        // (`LimboMsg::Reply {`) are skipped.
        if i > 0 {
            match &f.toks[i - 1].kind {
                Kind::Punct('>') | Kind::Punct(':') => continue,
                Kind::Ident => {
                    if matches!(
                        f.toks[i - 1].text.as_str(),
                        "struct" | "enum" | "union" | "trait" | "impl" | "for" | "dyn" | "mod"
                    ) {
                        continue;
                    }
                }
                _ => {}
            }
        }
        let open = i + 1;
        let close = f.match_brace(open);
        // Scan the literal body at nesting depth 0 (relative to the braces).
        let mut d = 0i32;
        let mut has_dotdot = false;
        let mut op_id_ok: Option<bool> = None; // None: no op_id field at all
        let mut j = open + 1;
        while j < close {
            match &f.toks[j].kind {
                Kind::Punct('{') | Kind::Punct('(') | Kind::Punct('[') => d += 1,
                Kind::Punct('}') | Kind::Punct(')') | Kind::Punct(']') => d -= 1,
                Kind::Punct('.') if d == 0 && f.p(j + 1, '.') => {
                    has_dotdot = true;
                }
                Kind::Ident if d == 0 && f.toks[j].text == "op_id" => {
                    let field_pos = j == open + 1 || f.p(j - 1, ',');
                    if field_pos {
                        if f.p(j + 1, ':') {
                            // `op_id: <expr>` — the expression must mention
                            // an `op_id` (e.g. `env.op_id`, `header.op_id`).
                            let mut k = j + 2;
                            let mut vd = 0i32;
                            let mut ok = false;
                            while k < close {
                                match &f.toks[k].kind {
                                    Kind::Punct('{') | Kind::Punct('(') | Kind::Punct('[') => {
                                        vd += 1
                                    }
                                    Kind::Punct('}') | Kind::Punct(')') | Kind::Punct(']') => {
                                        vd -= 1
                                    }
                                    Kind::Punct(',') if vd == 0 => break,
                                    Kind::Ident if f.toks[k].text == "op_id" => ok = true,
                                    _ => {}
                                }
                                k += 1;
                            }
                            op_id_ok = Some(ok);
                        } else {
                            // Shorthand `op_id` — threads the binding.
                            op_id_ok = Some(true);
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if has_dotdot {
            // Destructuring pattern or struct-update from an existing reply;
            // either way the op_id originates from a real reply.
            continue;
        }
        match op_id_ok {
            None => out.push(f.diag(
                L_OPID,
                i,
                format!(
                    "`{name}` literal without an `op_id` field; every reply must echo the \
                     incoming envelope's op id (use `Reply::to(&env, ..)`)"
                ),
            )),
            Some(false) => out.push(f.diag(
                L_OPID,
                i,
                format!(
                    "`{name}` literal fabricates its identity: the `op_id` expression does \
                     not thread an incoming `op_id`"
                ),
            )),
            Some(true) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// L3: wire-tag-coverage
// ---------------------------------------------------------------------------

fn l3_wire_tag_coverage(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !f.path.ends_with("wire.rs") {
        return;
    }
    let n = f.toks.len();

    // 1. Collect `pub const NAME: u8 = <lit>;` inside `mod tag { .. }`.
    let mut tag_mod: Option<(usize, usize)> = None;
    for i in 0..n {
        if f.id(i, "mod") && f.id(i + 1, "tag") && f.p(i + 2, '{') {
            tag_mod = Some((i + 2, f.match_brace(i + 2)));
            break;
        }
    }
    let mut consts: Vec<(String, u8, usize)> = Vec::new(); // (name, value, tok idx)
    if let Some((o, c)) = tag_mod {
        let mut j = o + 1;
        while j < c {
            if f.id(j, "const") {
                if let Some(name) = f.ident(j + 1) {
                    let cname = name.to_string();
                    let mut k = j + 2;
                    let mut val = None;
                    while k < c && !f.p(k, ';') {
                        if f.p(k, '=') {
                            if let Some(v) = f.lit(k + 1).and_then(parse_u8) {
                                val = Some(v);
                            }
                        }
                        k += 1;
                    }
                    if let Some(v) = val {
                        consts.push((cname, v, j + 1));
                    }
                    j = k;
                }
            }
            j += 1;
        }
    }

    // 2. Classify every `tag::NAME` use outside the module as a decoder arm
    //    (`tag::NAME =>`, or an alternation limb) or an emission.
    let (mod_o, mod_c) = tag_mod.unwrap_or((usize::MAX, 0));
    let mut arms: Vec<(String, Option<usize>)> = Vec::new();
    let mut emits: Vec<(String, usize)> = Vec::new();
    for i in 0..n {
        if f.ctx.in_test[i] || (i >= mod_o && i <= mod_c) {
            continue;
        }
        if !(f.id(i, "tag") && f.p(i + 1, ':') && f.p(i + 2, ':')) {
            continue;
        }
        let Some(name) = f.ident(i + 3) else { continue };
        if !consts.iter().any(|(c, _, _)| c == name) {
            continue;
        }
        let after = i + 4;
        let is_arm = (f.p(after, '=') && f.p(after + 1, '>'))
            || f.p(after, '|')
            || (i > 0 && f.p(i - 1, '|'));
        if is_arm {
            arms.push((name.to_string(), f.ctx.fn_of[i]));
        } else {
            emits.push((name.to_string(), i));
        }
    }

    // 3a. Within one decoder fn, two tag names must not share a value.
    let mut fns_with_arms: Vec<Option<usize>> = arms.iter().map(|&(_, fx)| fx).collect();
    fns_with_arms.sort_unstable();
    fns_with_arms.dedup();
    for fx in fns_with_arms {
        let names: Vec<&str> = arms
            .iter()
            .filter(|&&(_, a)| a == fx)
            .map(|(nm, _)| nm.as_str())
            .collect();
        for (ai, a) in names.iter().enumerate() {
            for b in names.iter().skip(ai + 1) {
                if a == b {
                    continue;
                }
                let va = consts.iter().find(|(c, _, _)| c == a).map(|&(_, v, _)| v);
                let vb = consts.iter().find(|(c, _, _)| c == b).map(|&(_, v, _)| v);
                if va.is_some() && va == vb {
                    let idx = consts
                        .iter()
                        .find(|(c, _, _)| c == b)
                        .map(|&(_, _, k)| k)
                        .unwrap_or(0);
                    let fname = fx.map(|x| f.ctx.fns[x].name.as_str()).unwrap_or("?");
                    out.push(f.diag(
                        L_WIRETAG,
                        idx,
                        format!(
                            "`tag::{a}` and `tag::{b}` share value {:#04x} but are matched \
                             by the same decoder `{fname}`; one arm is unreachable",
                            va.unwrap_or(0)
                        ),
                    ));
                }
            }
        }
    }

    // 3b. Every emitted tag needs a decoder arm somewhere.
    let has_arm = |name: &str| arms.iter().any(|(a, _)| a == name);
    let mut reported: Vec<&str> = Vec::new();
    for (name, i) in &emits {
        if !has_arm(name) && !reported.contains(&name.as_str()) {
            reported.push(name);
            out.push(f.diag(
                L_WIRETAG,
                *i,
                format!("`tag::{name}` is emitted by an encoder but no decoder arm matches it"),
            ));
        }
    }

    // 3c. Every locally defined tag needs an explicit arm: the
    //     forward-compat skip path only excuses tags we did NOT define.
    for (name, _, idx) in &consts {
        if !has_arm(name) {
            out.push(f.diag(
                L_WIRETAG,
                *idx,
                format!(
                    "`tag::{name}` is defined but no decoder arm matches it; the \
                     forward-compat skip path only covers foreign tags"
                ),
            ));
        }
    }

    // 4. FrameKind code tables must stay symmetric and collision-free.
    let mut enc: Vec<(String, u8, usize)> = Vec::new();
    let mut dec: Vec<(String, u8)> = Vec::new();
    for i in 0..n {
        if f.ctx.in_test[i] {
            continue;
        }
        if !(f.id(i, "FrameKind") && f.p(i + 1, ':') && f.p(i + 2, ':')) {
            continue;
        }
        let Some(name) = f.ident(i + 3) else { continue };
        if f.p(i + 4, '=') && f.p(i + 5, '>') {
            if let Some(v) = f.lit(i + 6).and_then(parse_u8) {
                enc.push((name.to_string(), v, i));
                continue;
            }
        }
        // Decode arm: `<lit> => .. FrameKind::Name ..` a few tokens back.
        let lo = i.saturating_sub(8);
        for j in (lo..i).rev() {
            if f.p(j, '>') && j > 0 && f.p(j - 1, '=') {
                if let Some(v) = f.lit(j.saturating_sub(2)).and_then(parse_u8) {
                    dec.push((name.to_string(), v));
                }
                break;
            }
        }
    }
    for (name, v, i) in &enc {
        if !dec.iter().any(|(dn, dv)| dn == name && dv == v) {
            out.push(f.diag(
                L_WIRETAG,
                *i,
                format!(
                    "`FrameKind::{name}` encodes as {v:#04x} but `from_code` has no \
                     matching arm"
                ),
            ));
        }
        if enc.iter().any(|(on, ov, _)| on != name && ov == v) {
            out.push(f.diag(
                L_WIRETAG,
                *i,
                format!("`FrameKind::{name}` shares code {v:#04x} with another kind"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L4: sim-determinism
// ---------------------------------------------------------------------------

/// Modules that must stay deterministic: the sim crate itself plus every
/// node-logic module reachable from `SimTransport`. `tcp.rs` is excluded —
/// it is real-clock by nature and unreachable from the simulator.
fn l4_in_scope(path: &str) -> bool {
    path.contains("crates/sim/")
        || [
            "crates/cluster/src/sim.rs",
            "crates/cluster/src/node.rs",
            "crates/cluster/src/storage.rs",
            "crates/cluster/src/rpc.rs",
            "crates/cluster/src/wire.rs",
            "crates/cluster/src/quorum_round.rs",
            "crates/cluster/src/transport.rs",
            "crates/cluster/src/detmap.rs",
            "crates/cluster/src/health.rs",
        ]
        .iter()
        .any(|s| path.ends_with(s))
}

fn l4_sim_determinism(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !l4_in_scope(f.path) {
        return;
    }
    for i in 0..f.toks.len() {
        if f.ctx.in_test[i] {
            continue;
        }
        let Some(name) = f.ident(i) else { continue };
        let path_head =
            |head: &str| i >= 3 && f.p(i - 1, ':') && f.p(i - 2, ':') && f.id(i - 3, head);
        match name {
            "now" if path_head("Instant") || path_head("SystemTime") => {
                out.push(f.diag(
                    L_SIMDET,
                    i,
                    "wall-clock read in sim-reachable code; use the virtual clock".to_string(),
                ));
            }
            "sleep" if path_head("thread") => {
                out.push(
                    f.diag(
                        L_SIMDET,
                        i,
                        "`thread::sleep` in sim-reachable code; schedule on the virtual clock"
                            .to_string(),
                    ),
                );
            }
            "thread_rng" => {
                out.push(f.diag(
                    L_SIMDET,
                    i,
                    "OS entropy in sim-reachable code; thread the seeded DST rng".to_string(),
                ));
            }
            "HashMap" | "HashSet" | "RandomState" => {
                out.push(f.diag(
                    L_SIMDET,
                    i,
                    format!(
                        "`{name}` uses per-process random hashing (nondeterministic iteration \
                         order); use `detmap::Det{}`",
                        if name == "HashSet" {
                            "HashSet"
                        } else {
                            "HashMap"
                        }
                    ),
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// L5: panic-freedom
// ---------------------------------------------------------------------------

fn l5_panic_freedom(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let is_wire = f.path.ends_with("wire.rs");
    let is_node = f.path.ends_with("crates/cluster/src/node.rs");
    if !is_wire && !is_node {
        return;
    }
    let sig_mentions = |fx: &FnInfo, names: &[&str]| {
        f.toks[fx.sig.0..fx.sig.1]
            .iter()
            .any(|t| t.kind == Kind::Ident && names.contains(&t.text.as_str()))
    };
    for fx in &f.ctx.fns {
        if fx.is_test {
            continue;
        }
        // Decode paths return DecodeError; serve paths return Reply or
        // NodeError. Everything else (encoders, lock plumbing) is free to
        // use infallible idioms.
        let scoped = if is_wire {
            sig_mentions(fx, &["DecodeError"])
        } else {
            sig_mentions(fx, &["NodeError", "Reply"])
        };
        if !scoped {
            continue;
        }
        let (open, close) = fx.body;
        for i in open..=close.min(f.toks.len().saturating_sub(1)) {
            if f.ctx.in_test[i] {
                continue;
            }
            match &f.toks[i].kind {
                Kind::Ident => {
                    let t = f.toks[i].text.as_str();
                    if (t == "unwrap" || t == "expect") && i > 0 && f.p(i - 1, '.') {
                        out.push(f.diag(
                            L_PANIC,
                            i,
                            format!(
                                "`.{t}()` in the total path `{}`; decode/serve paths must \
                                 return errors, never panic",
                                fx.name
                            ),
                        ));
                    } else if matches!(
                        t,
                        "panic"
                            | "unreachable"
                            | "todo"
                            | "unimplemented"
                            | "assert"
                            | "assert_eq"
                            | "assert_ne"
                    ) && f.p(i + 1, '!')
                    {
                        out.push(f.diag(
                            L_PANIC,
                            i,
                            format!("`{t}!` in the total path `{}`", fx.name),
                        ));
                    }
                }
                Kind::Punct('[') if i > 0 => {
                    // Indexing: `expr[..]`. Array types/literals and
                    // attributes are preceded by punctuation, never by an
                    // ident/`)`/`]`.
                    let indexing = match &f.toks[i - 1].kind {
                        Kind::Ident => !matches!(
                            f.toks[i - 1].text.as_str(),
                            // keywords that can directly precede `[`
                            // (`let [v] = ..` destructures, no panic)
                            "let" | "mut" | "return" | "in" | "as" | "else" | "match" | "if"
                        ),
                        Kind::Punct(')') | Kind::Punct(']') => true,
                        _ => false,
                    };
                    if indexing {
                        out.push(f.diag(
                            L_PANIC,
                            i,
                            format!(
                                "slice indexing can panic in the total path `{}`; use \
                                 `.get(..)` and return an error",
                                fx.name
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L6: lock-across-transport
// ---------------------------------------------------------------------------

fn lock_like(name: &str) -> bool {
    name == "lock" || name == "lock_arc" || name.ends_with("_lock")
}

fn l6_lock_across_transport(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    let n = f.toks.len();
    let mut guards: Vec<(String, i32, u32)> = Vec::new(); // (binding, depth, line)
    let mut depth: i32 = 0;
    let mut i = 0usize;
    while i < n {
        if f.p(i, '{') {
            depth += 1;
            i += 1;
            continue;
        }
        if f.p(i, '}') {
            guards.retain(|&(_, d, _)| d < depth);
            depth -= 1;
            i += 1;
            continue;
        }
        if f.ctx.in_test[i] {
            i += 1;
            continue;
        }
        // Explicit release.
        if f.id(i, "drop") && f.p(i + 1, '(') && f.p(i + 3, ')') {
            if let Some(name) = f.ident(i + 2) {
                guards.retain(|(g, _, _)| g != name);
            }
        }
        // `let [mut] <name> [: ty] = <expr ending in a lock() call>;`
        if f.id(i, "let") && !(i > 0 && (f.id(i - 1, "if") || f.id(i - 1, "while"))) {
            let mut j = i + 1;
            if f.id(j, "mut") {
                j += 1;
            }
            if let Some(name) = f.ident(j) {
                let binding = name.to_string();
                let mut k = j + 1;
                while k < n && !f.p(k, '=') && !f.p(k, ';') {
                    k += 1;
                }
                if f.p(k, '=') && binding != "_" {
                    let start = k + 1;
                    let mut d2 = 0i32;
                    let mut m = start;
                    while m < n {
                        match &f.toks[m].kind {
                            Kind::Punct('(') | Kind::Punct('[') | Kind::Punct('{') => d2 += 1,
                            Kind::Punct(')') | Kind::Punct(']') | Kind::Punct('}') => {
                                if d2 == 0 {
                                    break;
                                }
                                d2 -= 1;
                            }
                            Kind::Punct(';') if d2 == 0 => break,
                            _ => {}
                        }
                        m += 1;
                    }
                    let mut last = m;
                    if last > start && f.p(last - 1, '?') {
                        last -= 1;
                    }
                    // Guard iff the initializer's final call is lock-like:
                    // `..lock(..)` as the last tokens of the expression.
                    if last > start + 1 && f.p(last - 1, ')') {
                        let close = last - 1;
                        let mut d3 = 0i32;
                        let mut o = close;
                        loop {
                            match &f.toks[o].kind {
                                Kind::Punct(')') => d3 += 1,
                                Kind::Punct('(') => {
                                    d3 -= 1;
                                    if d3 == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            if o == start {
                                break;
                            }
                            o -= 1;
                        }
                        if d3 == 0 && o > start {
                            if let Some(mname) = f.ident(o - 1) {
                                if lock_like(mname) {
                                    guards.push((binding, depth, f.line(i)));
                                }
                            }
                        }
                    }
                }
            }
        }
        if f.id(i, "transport") && f.p(i + 1, '.') && !guards.is_empty() {
            let (g, _, gl) = &guards[guards.len() - 1];
            out.push(f.diag(
                L_LOCK,
                i,
                format!(
                    "`transport.` call while lock guard `{g}` (taken line {gl}) is live; \
                     release the guard before any transport round-trip"
                ),
            ));
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// L7: unsafe-allow
// ---------------------------------------------------------------------------

/// The single sanctioned `allow(unsafe_code)` site: runtime-detected SIMD
/// intrinsics.
const L7_EXEMPT: &str = "crates/gf256/src/simd.rs";

fn l7_unsafe_allow(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    if f.path.ends_with(L7_EXEMPT) {
        return;
    }
    let n = f.toks.len();
    for i in 0..n {
        if !(f.id(i, "allow") && f.p(i + 1, '(')) {
            continue;
        }
        let mut d = 1i32;
        let mut j = i + 2;
        while j < n && d > 0 {
            match &f.toks[j].kind {
                Kind::Punct('(') => d += 1,
                Kind::Punct(')') => d -= 1,
                Kind::Ident if f.toks[j].text == "unsafe_code" => {
                    out.push(f.diag(
                        L_UNSAFE,
                        j,
                        format!(
                            "`allow(unsafe_code)` outside the sanctioned site \
                             ({L7_EXEMPT}); the workspace bans unsafe code"
                        ),
                    ));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// L8: bounded-retry
// ---------------------------------------------------------------------------

/// Client-side dispatch surfaces: the protocol client crate plus the
/// transports. The quorum engine (`quorum_round.rs`) is out of scope —
/// its loops walk distinct ops/slots and dispatch each envelope exactly
/// once per round by construction.
fn l8_in_scope(path: &str) -> bool {
    path.contains("crates/core/src/")
        || [
            "crates/cluster/src/tcp.rs",
            "crates/cluster/src/transport.rs",
            "crates/cluster/src/sim.rs",
        ]
        .iter()
        .any(|s| path.ends_with(s))
}

/// Call idioms that put an envelope (or a whole round of them) on the
/// wire. A loop whose body contains one is re-dispatching under its own
/// control flow, which is exactly where an unbudgeted retry storm hides.
const L8_DISPATCH: &[&str] = &[
    "dispatch",
    "multicall",
    "multicall_hedged",
    "run_recorded",
    "run_fused",
    "schedule_request",
];

/// Idioms that prove the loop draws on the retry budget.
const L8_BUDGET: &[&str] = &["try_spend", "RetryBudget"];

fn l8_bounded_retry(f: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !l8_in_scope(f.path) {
        return;
    }
    let n = f.toks.len();
    // Collect loop bodies as (open, close) brace token indices. Only the
    // open-ended forms count: a `for` loop is bounded by its iterator by
    // construction (fan-outs and level walks dispatch each target once),
    // and lexing `for` naively would also swallow `impl Trait for Type`
    // headers. `loop`/`while` have no such intrinsic bound — there the
    // budget is the only thing standing between a straggler and a storm.
    let mut loops: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        let Some(kw) = f.ident(i) else { continue };
        if !matches!(kw, "loop" | "while") {
            continue;
        }
        // `.loop`-like method paths lex as their own idents; a loop
        // keyword is never preceded by `.`.
        if i > 0 && f.p(i - 1, '.') {
            continue;
        }
        // The body `{` follows immediately for `loop`; for `while` it is
        // the first brace outside the header's parens/brackets.
        let mut j = i + 1;
        let (mut paren, mut brack) = (0i32, 0i32);
        let open = loop {
            match f.toks.get(j).map(|t| &t.kind) {
                None => break None,
                Some(Kind::Punct('(')) => paren += 1,
                Some(Kind::Punct(')')) => paren -= 1,
                Some(Kind::Punct('[')) => brack += 1,
                Some(Kind::Punct(']')) => brack -= 1,
                Some(Kind::Punct('{')) if paren == 0 && brack == 0 => break Some(j),
                Some(Kind::Punct(';')) if paren == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        loops.push((open, f.match_brace(open)));
    }
    for d in 0..n {
        if f.ctx.in_test[d] {
            continue;
        }
        let Some(name) = f.ident(d) else { continue };
        if !L8_DISPATCH.contains(&name) || !f.p(d + 1, '(') {
            continue;
        }
        if d > 0 && f.id(d - 1, "fn") {
            continue; // a definition, not a call
        }
        // Attribute the call to its innermost enclosing loop; calls
        // outside any loop (or in a loop header's iterator expression)
        // dispatch once and are fine.
        let Some(&(open, close)) = loops
            .iter()
            .filter(|&&(o, c)| o < d && d < c)
            .min_by_key(|&&(o, c)| c - o)
        else {
            continue;
        };
        let consults =
            (open..=close).any(|k| matches!(f.ident(k), Some(t) if L8_BUDGET.contains(&t)));
        if !consults {
            out.push(f.diag(
                L_RETRY,
                d,
                format!(
                    "`{name}` inside a loop with no retry-budget consult; a re-dispatch loop \
                     must call `try_spend` (or carry a waiver naming why it is bounded)"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lint a single source file. `path` is the workspace-relative path with
/// forward slashes; lint applicability is decided from its suffix, so tests
/// can feed fixture sources under virtual paths.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let (toks, comments) = lex(src);
    let ctx = build_ctx(&toks);
    let f = FileCtx {
        path,
        toks: &toks,
        ctx: &ctx,
    };
    let (waivers, mut diags) = parse_waivers(&comments, &toks, path);
    l1_idempotent_mutation(&f, &mut diags);
    l2_opid_echo(&f, &mut diags);
    l3_wire_tag_coverage(&f, &mut diags);
    l4_sim_determinism(&f, &mut diags);
    l5_panic_freedom(&f, &mut diags);
    l6_lock_across_transport(&f, &mut diags);
    l7_unsafe_allow(&f, &mut diags);
    l8_bounded_retry(&f, &mut diags);
    for d in &mut diags {
        if d.lint != L_WAIVER
            && waivers
                .iter()
                .any(|w| w.lint == d.lint && w.lines.contains(&d.line))
        {
            d.waived = true;
        }
    }
    diags.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    diags
}

pub struct Report {
    pub files: usize,
    pub diags: Vec<Diagnostic>,
}

impl Report {
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| !d.waived)
    }
    pub fn waived(&self) -> usize {
        self.diags.iter().filter(|d| d.waived).count()
    }
}

/// Walk the first-party source tree under `root` and lint every `.rs` file.
/// `vendor/`, `target/`, and fixture directories are skipped.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut diags = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&rel, &src));
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(Report {
        files: files.len(),
        diags,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
