//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p tq-lint                  # advisory: print findings, exit 0
//! cargo run -p tq-lint -- --deny-all    # CI gate: unwaived findings exit 1
//! cargo run -p tq-lint -- --list        # print the lint catalog
//! cargo run -p tq-lint -- --verbose     # also print waived findings
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut verbose = false;
    let mut list = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-all" => deny_all = true,
            "--verbose" | "-v" => verbose = true,
            "--list" => list = true,
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("tq-lint: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
            }
            "--help" | "-h" => {
                println!(
                    "tq-lint [--root PATH] [--deny-all] [--verbose] [--list]\n\
                     Workspace invariant linter; see README.md `Static analysis`."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tq-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for (name, what) in tq_lint::LINTS {
            println!("{name:<22} {what}");
        }
        return ExitCode::SUCCESS;
    }

    let report = match tq_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tq-lint: walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let mut errors = 0usize;
    for d in &report.diags {
        if d.waived {
            if verbose {
                println!("{d}");
            }
        } else {
            errors += 1;
            println!("{d}");
        }
    }
    println!(
        "tq-lint: {} files scanned, {} error{}, {} waived",
        report.files,
        errors,
        if errors == 1 { "" } else { "s" },
        report.waived()
    );
    if deny_all && errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
