//! Waiver-syntax behaviour and the clean-workspace self-run gate.

use std::path::Path;

use tq_lint::{lint_source, L_OPID, L_WAIVER};

const BAD_REPLY: &str = "Reply { op_id: OpId::fresh(), round_epoch: 0, result: r }";

fn one_opid_diag(src: &str) -> tq_lint::Diagnostic {
    let diags = lint_source("crates/cluster/src/x.rs", src);
    let mut hits = diags.into_iter().filter(|d| d.lint == L_OPID);
    let d = hits.next().expect("opid-echo should fire");
    assert!(hits.next().is_none(), "expected exactly one opid-echo hit");
    d
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = format!(
        "fn f(r: R) -> Reply {{\n    {BAD_REPLY} // tq-lint: allow(opid-echo) -- fixture: fabricated on purpose\n}}\n"
    );
    assert!(one_opid_diag(&src).waived);
}

#[test]
fn own_line_waiver_covers_the_next_code_line() {
    let src = format!(
        "fn f(r: R) -> Reply {{\n    // tq-lint: allow(opid-echo) -- fixture: fabricated on purpose\n    {BAD_REPLY}\n}}\n"
    );
    assert!(one_opid_diag(&src).waived);
}

#[test]
fn waiver_does_not_leak_past_the_next_line() {
    let src = format!(
        "fn f(r: R) -> Reply {{\n    // tq-lint: allow(opid-echo) -- fixture: only covers the next line\n    let x = 1;\n    {BAD_REPLY}\n}}\n"
    );
    assert!(!one_opid_diag(&src).waived);
}

#[test]
fn waiver_for_a_different_lint_does_not_apply() {
    let src = format!(
        "fn f(r: R) -> Reply {{\n    {BAD_REPLY} // tq-lint: allow(panic-freedom) -- wrong lint on purpose\n}}\n"
    );
    assert!(!one_opid_diag(&src).waived);
}

#[test]
fn missing_justification_is_rejected_and_does_not_waive() {
    let src = format!("fn f(r: R) -> Reply {{\n    {BAD_REPLY} // tq-lint: allow(opid-echo)\n}}\n");
    let diags = lint_source("crates/cluster/src/x.rs", &src);
    assert!(
        diags
            .iter()
            .any(|d| d.lint == L_WAIVER && d.message.contains("justification")),
        "malformed waiver must produce a waiver-syntax diagnostic"
    );
    assert!(
        diags.iter().any(|d| d.lint == L_OPID && !d.waived),
        "a malformed waiver must not suppress the underlying diagnostic"
    );
}

#[test]
fn unknown_lint_name_is_rejected() {
    let src = "fn f() {}\n// tq-lint: allow(no-such-lint) -- bogus\n";
    let diags = lint_source("crates/cluster/src/x.rs", src);
    assert!(diags
        .iter()
        .any(|d| d.lint == L_WAIVER && d.message.contains("no-such-lint")));
}

#[test]
fn waiver_syntax_itself_cannot_be_waived() {
    let src = "fn f() {}\n// tq-lint: allow(waiver-syntax) -- nice try\n";
    let diags = lint_source("crates/cluster/src/x.rs", src);
    assert!(
        diags.iter().any(|d| d.lint == L_WAIVER && !d.waived),
        "waiving the waiver meta-lint must be rejected"
    );
}

/// The standing gate: the workspace itself lints clean under
/// `--deny-all`. Run from the lint crate, two levels below the root.
#[test]
fn workspace_is_clean_under_deny_all() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tq_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        report.files > 50,
        "walk found too few files: {}",
        report.files
    );
    let errors: Vec<String> = report.errors().map(|d| d.to_string()).collect();
    assert!(
        errors.is_empty(),
        "unwaived lint errors in the workspace:\n{}",
        errors.join("\n")
    );
    assert!(
        report.waived() >= 4,
        "the documented in-tree waivers should be visible to the walk"
    );
}
