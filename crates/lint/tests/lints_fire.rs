//! Every lint must demonstrably fire on its known-bad fixture, at the
//! right spans — no lint is allowed to be vacuous. Fixtures mark each
//! expected diagnostic line with a `FIRE` comment (twice for lines that
//! produce two diagnostics); the tests compare the marker multiset
//! against the diagnostics the lint actually produced.

use std::collections::BTreeMap;

use tq_lint::lint_source;

/// `(line, expected diagnostic count)` for every marked fixture line.
fn fire_lines(src: &str) -> Vec<(u32, usize)> {
    src.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let c = l.matches("FIRE").count();
            if c > 0 {
                Some((u32::try_from(i + 1).unwrap_or(0), c))
            } else {
                None
            }
        })
        .collect()
}

/// `(line, count)` of unwaived diagnostics of `lint` in `src`.
fn diag_lines(path: &str, src: &str, lint: &str) -> Vec<(u32, usize)> {
    let mut by_line: BTreeMap<u32, usize> = BTreeMap::new();
    for d in lint_source(path, src) {
        if d.lint == lint && !d.waived {
            *by_line.entry(d.line).or_default() += 1;
        }
    }
    by_line.into_iter().collect()
}

fn assert_fires(fixture: &str, virtual_path: &str, lint: &str) {
    let expected = fire_lines(fixture);
    assert!(
        !expected.is_empty(),
        "fixture for {lint} has no FIRE markers"
    );
    let got = diag_lines(virtual_path, fixture, lint);
    assert_eq!(
        got, expected,
        "{lint} diagnostics (left) did not match the FIRE markers (right)"
    );
}

#[test]
fn l1_idempotent_mutation_fires() {
    assert_fires(
        include_str!("fixtures/l1_insert.rs"),
        "crates/cluster/src/node.rs",
        "idempotent-mutation",
    );
}

#[test]
fn l2_opid_echo_fires() {
    assert_fires(
        include_str!("fixtures/l2_reply.rs"),
        "crates/cluster/src/reply_site.rs",
        "opid-echo",
    );
}

#[test]
fn l3_wire_tag_coverage_fires() {
    assert_fires(
        include_str!("fixtures/l3_tags.rs"),
        "crates/cluster/src/wire.rs",
        "wire-tag-coverage",
    );
}

#[test]
fn l4_sim_determinism_fires() {
    assert_fires(
        include_str!("fixtures/l4_entropy.rs"),
        "crates/sim/src/jitter.rs",
        "sim-determinism",
    );
}

#[test]
fn l5_panic_freedom_fires() {
    assert_fires(
        include_str!("fixtures/l5_panic.rs"),
        "crates/cluster/src/wire.rs",
        "panic-freedom",
    );
}

#[test]
fn l6_lock_across_transport_fires() {
    assert_fires(
        include_str!("fixtures/l6_lock.rs"),
        "crates/cluster/src/quorum_round.rs",
        "lock-across-transport",
    );
}

#[test]
fn l7_unsafe_allow_fires() {
    assert_fires(
        include_str!("fixtures/l7_unsafe.rs"),
        "crates/quorum/src/probe.rs",
        "unsafe-allow",
    );
}

#[test]
fn l8_bounded_retry_fires() {
    assert_fires(
        include_str!("fixtures/l8_retry.rs"),
        "crates/core/src/retry_site.rs",
        "bounded-retry",
    );
}

#[test]
fn l8_out_of_scope_engine_is_exempt() {
    let diags = lint_source(
        "crates/cluster/src/quorum_round.rs",
        include_str!("fixtures/l8_retry.rs"),
    );
    assert!(
        diags.iter().all(|d| d.lint != "bounded-retry"),
        "the quorum engine dispatches once per round by construction and is out of scope"
    );
}

#[test]
fn l7_simd_site_is_sanctioned() {
    let diags = lint_source(
        "crates/gf256/src/simd.rs",
        include_str!("fixtures/l7_unsafe.rs"),
    );
    assert!(
        diags.iter().all(|d| d.lint != "unsafe-allow"),
        "the documented simd.rs allow site must not be flagged"
    );
}
