// Fixture for `wire-tag-coverage` (linted under the virtual path
// crates/cluster/src/wire.rs).

mod tag {
    pub const ALPHA: u8 = 0x01;
    pub const BETA: u8 = 0x02; // FIRE
    pub const DUP_A: u8 = 0x04;
    pub const DUP_B: u8 = 0x04; // FIRE
    pub const GHOST: u8 = 0x09; // FIRE
}

fn encode(out: &mut Vec<u8>) {
    out.push(tag::ALPHA);
    out.push(tag::BETA); // FIRE
}

fn decode(t: u8) -> u8 {
    match t {
        tag::ALPHA => 1,
        tag::DUP_A => 2,
        tag::DUP_B => 3,
        _ => 0,
    }
}

enum FrameKind {
    Request,
    Reply,
}

impl FrameKind {
    fn as_code(self) -> u8 {
        match self {
            FrameKind::Request => 0x01,
            FrameKind::Reply => 0x07, // FIRE
        }
    }

    fn from_code(c: u8) -> Option<FrameKind> {
        match c {
            0x01 => Some(FrameKind::Request),
            _ => None,
        }
    }
}
