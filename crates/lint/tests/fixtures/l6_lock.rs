// Fixture for `lock-across-transport`: a lock guard's scope may not
// enclose a transport call.

impl Client {
    fn bad_hold(&self) {
        let guard = self.state.lock();
        self.transport.send(ping()); // FIRE
        drop(guard);
        self.transport.send(ping()); // released: no diagnostic
    }

    fn bad_striped(&self, id: u64) {
        let _slot = self.shards.op_lock(id);
        let _ = self.transport.multicall(calls()); // FIRE
    }

    fn ok_scoped(&self) {
        {
            let mut guard = self.state.lock();
            guard.push(1);
        }
        self.transport.send(ping()); // guard scope closed: no diagnostic
    }

    fn ok_temporary(&self) {
        // The guard is a temporary dropped at the end of the statement,
        // not a live binding.
        let n = self.state.lock().len();
        self.transport.send(sized(n));
    }
}
