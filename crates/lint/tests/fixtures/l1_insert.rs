// Fixture for `idempotent-mutation` (linted under the virtual path
// crates/cluster/src/node.rs). Direct map mutation is only legal inside
// the allow-listed monotone helpers.

struct AppliedWindow {
    set: IdSet,
}

impl AppliedWindow {
    fn remember(&mut self, id: u64) {
        // Allow-listed helper: the insert/remove pair is the monotone
        // window discipline itself.
        if self.set.insert(id) {
            self.set.remove(&id);
        }
    }

    fn rogue_apply(&mut self, id: u64) {
        self.set.insert(id); // FIRE
    }

    fn rogue_forget(&mut self, id: u64) {
        self.set.remove(&id); // FIRE
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut w = super::AppliedWindow { set: IdSet::new() };
        w.set.insert(7); // test code: no diagnostic
    }
}
