// Fixture for `unsafe-allow` (linted under the virtual path
// crates/quorum/src/probe.rs — not the sanctioned simd.rs site).

#![allow(unsafe_code)] // FIRE

#[allow(unsafe_code)] // FIRE
fn sneaky() -> u8 {
    7
}

#[allow(dead_code)]
fn unrelated_allow_is_fine() -> u8 {
    8
}
