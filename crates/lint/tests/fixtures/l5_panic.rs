// Fixture for `panic-freedom` (linted under the virtual path
// crates/cluster/src/wire.rs). Only functions whose signature mentions
// DecodeError are in scope — decode paths must be total.

fn decode_header(buf: &[u8]) -> Result<u8, DecodeError> {
    let first = buf[0]; // FIRE
    let second = buf.get(1).unwrap(); // FIRE
    let tail: [u8; 2] = buf[2..4].try_into().expect("2 bytes"); // FIRE FIRE
    if first == 0xFF {
        panic!("reserved"); // FIRE
    }
    let [a] = fixed(buf, 0)?; // destructuring, no diagnostic
    Ok(first + second + tail[0] + a) // FIRE
}

fn encode_header(v: u8) -> Vec<u8> {
    // Out of scope: encoders are infallible by construction and may
    // index freely.
    let table = [v, v, v, v];
    vec![table[0], table[3]]
}

#[cfg(test)]
mod tests {
    fn round_trip() -> Result<u8, DecodeError> {
        // Test code: indexing and unwrap are fine here.
        let buf = [1u8, 2, 3, 4];
        Ok(buf[0] + decode_header(&buf).unwrap())
    }
}
