//! Known-bad fixture for `bounded-retry`: dispatch loops that never
//! consult the retry budget. Linted under a virtual `crates/core/src/`
//! path; fire markers tag every line that must produce a diagnostic.

fn naked_retry_loop(transport: &T, env: Envelope) {
    let mut tries = 0;
    loop {
        let reply = transport.dispatch(node, env.clone()); // FIRE
        if reply.is_ok() || tries > 3 {
            break;
        }
        tries += 1;
    }
}

fn widening_without_budget(pool: &[usize]) {
    let mut cursor = 0;
    while cursor < pool.len() {
        let outcome = run_recorded(transport, round, None, calls, report); // FIRE
        cursor += 1;
        if outcome.quorum_met() {
            break;
        }
    }
}

fn per_attempt_multicall(calls: Vec<(NodeId, Request)>) {
    let mut attempt = 0;
    while attempt < MAX_ATTEMPTS {
        let replies = transport.multicall(calls.clone()); // FIRE
        if !replies.is_empty() {
            return;
        }
        attempt += 1;
    }
}

fn budgeted_retry_loop(transport: &T, env: Envelope, health: &NodeHealth) {
    // Clean: the loop body consults the budget before every re-issue.
    loop {
        if !health.try_spend(Lane::Foreground) {
            break;
        }
        let reply = transport.dispatch(node, env.clone());
        if reply.is_ok() {
            break;
        }
    }
}

fn one_shot_dispatch(transport: &T, env: Envelope) {
    // Clean: not in a loop — a single dispatch is not a retry.
    let _ = transport.dispatch(node, env);
}

fn iterator_fanout(calls: Vec<(NodeId, Envelope)>) {
    // Clean: a `for` loop is bounded by its iterator by construction —
    // this fan-out dispatches each distinct envelope exactly once.
    for (node, env) in calls {
        transport.dispatch(node, env);
    }
}

fn waivered_bounded_walk(levels: usize) {
    let mut l = 0;
    while l < levels {
        // tq-lint: allow(bounded-retry) -- each trapezoid level dispatches exactly once; the walk is bounded by the shape, not a retry.
        let outcome = run_recorded(transport, round_for(l), Some(l), calls_for(l), report);
        consume(outcome);
        l += 1;
    }
}

impl Transport for ForwardingShim {
    // Clean: the `for` in an `impl Trait for Type` header is not a loop;
    // a plain forwarding method dispatches once.
    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        self.inner.dispatch(node, env)
    }
}
