// Fixture for `opid-echo`: every Reply/RoundReply literal must thread an
// incoming op_id.

fn fabricated(env: Envelope) -> Reply {
    Reply { // FIRE
        op_id: OpId::fresh(),
        round_epoch: env.round_epoch,
        result: Ok(Response::Ack),
    }
}

fn missing_field() -> Reply {
    Reply { // FIRE
        round_epoch: 0,
        result: Ok(Response::Ack),
    }
}

fn threaded(env: Envelope) -> Reply {
    Reply {
        op_id: env.op_id,
        round_epoch: env.round_epoch,
        result: Ok(Response::Ack),
    }
}

fn shorthand(op_id: OpId) -> RoundReply {
    RoundReply {
        op_id,
        node: NodeId(0),
        result: Ok(Response::Ack),
    }
}

fn destructure(r: Reply) -> OpId {
    let Reply { op_id, .. } = r;
    op_id
}

enum LimboMsg {
    // Variant *definition*: not a literal, no diagnostic.
    Reply { env: Envelope, reply: Reply },
}
