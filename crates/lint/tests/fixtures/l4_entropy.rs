// Fixture for `sim-determinism` (linted under the virtual path
// crates/sim/src/jitter.rs — inside the deterministic scope).

use std::collections::HashMap; // FIRE

fn jitter_badly() -> u64 {
    let started = std::time::Instant::now(); // FIRE
    std::thread::sleep(std::time::Duration::from_millis(1)); // FIRE
    let mut rng = rand::thread_rng(); // FIRE
    let when = std::time::SystemTime::now(); // FIRE
    let mut seen: HashMap<u64, u64> = HashMap::default(); // FIRE FIRE
    seen.insert(0, 0);
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut m = std::collections::HashMap::new(); // test code: no diagnostic
        m.insert(1, 1);
    }
}
