//! Versioned, length-prefixed binary wire format for node commands.
//!
//! Every [`Envelope`] and [`Reply`] travels as one *frame*: a fixed
//! 32-byte header followed by a variable-length body. The header is
//! self-checking (magic, version, and a CRC-32 over its own bytes), so a
//! desynchronised or corrupted stream is detected before any body byte
//! is trusted; the body is a flat tag-plus-fields encoding — compact and
//! non-self-describing, per the Carnot-bound bandwidth accounting that
//! motivates counting every wire byte.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "TQWF"
//!      4     1  version      WIRE_VERSION (1)
//!      5     1  kind         0x01 request frame / 0x02 reply frame
//!      6     2  flags        bit 0 = background lane; rest reserved (LE)
//!      8     8  op id        Envelope/Reply op identity, little-endian
//!     16     8  round epoch  issuing round's epoch, little-endian
//!     24     4  body len     bytes following the header, little-endian
//!     28     4  header CRC   CRC-32 (IEEE) over bytes 0..28
//! ```
//!
//! # Zero-copy bodies
//!
//! Decoding borrows block payloads straight out of the receive buffer:
//! [`decode_frame`] takes the buffer as a [`Bytes`] and every payload
//! field in the returned [`Request`]/[`Response`] is a
//! [`Bytes::slice`] sharing that allocation. The PR 5 zero-copy
//! contract — one allocation per block payload, refcounted everywhere —
//! survives serialization.
//!
//! # Trailing extensions
//!
//! The integrity-mode fields (cross-checksum vectors, the add-parity
//! fold coefficient, per-block self-checks) ride as *trailing
//! extensions* — `tag(u8) · len(u32) · payload` triples appended after
//! the fixed fields of exactly the five extended body variants
//! (init-parity / write-parity / add-parity requests; data / parity
//! responses). A decoder skips unknown extension tags and defaults
//! absent ones, so old frames decode on new peers and vice versa with
//! no wire-version bump; every other variant still rejects trailing
//! bytes outright.
//!
//! # Robustness
//!
//! [`decode_frame`] and [`Header::decode`] never panic and never read
//! past the supplied buffer, whatever the input: every failure is a
//! typed [`DecodeError`]. Length fields are validated against the bytes
//! actually present *before* any allocation, so an adversarial frame
//! cannot force an oversized allocation either.

use bytes::Bytes;
use core::fmt;

use crate::rpc::{Envelope, Lane, NodeError, OpId, Reply, Request, Response};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TQWF";

/// Header flag bit: the command travels in the background/maintenance
/// lane ([`Lane::Background`]). Foreground encodes as 0, so frames from
/// pre-lane peers decode as foreground and foreground frames stay
/// byte-identical to pre-lane encodings; peers that predate the bit
/// ignore it (flags have always been "must decode, may be any value").
pub const FLAG_BACKGROUND: u16 = 0x0001;

/// Current wire protocol version. Bump on any incompatible layout change.
pub const WIRE_VERSION: u8 = 1;

/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 32;

/// Upper bound on a frame body (64 MiB). Far above any real block, and
/// low enough that a corrupted length field cannot stall a reader on a
/// multi-gigabyte read.
pub const MAX_BODY_LEN: u32 = 64 << 20;

/// What a frame carries: the direction of the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The frame body is a [`Request`] (an [`Envelope`] on the wire).
    Request,
    /// The frame body is a `Result<Response, NodeError>` (a [`Reply`]).
    Reply,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Request => 0x01,
            FrameKind::Reply => 0x02,
        }
    }

    fn from_code(code: u8) -> Result<Self, DecodeError> {
        match code {
            0x01 => Ok(FrameKind::Request),
            0x02 => Ok(FrameKind::Reply),
            other => Err(DecodeError::UnknownKind(other)),
        }
    }
}

/// The decoded fixed header of one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Direction of the message in the body.
    pub kind: FrameKind,
    /// Flag bits. Bit 0 ([`FLAG_BACKGROUND`]) marks background-lane
    /// requests; the rest are reserved (decoders must tolerate any
    /// value so future versions can set bits without breaking old
    /// peers).
    pub flags: u16,
    /// Identity of the logical command (echoed by replies).
    pub op_id: OpId,
    /// Epoch of the issuing round (0 = no round).
    pub round_epoch: u64,
    /// Length of the body following the header.
    pub body_len: u32,
}

impl Header {
    /// Encodes the header into its fixed 32-byte layout.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4] = WIRE_VERSION;
        buf[5] = self.kind.code();
        buf[6..8].copy_from_slice(&self.flags.to_le_bytes());
        buf[8..16].copy_from_slice(&self.op_id.0.to_le_bytes());
        buf[16..24].copy_from_slice(&self.round_epoch.to_le_bytes());
        buf[24..28].copy_from_slice(&self.body_len.to_le_bytes());
        let crc = crc32(&buf[0..28]);
        buf[28..32].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and validates a header from the front of `buf`.
    ///
    /// Checks, in order: enough bytes, magic, header checksum, version,
    /// kind, body length bound. Never panics, never reads past `buf`.
    pub fn decode(buf: &[u8]) -> Result<Header, DecodeError> {
        if buf.len() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let magic: [u8; 4] = fixed(buf, 0)?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        // Checksum before semantic fields: a corrupt header must not be
        // interpreted, even partially.
        let stored_crc = u32::from_le_bytes(fixed(buf, 28)?);
        let covered = buf.get(0..28).ok_or(DecodeError::Truncated {
            needed: 28,
            got: buf.len(),
        })?;
        let actual_crc = crc32(covered);
        if stored_crc != actual_crc {
            return Err(DecodeError::HeaderChecksum {
                stored: stored_crc,
                computed: actual_crc,
            });
        }
        let [version] = fixed(buf, 4)?;
        if version != WIRE_VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let [kind_code] = fixed(buf, 5)?;
        let kind = FrameKind::from_code(kind_code)?;
        let flags = u16::from_le_bytes(fixed(buf, 6)?);
        let op_id = OpId(u64::from_le_bytes(fixed(buf, 8)?));
        let round_epoch = u64::from_le_bytes(fixed(buf, 16)?);
        let body_len = u32::from_le_bytes(fixed(buf, 24)?);
        if body_len > MAX_BODY_LEN {
            return Err(DecodeError::BodyTooLarge {
                len: body_len,
                max: MAX_BODY_LEN,
            });
        }
        Ok(Header {
            kind,
            flags,
            op_id,
            round_epoch,
            body_len,
        })
    }
}

/// Borrows `N` bytes at offset `at` as a fixed array, or reports
/// truncation. The index-free workhorse of [`Header::decode`].
fn fixed<const N: usize>(buf: &[u8], at: usize) -> Result<[u8; N], DecodeError> {
    buf.get(at..at + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(DecodeError::Truncated {
            needed: at + N,
            got: buf.len(),
        })
}

/// Why a frame failed to decode. Every variant is a *detected* problem:
/// decoding never panics and never reads out of bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the bytes the current field needs.
    Truncated {
        /// Bytes the decoder needed at this point.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first four bytes are not [`MAGIC`] — not a frame, or a
    /// desynchronised stream.
    BadMagic([u8; 4]),
    /// The header checksum did not match its contents.
    HeaderChecksum {
        /// CRC the header carried.
        stored: u32,
        /// CRC computed over the received header bytes.
        computed: u32,
    },
    /// The frame speaks a protocol version this decoder does not.
    UnsupportedVersion(u8),
    /// The kind byte is neither request nor reply.
    UnknownKind(u8),
    /// The header's body length exceeds [`MAX_BODY_LEN`].
    BodyTooLarge {
        /// Length the header claimed.
        len: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// A body tag byte (request/response/error discriminant) is unknown.
    UnknownTag {
        /// Which vocabulary the tag belongs to.
        what: &'static str,
        /// The unknown tag value.
        tag: u8,
    },
    /// A length or count field inside the body claims more bytes than
    /// the body holds.
    LengthOverflow {
        /// The field whose length is impossible.
        field: &'static str,
        /// The claimed element count or byte length.
        claimed: u64,
        /// Bytes actually remaining in the body.
        remaining: usize,
    },
    /// The body decoded cleanly but left unconsumed bytes — the header's
    /// length and the body's content disagree.
    TrailingBytes {
        /// Bytes left over after the body decoded.
        extra: usize,
    },
    /// A field value is out of range for this platform (e.g. a count
    /// that does not fit in `usize`).
    BadValue(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (speaking {WIRE_VERSION})")
            }
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            DecodeError::BodyTooLarge { len, max } => {
                write!(f, "body length {len} exceeds maximum {max}")
            }
            DecodeError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag:#04x}")
            }
            DecodeError::LengthOverflow {
                field,
                claimed,
                remaining,
            } => write!(
                f,
                "{field} claims {claimed} but only {remaining} bytes remain"
            ),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after body")
            }
            DecodeError::BadValue(what) => write!(f, "{what} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// One decoded frame: an envelope or a reply, plus how many buffer bytes
/// it consumed (header + body), so a streaming reader can advance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A request frame.
    Envelope(Envelope),
    /// A reply frame.
    Reply(Reply),
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; the table is built at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over `bytes` — the header and record checksum used
/// across the wire format and the append-only storage log.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Body tags.
// ---------------------------------------------------------------------

mod tag {
    // Request body.
    pub const PING: u8 = 0x01;
    pub const INIT_DATA: u8 = 0x02;
    pub const INIT_PARITY: u8 = 0x03;
    pub const READ_DATA: u8 = 0x04;
    pub const WRITE_DATA: u8 = 0x05;
    pub const VERSION_DATA: u8 = 0x06;
    pub const VERSION_VECTOR: u8 = 0x07;
    pub const READ_PARITY: u8 = 0x08;
    pub const WRITE_PARITY: u8 = 0x09;
    pub const ADD_PARITY: u8 = 0x0A;

    // Reply body leads with a result discriminant.
    pub const RESULT_OK: u8 = 0x00;
    pub const RESULT_ERR: u8 = 0x01;

    // Response body.
    pub const PONG: u8 = 0x01;
    pub const ACK: u8 = 0x02;
    pub const DATA: u8 = 0x03;
    pub const PARITY: u8 = 0x04;
    pub const VERSION: u8 = 0x05;
    pub const VERSIONS: u8 = 0x06;

    // NodeError body.
    pub const ERR_DOWN: u8 = 0x01;
    pub const ERR_NOT_FOUND: u8 = 0x02;
    pub const ERR_WRONG_KIND: u8 = 0x03;
    pub const ERR_VERSION_CONFLICT: u8 = 0x04;
    pub const ERR_VECTOR_CONFLICT: u8 = 0x05;
    pub const ERR_SIZE_MISMATCH: u8 = 0x06;
    pub const ERR_BAD_BLOCK_INDEX: u8 = 0x07;
    pub const ERR_TRANSPORT_CLOSED: u8 = 0x08;
    pub const ERR_TIMED_OUT: u8 = 0x09;
    pub const ERR_CORRUPT: u8 = 0x0A;
    pub const ERR_OVERLOADED: u8 = 0x0B;

    // Trailing extension fields (`tag(u8) · len(u32) · payload`) appended
    // after the fixed fields of the *extended* body variants only
    // (init-parity / write-parity / add-parity requests; data / parity
    // responses). Decoders skip unknown tags, so new fields can ride on
    // existing frames without a wire-version bump; absent extensions
    // decode to their documented defaults.
    pub const EXT_CHECKS: u8 = 0x01;
    pub const EXT_COEFF: u8 = 0x02;
    pub const EXT_NEW_CHECK: u8 = 0x03;
    pub const EXT_CHECK: u8 = 0x04;
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &Bytes) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_versions(out: &mut Vec<u8>, vs: &[u64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Appends one `tag · len · payload` extension holding a `u64`.
fn put_ext_u64(out: &mut Vec<u8>, tag: u8, v: u64) {
    out.push(tag);
    put_u32(out, 8);
    put_u64(out, v);
}

/// Appends the cross-checksum vector as an extension — skipped entirely
/// when the vector is empty (empty and absent are the same state:
/// "no checksums known").
fn put_ext_checks(out: &mut Vec<u8>, checks: &[u64]) {
    if checks.is_empty() {
        return;
    }
    out.push(tag::EXT_CHECKS);
    put_u32(out, 4 + 8 * checks.len() as u32);
    put_versions(out, checks);
}

fn encode_request_body(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Ping => out.push(tag::PING),
        Request::InitData { id, bytes } => {
            out.push(tag::INIT_DATA);
            put_u64(out, *id);
            put_bytes(out, bytes);
        }
        Request::InitParity {
            id,
            bytes,
            k,
            checks,
        } => {
            out.push(tag::INIT_PARITY);
            put_u64(out, *id);
            put_u64(out, *k as u64);
            put_bytes(out, bytes);
            put_ext_checks(out, checks);
        }
        Request::ReadData { id } => {
            out.push(tag::READ_DATA);
            put_u64(out, *id);
        }
        Request::WriteData { id, bytes, version } => {
            out.push(tag::WRITE_DATA);
            put_u64(out, *id);
            put_u64(out, *version);
            put_bytes(out, bytes);
        }
        Request::VersionData { id } => {
            out.push(tag::VERSION_DATA);
            put_u64(out, *id);
        }
        Request::VersionVector { id } => {
            out.push(tag::VERSION_VECTOR);
            put_u64(out, *id);
        }
        Request::ReadParity { id } => {
            out.push(tag::READ_PARITY);
            put_u64(out, *id);
        }
        Request::WriteParity {
            id,
            bytes,
            versions,
            checks,
        } => {
            out.push(tag::WRITE_PARITY);
            put_u64(out, *id);
            put_versions(out, versions);
            put_bytes(out, bytes);
            put_ext_checks(out, checks);
        }
        Request::AddParity {
            id,
            block_index,
            delta,
            expected_version,
            new_version,
            coeff,
            new_check,
        } => {
            out.push(tag::ADD_PARITY);
            put_u64(out, *id);
            put_u64(out, *block_index as u64);
            put_u64(out, *expected_version);
            put_u64(out, *new_version);
            put_bytes(out, delta);
            // coeff = 1 is the pre-extension meaning of the frame (delta
            // already scaled), so it is encoded only when it carries
            // information — old peers fold these frames correctly.
            if *coeff != 1 {
                out.push(tag::EXT_COEFF);
                put_u32(out, 1);
                out.push(*coeff);
            }
            if let Some(nc) = new_check {
                put_ext_u64(out, tag::EXT_NEW_CHECK, *nc);
            }
        }
    }
}

fn encode_response_body(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Pong => out.push(tag::PONG),
        Response::Ack => out.push(tag::ACK),
        Response::Data {
            bytes,
            version,
            check,
        } => {
            out.push(tag::DATA);
            put_u64(out, *version);
            put_bytes(out, bytes);
            put_ext_u64(out, tag::EXT_CHECK, *check);
        }
        Response::Parity {
            bytes,
            versions,
            checks,
        } => {
            out.push(tag::PARITY);
            put_versions(out, versions);
            put_bytes(out, bytes);
            put_ext_checks(out, checks);
        }
        Response::Version(v) => {
            out.push(tag::VERSION);
            put_u64(out, *v);
        }
        Response::Versions(vs) => {
            out.push(tag::VERSIONS);
            put_versions(out, vs);
        }
    }
}

fn encode_error_body(err: &NodeError, out: &mut Vec<u8>) {
    match err {
        NodeError::Down => out.push(tag::ERR_DOWN),
        NodeError::NotFound => out.push(tag::ERR_NOT_FOUND),
        NodeError::WrongKind => out.push(tag::ERR_WRONG_KIND),
        NodeError::VersionConflict { expected, actual } => {
            out.push(tag::ERR_VERSION_CONFLICT);
            put_u64(out, *expected);
            put_u64(out, *actual);
        }
        NodeError::VectorConflict { index, got, stored } => {
            out.push(tag::ERR_VECTOR_CONFLICT);
            put_u64(out, *index as u64);
            put_u64(out, *got);
            put_u64(out, *stored);
        }
        NodeError::SizeMismatch { stored, got } => {
            out.push(tag::ERR_SIZE_MISMATCH);
            put_u64(out, *stored as u64);
            put_u64(out, *got as u64);
        }
        NodeError::BadBlockIndex { index, k } => {
            out.push(tag::ERR_BAD_BLOCK_INDEX);
            put_u64(out, *index as u64);
            put_u64(out, *k as u64);
        }
        NodeError::TransportClosed => out.push(tag::ERR_TRANSPORT_CLOSED),
        NodeError::TimedOut => out.push(tag::ERR_TIMED_OUT),
        NodeError::Corrupt => out.push(tag::ERR_CORRUPT),
        NodeError::Overloaded => out.push(tag::ERR_OVERLOADED),
    }
}

fn finish_frame(
    kind: FrameKind,
    flags: u16,
    op_id: OpId,
    round_epoch: u64,
    body: Vec<u8>,
) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY_LEN as usize, "body exceeds wire max");
    let header = Header {
        kind,
        flags,
        op_id,
        round_epoch,
        body_len: body.len() as u32,
    };
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    frame.extend_from_slice(&header.encode());
    frame.extend_from_slice(&body);
    frame
}

/// Encodes an [`Envelope`] into one complete frame (header + body).
pub fn encode_envelope(env: &Envelope) -> Vec<u8> {
    let mut body = Vec::new();
    encode_request_body(&env.payload, &mut body);
    let flags = match env.lane {
        Lane::Foreground => 0,
        Lane::Background => FLAG_BACKGROUND,
    };
    finish_frame(FrameKind::Request, flags, env.op_id, env.round_epoch, body)
}

/// Encodes a [`Reply`] into one complete frame (header + body).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut body = Vec::new();
    match &reply.result {
        Ok(resp) => {
            body.push(tag::RESULT_OK);
            encode_response_body(resp, &mut body);
        }
        Err(err) => {
            body.push(tag::RESULT_ERR);
            encode_error_body(err, &mut body);
        }
    }
    finish_frame(FrameKind::Reply, 0, reply.op_id, reply.round_epoch, body)
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// Bounds-checked cursor over a frame body held as [`Bytes`], so payload
/// reads can hand out zero-copy sub-views of the receive buffer.
struct Cursor<'a> {
    buf: &'a Bytes,
    pos: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a Bytes, start: usize, end: usize) -> Self {
        Cursor {
            buf,
            pos: start,
            end,
        }
    }

    fn remaining(&self) -> usize {
        self.end - self.pos
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        Ok(())
    }

    /// Takes the next `N` bytes as a fixed array, advancing the cursor.
    /// Total: out-of-range is `Truncated`, never a panic.
    fn chunk<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.need(N)?;
        let arr = self
            .buf
            .get(self.pos..self.pos + N)
            .and_then(|s| <[u8; N]>::try_from(s).ok())
            .ok_or(DecodeError::Truncated {
                needed: N,
                got: self.remaining(),
            })?;
        self.pos += N;
        Ok(arr)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let [v] = self.chunk::<1>()?;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.chunk()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.chunk()?))
    }

    fn usize_field(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::BadValue(what))
    }

    /// Length-prefixed payload as a zero-copy sub-view of the buffer.
    fn bytes_field(&mut self, field: &'static str) -> Result<Bytes, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::LengthOverflow {
                field,
                claimed: len as u64,
                remaining: self.remaining(),
            });
        }
        let b = self.buf.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(b)
    }

    /// Length-prefixed `Vec<u64>`; the count is validated against the
    /// bytes present before any allocation.
    fn versions_field(&mut self, field: &'static str) -> Result<Vec<u64>, DecodeError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(8) > self.remaining() {
            return Err(DecodeError::LengthOverflow {
                field,
                claimed: count as u64,
                remaining: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }

    /// Consumes every remaining body byte as `tag · len · payload`
    /// extension fields. Known tags are parsed (with their payload length
    /// validated); unknown tags are skipped, so frames from newer peers
    /// carrying extensions this decoder does not know still decode.
    /// Absent extensions leave the documented defaults: empty checks
    /// vector, `coeff = 1`, `new_check = None`, `check = 0`.
    fn extensions(&mut self) -> Result<Extensions, DecodeError> {
        let mut ext = Extensions::default();
        while self.remaining() > 0 {
            let tag = self.u8()?;
            let len = self.u32()? as usize;
            if len > self.remaining() {
                return Err(DecodeError::LengthOverflow {
                    field: "extension payload",
                    claimed: len as u64,
                    remaining: self.remaining(),
                });
            }
            let end = self.pos + len;
            match tag {
                tag::EXT_CHECKS => {
                    let count = self.u32()? as usize;
                    if len != 4 + count.saturating_mul(8) {
                        return Err(DecodeError::BadValue("checks extension length"));
                    }
                    let mut checks = Vec::with_capacity(count);
                    for _ in 0..count {
                        checks.push(self.u64()?);
                    }
                    ext.checks = checks;
                }
                tag::EXT_COEFF => {
                    if len != 1 {
                        return Err(DecodeError::BadValue("coeff extension length"));
                    }
                    ext.coeff = self.u8()?;
                }
                tag::EXT_NEW_CHECK => {
                    if len != 8 {
                        return Err(DecodeError::BadValue("new-check extension length"));
                    }
                    ext.new_check = Some(self.u64()?);
                }
                tag::EXT_CHECK => {
                    if len != 8 {
                        return Err(DecodeError::BadValue("check extension length"));
                    }
                    ext.check = self.u64()?;
                }
                // Unknown extension: forward compatibility — skip it.
                _ => self.pos = end,
            }
            debug_assert_eq!(self.pos, end, "extension parser must consume its payload");
        }
        Ok(ext)
    }
}

/// Extension fields decoded off the tail of an extended body variant,
/// pre-loaded with the defaults an extension-free (legacy) frame means.
struct Extensions {
    checks: Vec<u64>,
    coeff: u8,
    new_check: Option<u64>,
    check: u64,
}

impl Default for Extensions {
    fn default() -> Self {
        Extensions {
            checks: Vec::new(),
            coeff: 1,
            new_check: None,
            check: 0,
        }
    }
}

fn decode_request_body(cur: &mut Cursor<'_>) -> Result<Request, DecodeError> {
    let t = cur.u8()?;
    Ok(match t {
        tag::PING => Request::Ping,
        tag::INIT_DATA => Request::InitData {
            id: cur.u64()?,
            bytes: cur.bytes_field("init-data payload")?,
        },
        tag::INIT_PARITY => {
            let id = cur.u64()?;
            let k = cur.usize_field("init-parity k")?;
            let bytes = cur.bytes_field("init-parity payload")?;
            let ext = cur.extensions()?;
            Request::InitParity {
                id,
                k,
                bytes,
                checks: ext.checks,
            }
        }
        tag::READ_DATA => Request::ReadData { id: cur.u64()? },
        tag::WRITE_DATA => Request::WriteData {
            id: cur.u64()?,
            version: cur.u64()?,
            bytes: cur.bytes_field("write-data payload")?,
        },
        tag::VERSION_DATA => Request::VersionData { id: cur.u64()? },
        tag::VERSION_VECTOR => Request::VersionVector { id: cur.u64()? },
        tag::READ_PARITY => Request::ReadParity { id: cur.u64()? },
        tag::WRITE_PARITY => {
            let id = cur.u64()?;
            let versions = cur.versions_field("write-parity versions")?;
            let bytes = cur.bytes_field("write-parity payload")?;
            let ext = cur.extensions()?;
            Request::WriteParity {
                id,
                versions,
                bytes,
                checks: ext.checks,
            }
        }
        tag::ADD_PARITY => {
            let id = cur.u64()?;
            let block_index = cur.usize_field("add-parity block index")?;
            let expected_version = cur.u64()?;
            let new_version = cur.u64()?;
            let delta = cur.bytes_field("add-parity delta")?;
            let ext = cur.extensions()?;
            Request::AddParity {
                id,
                block_index,
                expected_version,
                new_version,
                delta,
                coeff: ext.coeff,
                new_check: ext.new_check,
            }
        }
        other => {
            return Err(DecodeError::UnknownTag {
                what: "request",
                tag: other,
            })
        }
    })
}

fn decode_response_body(cur: &mut Cursor<'_>) -> Result<Response, DecodeError> {
    let t = cur.u8()?;
    Ok(match t {
        tag::PONG => Response::Pong,
        tag::ACK => Response::Ack,
        tag::DATA => {
            let version = cur.u64()?;
            let bytes = cur.bytes_field("data payload")?;
            let ext = cur.extensions()?;
            Response::Data {
                version,
                bytes,
                check: ext.check,
            }
        }
        tag::PARITY => {
            let versions = cur.versions_field("parity versions")?;
            let bytes = cur.bytes_field("parity payload")?;
            let ext = cur.extensions()?;
            Response::Parity {
                versions,
                bytes,
                checks: ext.checks,
            }
        }
        tag::VERSION => Response::Version(cur.u64()?),
        tag::VERSIONS => Response::Versions(cur.versions_field("versions")?),
        other => {
            return Err(DecodeError::UnknownTag {
                what: "response",
                tag: other,
            })
        }
    })
}

fn decode_error_body(cur: &mut Cursor<'_>) -> Result<NodeError, DecodeError> {
    let t = cur.u8()?;
    Ok(match t {
        tag::ERR_DOWN => NodeError::Down,
        tag::ERR_NOT_FOUND => NodeError::NotFound,
        tag::ERR_WRONG_KIND => NodeError::WrongKind,
        tag::ERR_VERSION_CONFLICT => NodeError::VersionConflict {
            expected: cur.u64()?,
            actual: cur.u64()?,
        },
        tag::ERR_VECTOR_CONFLICT => NodeError::VectorConflict {
            index: cur.usize_field("vector-conflict index")?,
            got: cur.u64()?,
            stored: cur.u64()?,
        },
        tag::ERR_SIZE_MISMATCH => NodeError::SizeMismatch {
            stored: cur.usize_field("size-mismatch stored")?,
            got: cur.usize_field("size-mismatch got")?,
        },
        tag::ERR_BAD_BLOCK_INDEX => NodeError::BadBlockIndex {
            index: cur.usize_field("bad-block-index index")?,
            k: cur.usize_field("bad-block-index k")?,
        },
        tag::ERR_TRANSPORT_CLOSED => NodeError::TransportClosed,
        tag::ERR_TIMED_OUT => NodeError::TimedOut,
        tag::ERR_CORRUPT => NodeError::Corrupt,
        tag::ERR_OVERLOADED => NodeError::Overloaded,
        other => {
            return Err(DecodeError::UnknownTag {
                what: "error",
                tag: other,
            })
        }
    })
}

/// Decodes the body of a frame whose [`Header`] has already been read,
/// taking the body as a [`Bytes`] so payloads decode zero-copy.
///
/// `body` must hold exactly `header.body_len` bytes (a streaming reader
/// reads exactly that many after the header).
pub fn decode_body(header: &Header, body: &Bytes) -> Result<Frame, DecodeError> {
    if body.len() != header.body_len as usize {
        return Err(DecodeError::Truncated {
            needed: header.body_len as usize,
            got: body.len(),
        });
    }
    let mut cur = Cursor::new(body, 0, body.len());
    let frame = match header.kind {
        FrameKind::Request => Frame::Envelope(Envelope {
            op_id: header.op_id,
            round_epoch: header.round_epoch,
            lane: if header.flags & FLAG_BACKGROUND != 0 {
                Lane::Background
            } else {
                Lane::Foreground
            },
            payload: decode_request_body(&mut cur)?,
        }),
        FrameKind::Reply => {
            let result = match cur.u8()? {
                tag::RESULT_OK => Ok(decode_response_body(&mut cur)?),
                tag::RESULT_ERR => Err(decode_error_body(&mut cur)?),
                other => {
                    return Err(DecodeError::UnknownTag {
                        what: "result",
                        tag: other,
                    })
                }
            };
            Frame::Reply(Reply {
                op_id: header.op_id,
                round_epoch: header.round_epoch,
                result,
            })
        }
    };
    cur.finish()?;
    Ok(frame)
}

/// Decodes one complete frame from the front of `buf`, returning the
/// frame and the total bytes consumed (header + body), so a buffer
/// holding several back-to-back frames can be drained in a loop.
///
/// Payload fields in the returned message are zero-copy
/// [`Bytes::slice`]s of `buf`.
pub fn decode_frame(buf: &Bytes) -> Result<(Frame, usize), DecodeError> {
    let header = Header::decode(buf)?;
    let total = HEADER_LEN + header.body_len as usize;
    if buf.len() < total {
        return Err(DecodeError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let body = buf.slice(HEADER_LEN..total);
    let frame = decode_body(&header, &body)?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_env(env: &Envelope) -> Envelope {
        let wire = Bytes::from(encode_envelope(env));
        match decode_frame(&wire).expect("decodes") {
            (Frame::Envelope(e), n) => {
                assert_eq!(n, wire.len());
                e
            }
            (other, _) => panic!("expected envelope, got {other:?}"),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrips_and_payload_is_zero_copy() {
        let env = Envelope::in_epoch(
            Request::WriteData {
                id: 42,
                bytes: Bytes::from(vec![9u8; 64]),
                version: 7,
            },
            3,
        );
        let wire = Bytes::from(encode_envelope(&env));
        let (frame, n) = decode_frame(&wire).expect("decodes");
        assert_eq!(n, wire.len());
        let decoded = match frame {
            Frame::Envelope(e) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(decoded, env);
        // The decoded payload is a sub-view of the receive buffer, not a copy.
        match &decoded.payload {
            Request::WriteData { bytes, .. } => {
                let off = wire.as_ptr() as usize;
                let p = bytes.as_ptr() as usize;
                assert!(
                    p >= off && p + bytes.len() <= off + wire.len(),
                    "payload must alias the receive buffer"
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reply_roundtrips_both_arms() {
        let env = Envelope::new(Request::Ping);
        for result in [
            Ok(Response::Parity {
                bytes: Bytes::from(vec![1, 2, 3]),
                versions: vec![4, 5, 6],
                checks: vec![7, 8],
            }),
            Err(NodeError::VectorConflict {
                index: 1,
                got: 2,
                stored: 9,
            }),
            Err(NodeError::Corrupt),
        ] {
            let reply = Reply::to(&env, result.clone());
            let wire = Bytes::from(encode_reply(&reply));
            match decode_frame(&wire).expect("decodes") {
                (Frame::Reply(r), n) => {
                    assert_eq!(n, wire.len());
                    assert_eq!(r, reply);
                }
                (other, _) => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn all_request_variants_roundtrip() {
        let payload = Bytes::from(vec![0xAB; 16]);
        let reqs = vec![
            Request::Ping,
            Request::InitData {
                id: 1,
                bytes: payload.clone(),
            },
            Request::InitParity {
                id: 2,
                bytes: payload.clone(),
                k: 3,
                checks: vec![0xAA, 0xBB, 0xCC],
            },
            Request::InitParity {
                id: 2,
                bytes: payload.clone(),
                k: 3,
                checks: vec![],
            },
            Request::ReadData { id: 3 },
            Request::WriteData {
                id: 4,
                bytes: payload.clone(),
                version: 5,
            },
            Request::VersionData { id: 5 },
            Request::VersionVector { id: 6 },
            Request::ReadParity { id: 7 },
            Request::WriteParity {
                id: 8,
                bytes: payload.clone(),
                versions: vec![1, 2, 3],
                checks: vec![9, 10, 11],
            },
            Request::AddParity {
                id: 9,
                block_index: 2,
                delta: payload.clone(),
                expected_version: 3,
                new_version: 4,
                coeff: 1,
                new_check: None,
            },
            Request::AddParity {
                id: 9,
                block_index: 2,
                delta: payload,
                expected_version: 3,
                new_version: 4,
                coeff: 0x53,
                new_check: Some(0xDEAD_BEEF_0BAD_F00D),
            },
        ];
        for req in reqs {
            let env = Envelope::new(req);
            assert_eq!(roundtrip_env(&env), env);
        }
    }

    #[test]
    fn truncation_at_every_offset_is_typed() {
        let env = Envelope::new(Request::WriteParity {
            id: 8,
            bytes: Bytes::from(vec![7u8; 10]),
            versions: vec![1, 2, 3],
            checks: vec![4, 5, 6],
        });
        let wire = encode_envelope(&env);
        for cut in 0..wire.len() {
            let buf = Bytes::copy_from_slice(&wire[..cut]);
            let err = decode_frame(&buf).expect_err("truncated frame must fail");
            // Every truncation is Truncated (checksum covers a full header,
            // so a short header is reported as truncation, not corruption).
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_header_is_rejected_by_checksum() {
        let env = Envelope::new(Request::ReadData { id: 1 });
        let mut wire = encode_envelope(&env);
        wire[9] ^= 0x40; // flip a bit inside the op id
        let err = decode_frame(&Bytes::from(wire)).expect_err("corrupt header");
        assert!(matches!(err, DecodeError::HeaderChecksum { .. }), "{err:?}");
    }

    #[test]
    fn bad_magic_and_version_and_kind() {
        let env = Envelope::new(Request::Ping);
        let good = encode_envelope(&env);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&Bytes::from(bad)),
            Err(DecodeError::BadMagic(_))
        ));

        // Version / kind are checksummed, so flip and re-checksum.
        let mut bad = good.clone();
        bad[4] = 99;
        let crc = crc32(&bad[0..28]);
        bad[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&Bytes::from(bad)),
            Err(DecodeError::UnsupportedVersion(99))
        ));

        let mut bad = good;
        bad[5] = 0x7F;
        let crc = crc32(&bad[0..28]);
        bad[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&Bytes::from(bad)),
            Err(DecodeError::UnknownKind(0x7F))
        ));
    }

    #[test]
    fn oversized_length_fields_do_not_allocate_or_overread() {
        // Body claims a payload far larger than the body itself.
        let env = Envelope::new(Request::InitData {
            id: 1,
            bytes: Bytes::from(vec![1, 2, 3]),
        });
        let mut wire = encode_envelope(&env);
        // The payload length field sits right after tag(1)+id(8) in the body.
        let len_off = HEADER_LEN + 1 + 8;
        wire[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_frame(&Bytes::from(wire)).expect_err("oversized length");
        assert!(matches!(err, DecodeError::LengthOverflow { .. }), "{err:?}");

        // Header claims a body over the global cap.
        let reply = Reply::to(&Envelope::new(Request::Ping), Ok(Response::Pong));
        let mut wire = encode_reply(&reply);
        wire[24..28].copy_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
        let crc = crc32(&wire[0..28]);
        wire[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&Bytes::from(wire)),
            Err(DecodeError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let env = Envelope::new(Request::Ping);
        let mut wire = encode_envelope(&env);
        // Grow the body by one byte and fix up the header.
        wire.push(0);
        let body_len = (wire.len() - HEADER_LEN) as u32;
        wire[24..28].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&wire[0..28]);
        wire[28..32].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&Bytes::from(wire)),
            Err(DecodeError::TrailingBytes { extra: 1 })
        ));
    }

    /// Appends raw bytes to a frame's body and re-seals the header
    /// (body length + CRC), simulating a peer that emitted extra
    /// trailing content.
    fn extend_body(mut wire: Vec<u8>, extra: &[u8]) -> Bytes {
        wire.extend_from_slice(extra);
        let body_len = (wire.len() - HEADER_LEN) as u32;
        wire[24..28].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&wire[0..28]);
        wire[28..32].copy_from_slice(&crc.to_le_bytes());
        Bytes::from(wire)
    }

    #[test]
    fn default_valued_extensions_are_not_encoded() {
        // coeff = 1, no new-check, no checks vector: the frame must be
        // byte-identical to the pre-extension layout so old peers still
        // fold it correctly.
        let delta = Bytes::from(vec![5u8; 24]);
        let env = Envelope::new(Request::AddParity {
            id: 9,
            block_index: 2,
            delta: delta.clone(),
            expected_version: 3,
            new_version: 4,
            coeff: 1,
            new_check: None,
        });
        let wire = encode_envelope(&env);
        let fixed = 1 + 8 * 4 + 4 + delta.len(); // tag + 4 u64s + len + payload
        assert_eq!(wire.len(), HEADER_LEN + fixed, "legacy layout changed");
        assert_eq!(roundtrip_env(&env), env);
    }

    #[test]
    fn legacy_extension_free_data_reply_decodes_with_default_check() {
        // Hand-build a data reply body with no trailing extensions, as a
        // pre-integrity peer would emit it.
        let mut body = vec![tag::RESULT_OK, tag::DATA];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&3u32.to_le_bytes());
        body.extend_from_slice(&[1, 2, 3]);
        let wire = Bytes::from(finish_frame(FrameKind::Reply, 0, OpId(11), 0, body));
        let (frame, _) = decode_frame(&wire).expect("legacy frame decodes");
        match frame {
            Frame::Reply(r) => assert_eq!(
                r.result,
                Ok(Response::Data {
                    version: 7,
                    bytes: Bytes::from(vec![1u8, 2, 3]),
                    check: 0,
                })
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_trailing_extensions_are_skipped_on_extended_variants() {
        let env = Envelope::new(Request::InitParity {
            id: 2,
            bytes: Bytes::from(vec![9u8; 8]),
            k: 3,
            checks: vec![10, 20, 30],
        });
        // tag 0x7F (unknown) · len 3 · payload — a field from the future.
        let wire = extend_body(encode_envelope(&env), &[0x7F, 3, 0, 0, 0, 0xA, 0xB, 0xC]);
        match decode_frame(&wire).expect("unknown extension must be skipped") {
            (Frame::Envelope(e), _) => assert_eq!(e, env),
            (other, _) => panic!("{other:?}"),
        }

        // Same on the reply side.
        let reply = Reply::to(
            &env,
            Ok(Response::Parity {
                bytes: Bytes::from(vec![1, 2]),
                versions: vec![3, 4],
                checks: vec![5, 6],
            }),
        );
        let wire = extend_body(encode_reply(&reply), &[0xEE, 1, 0, 0, 0, 0xFF]);
        match decode_frame(&wire).expect("unknown reply extension must be skipped") {
            (Frame::Reply(r), _) => assert_eq!(r, reply),
            (other, _) => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_extensions_are_typed_errors() {
        let env = Envelope::new(Request::ReadParity { id: 1 });
        let parity_reply = Reply::to(
            &env,
            Ok(Response::Parity {
                bytes: Bytes::from(vec![1, 2]),
                versions: vec![3],
                checks: vec![],
            }),
        );

        // Extension length pointing past the body.
        let wire = extend_body(encode_reply(&parity_reply), &[0x7F, 200, 0, 0, 0]);
        assert!(matches!(
            decode_frame(&wire),
            Err(DecodeError::LengthOverflow { .. })
        ));

        // Known extension with the wrong payload size.
        let wire = extend_body(
            encode_reply(&parity_reply),
            &[tag::EXT_CHECK, 4, 0, 0, 0, 1, 2, 3, 4],
        );
        assert!(matches!(decode_frame(&wire), Err(DecodeError::BadValue(_))));
    }

    #[test]
    fn back_to_back_frames_drain_in_a_loop() {
        let a = Envelope::new(Request::ReadData { id: 1 });
        let b = Reply::to(&a, Ok(Response::Version(9)));
        let mut wire = encode_envelope(&a);
        wire.extend_from_slice(&encode_reply(&b));
        let buf = Bytes::from(wire);

        let (first, n) = decode_frame(&buf).expect("first frame");
        assert_eq!(first, Frame::Envelope(a));
        let rest = buf.slice(n..);
        let (second, m) = decode_frame(&rest).expect("second frame");
        assert_eq!(second, Frame::Reply(b));
        assert_eq!(n + m, buf.len());
    }
}
