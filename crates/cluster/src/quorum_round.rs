//! The quorum round engine: scatter a level's requests, gather until the
//! quorum condition is met.
//!
//! The paper's Algorithms 1 and 2 are loops over trapezoid levels; each
//! level polls its members and proceeds once `w_l` (write) or `r_l`
//! (read) of them validate. The seed implementation walked members one
//! blocking [`Transport::call`] at a time, so a level's wall-clock cost
//! was the *sum* of member latencies. [`QuorumRound`] restores the shape
//! quorum systems are built for: issue the whole level at once via
//! [`Transport::multicall`] and complete on the quorum condition —
//! roughly the latency of the slowest *needed* responder on a concurrent
//! transport, and bit-for-bit the old sequential behaviour on
//! [`LocalTransport`](crate::transport::LocalTransport).
//!
//! Every call is wrapped in an [`Envelope`] stamped with a fresh
//! [`OpId`] and this round's epoch, and replies are matched **by
//! identity**: a reply whose op id the round never issued — a duplicate
//! absorbed already, or a straggler redelivered from an *earlier* round
//! by an at-least-once fabric — is ignored instead of miscounted
//! against some batch position. That property is what lets
//! [`SimTransport`](crate::sim::SimTransport) redeliver messages across
//! rounds without corrupting quorum accounting.
//!
//! Two completion policies cover both algorithms:
//!
//! * [`QuorumRound::await_all`] — every reply is awaited; the quorum
//!   threshold only decides success afterwards. Writes need this: a
//!   validated write *set* is the durability statement, and on the
//!   sequential transport an early exit would leave members unwritten.
//! * [`QuorumRound::first_quorum`] — the round ends the moment the
//!   threshold-th success arrives. Version checks (Algorithm 2 line 30)
//!   and "first live replica" reads use this; outstanding members are
//!   reported as [`RoundOutcome::abandoned`] stragglers.

use crate::detmap::DetHashMap;
use crate::health::{HedgeCounters, NodeHealth};
use crate::node::NodeId;
use crate::rpc::{next_round_epoch, Envelope, Lane, NodeError, OpId, Request, Response};
use crate::transport::Transport;

/// When a round stops gathering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Stop as soon as `needed` successes arrived.
    FirstQuorum,
    /// Gather every reply; `needed` only grades the outcome.
    AwaitAll,
}

/// A successful reply within a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accepted {
    /// Position within the issued batch (stable across transports).
    pub index: usize,
    /// The responding node.
    pub node: NodeId,
    /// Its answer.
    pub response: Response,
}

/// A failed reply within a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Position within the issued batch.
    pub index: usize,
    /// The failing node.
    pub node: NodeId,
    /// Why it failed.
    pub error: NodeError,
}

/// Everything a round learned, for protocol logic and accounting.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The quorum threshold the round was run with.
    pub needed: usize,
    /// Successes, in arrival order.
    pub accepted: Vec<Accepted>,
    /// Failures, in arrival order.
    pub rejected: Vec<Rejected>,
    /// Members whose replies were never awaited (first-quorum early
    /// completion). On a concurrent transport their requests were still
    /// delivered and executed; on the sequential transport they were
    /// never issued.
    pub abandoned: Vec<NodeId>,
    /// Hedge activity the transport attributed to this round (zero on
    /// transports without a health registry, and whenever hedging is
    /// off). For a fused plan ([`MultiRound::run`]) the plan-level
    /// totals land on the *first* op's outcome — the transport cannot
    /// split concurrent hedge activity per fused op.
    pub hedges: HedgeCounters,
}

impl RoundOutcome {
    /// `true` iff at least `needed` members validated.
    pub fn quorum_met(&self) -> bool {
        self.accepted.len() >= self.needed
    }

    /// Number of validations gathered.
    pub fn validations(&self) -> usize {
        self.accepted.len()
    }

    /// Accepted replies re-sorted into batch-issue order — use when a
    /// result must be independent of reply arrival order (validated-set
    /// reporting, decode input selection).
    pub fn accepted_in_issue_order(&self) -> Vec<&Accepted> {
        let mut sorted: Vec<&Accepted> = self.accepted.iter().collect();
        sorted.sort_by_key(|a| a.index);
        sorted
    }

    /// `true` iff any rejection carries the given error.
    pub fn saw_error(&self, is: impl Fn(&NodeError) -> bool) -> bool {
        self.rejected.iter().any(|r| is(&r.error))
    }

    /// The first rejection in batch-issue order, if any — the error a
    /// sequential walk would have tripped on first.
    pub fn first_rejection(&self) -> Option<&Rejected> {
        self.rejected.iter().min_by_key(|r| r.index)
    }
}

/// One scatter-gather round against a set of nodes.
#[derive(Debug, Clone, Copy)]
pub struct QuorumRound {
    needed: usize,
    completion: Completion,
    lane: Lane,
}

impl QuorumRound {
    /// A round that completes on the `needed`-th success.
    pub fn first_quorum(needed: usize) -> Self {
        QuorumRound {
            needed,
            completion: Completion::FirstQuorum,
            lane: Lane::Foreground,
        }
    }

    /// A round that gathers every reply and grades against `needed`.
    pub fn await_all(needed: usize) -> Self {
        QuorumRound {
            needed,
            completion: Completion::AwaitAll,
            lane: Lane::Foreground,
        }
    }

    /// Marks the round's traffic as background/maintenance: its
    /// envelopes carry the background lane flag, so transports skip
    /// hedging them and any budgeted retries must leave the foreground
    /// reserve (scrub/rebuild cannot starve client ops).
    pub fn background(mut self) -> Self {
        self.lane = Lane::Background;
        self
    }

    /// The quorum threshold.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// The completion policy.
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// The priority lane the round's envelopes travel in.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Runs the round: wraps `calls` into enveloped commands under one
    /// fresh round epoch, scatters them through the transport's fan-out
    /// primitive and gathers according to the completion policy,
    /// matching every reply to its slot by op id.
    pub fn run<T: Transport + ?Sized>(
        &self,
        transport: &T,
        calls: Vec<(NodeId, Request)>,
    ) -> RoundOutcome {
        let epoch = next_round_epoch();
        let mut issued: Vec<NodeId> = Vec::with_capacity(calls.len());
        let mut slot_of: DetHashMap<OpId, usize> =
            DetHashMap::with_capacity_and_hasher(calls.len(), Default::default());
        let envelopes: Vec<(NodeId, Envelope)> = calls
            .into_iter()
            .enumerate()
            .map(|(index, (node, req))| {
                let mut env = Envelope::in_epoch(req, epoch);
                if self.lane == Lane::Background {
                    env = env.background();
                }
                slot_of.insert(env.op_id, index);
                issued.push(node);
                (node, env)
            })
            .collect();
        let mut outcome = RoundOutcome {
            needed: self.needed,
            accepted: Vec::new(),
            rejected: Vec::new(),
            abandoned: Vec::new(),
            hedges: HedgeCounters::default(),
        };
        let hedges_before = transport.health().map(|h| h.hedge_counters());
        let mut seen = vec![false; issued.len()];
        // A zero threshold under FirstQuorum is already satisfied; skip
        // dispatch entirely rather than special-casing inside the sink.
        if !(self.completion == Completion::FirstQuorum && self.needed == 0) {
            transport.multicall(envelopes, &mut |reply| {
                let keep_going = |outcome: &RoundOutcome| match self.completion {
                    Completion::AwaitAll => true,
                    Completion::FirstQuorum => outcome.accepted.len() < self.needed,
                };
                // Identity matching: an at-least-once fabric may deliver
                // the same reply twice, or a stale reply from an earlier
                // round. Only the first completion of an op id this
                // round issued counts — anything else would let a
                // duplicated ack fake a quorum.
                let Some(&index) = slot_of.get(&reply.op_id) else {
                    return keep_going(&outcome);
                };
                if seen[index] {
                    return keep_going(&outcome);
                }
                seen[index] = true;
                match reply.result {
                    Ok(response) => outcome.accepted.push(Accepted {
                        index,
                        node: reply.node,
                        response,
                    }),
                    Err(error) => outcome.rejected.push(Rejected {
                        index,
                        node: reply.node,
                        error,
                    }),
                }
                keep_going(&outcome)
            });
        }
        for (i, node) in issued.into_iter().enumerate() {
            if !seen[i] {
                outcome.abandoned.push(node);
            }
        }
        if let Some(health) = transport.health() {
            if let Some(before) = hedges_before {
                outcome.hedges = health.hedge_counters().since(&before);
            }
            feed_health(health, &outcome);
        }
        outcome
    }
}

/// Feed a completed round's per-node outcomes into the health registry:
/// every accept is a success, every reject is classified (availability
/// failures drive the circuit breaker; app-level refusals count as a
/// live node). Abandoned members are *not* failures — their answers
/// were simply not needed.
fn feed_health(health: &NodeHealth, outcome: &RoundOutcome) {
    for a in &outcome.accepted {
        health.record_outcome(a.node.0, crate::health::Outcome::Ok);
    }
    for r in &outcome.rejected {
        health.record_error(r.node.0, &r.error);
    }
}

/// One logical operation inside a fused multi-op scatter
/// ([`MultiRound::run`]): its own quorum condition over its own calls.
#[derive(Debug)]
pub struct PlanOp {
    /// Threshold and completion policy for this op.
    pub round: QuorumRound,
    /// The op's calls; reply indices in the op's [`RoundOutcome`] refer
    /// to positions within this vector.
    pub calls: Vec<(NodeId, Request)>,
}

/// A multi-stripe scatter plan: several logical quorum rounds fused into
/// **one** [`Transport::multicall`] batch.
///
/// Batched protocol operations build on this: where a loop of single ops
/// costs one network round per op per level, a fused plan issues every
/// op's level-`l` requests in one fan-out and completes each op on its
/// own quorum condition. On a concurrent transport the whole plan costs
/// roughly one round trip; on the sequential transport it degenerates to
/// the same ordered walk a loop would make (determinism preserved).
///
/// All the plan's envelopes share one round epoch; replies are matched
/// to their (op, slot) origin by op id, so duplicates and cross-round
/// strangers are ignored exactly as in [`QuorumRound::run`].
///
/// Semantic differences from running the ops separately, both inherent
/// to fusion and documented here because accounting depends on them:
///
/// * A [`Completion::FirstQuorum`] op that has already met its threshold
///   keeps *recording* replies that arrive while sibling ops are still
///   gathering (a lone round would have abandoned them). Extra accepts
///   beyond `needed` are harmless to quorum logic.
/// * On the lazy sequential transport, calls are issued in op order;
///   once every op has completed, the remaining calls are never issued
///   and show up as [`RoundOutcome::abandoned`].
#[derive(Debug, Clone, Copy)]
pub struct MultiRound;

impl MultiRound {
    /// Runs the fused plan; returns one [`RoundOutcome`] per op, in op
    /// order.
    pub fn run<T: Transport + ?Sized>(transport: &T, ops: Vec<PlanOp>) -> Vec<RoundOutcome> {
        let mut outcomes: Vec<RoundOutcome> = ops
            .iter()
            .map(|op| RoundOutcome {
                needed: op.round.needed(),
                accepted: Vec::new(),
                rejected: Vec::new(),
                abandoned: Vec::new(),
                hedges: HedgeCounters::default(),
            })
            .collect();
        let completions: Vec<Completion> = ops.iter().map(|op| op.round.completion()).collect();
        let mut remaining: Vec<usize> = ops.iter().map(|op| op.calls.len()).collect();

        // Flatten op calls into one enveloped batch under one epoch,
        // remembering each op id's (op, local-index, node) origin.
        let epoch = next_round_epoch();
        let mut flat: Vec<(NodeId, Envelope)> = Vec::new();
        let mut origin: Vec<(usize, usize)> = Vec::new();
        let mut slot_of: DetHashMap<OpId, usize> = DetHashMap::default();
        for (op_idx, op) in ops.into_iter().enumerate() {
            for (local, (node, req)) in op.calls.into_iter().enumerate() {
                let mut env = Envelope::in_epoch(req, epoch);
                if op.round.lane() == Lane::Background {
                    env = env.background();
                }
                slot_of.insert(env.op_id, flat.len());
                origin.push((op_idx, local));
                flat.push((node, env));
            }
        }
        let hedges_before = transport.health().map(|h| h.hedge_counters());

        // An op with nothing left to prove is complete up front: a
        // zero-threshold first-quorum op, or any op with no calls.
        let mut complete: Vec<bool> = (0..outcomes.len())
            .map(|i| {
                remaining[i] == 0
                    || (completions[i] == Completion::FirstQuorum && outcomes[i].needed == 0)
            })
            .collect();
        let mut incomplete = complete.iter().filter(|&&c| !c).count();

        let issued: Vec<NodeId> = flat.iter().map(|&(node, _)| node).collect();
        let mut seen = vec![false; flat.len()];
        if incomplete > 0 {
            transport.multicall(flat, &mut |reply| {
                // Identity matching — see `QuorumRound::run`. Vital
                // here: a duplicate or stale stranger would also
                // underflow `remaining`.
                let Some(&flat_idx) = slot_of.get(&reply.op_id) else {
                    return incomplete > 0;
                };
                if seen[flat_idx] {
                    return incomplete > 0;
                }
                let (op_idx, local) = origin[flat_idx];
                seen[flat_idx] = true;
                remaining[op_idx] -= 1;
                let outcome = &mut outcomes[op_idx];
                match reply.result {
                    Ok(response) => outcome.accepted.push(Accepted {
                        index: local,
                        node: reply.node,
                        response,
                    }),
                    Err(error) => outcome.rejected.push(Rejected {
                        index: local,
                        node: reply.node,
                        error,
                    }),
                }
                if !complete[op_idx] {
                    let done = match completions[op_idx] {
                        // An op that exhausted its calls is complete even
                        // short of quorum — it can make no more progress
                        // and must not keep siblings from early exit.
                        Completion::FirstQuorum => {
                            outcome.accepted.len() >= outcome.needed || remaining[op_idx] == 0
                        }
                        Completion::AwaitAll => remaining[op_idx] == 0,
                    };
                    if done {
                        complete[op_idx] = true;
                        incomplete -= 1;
                    }
                }
                incomplete > 0
            });
        }
        for (flat_idx, &node) in issued.iter().enumerate() {
            if !seen[flat_idx] {
                let (op_idx, _) = origin[flat_idx];
                outcomes[op_idx].abandoned.push(node);
            }
        }
        if let Some(health) = transport.health() {
            if let (Some(before), Some(first)) = (hedges_before, outcomes.first_mut()) {
                // Plan-level attribution: see `RoundOutcome::hedges`.
                first.hedges = health.hedge_counters().since(&before);
            }
            for outcome in &outcomes {
                feed_health(health, outcome);
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::transport::{ChannelTransport, LocalTransport, RoundReply};

    fn pings(n: usize) -> Vec<(NodeId, Request)> {
        (0..n).map(|i| (NodeId(i), Request::Ping)).collect()
    }

    #[test]
    fn await_all_gathers_everything() {
        let t = LocalTransport::new(Cluster::new(5));
        t.cluster().kill(2);
        let out = QuorumRound::await_all(4).run(&t, pings(5));
        assert_eq!(out.validations(), 4);
        assert!(out.quorum_met());
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].node, NodeId(2));
        assert_eq!(out.rejected[0].error, NodeError::Down);
        assert!(out.abandoned.is_empty());
    }

    #[test]
    fn await_all_reports_missed_quorum() {
        let t = LocalTransport::new(Cluster::new(3));
        t.cluster().kill(0);
        t.cluster().kill(1);
        let out = QuorumRound::await_all(2).run(&t, pings(3));
        assert!(!out.quorum_met());
        assert_eq!(out.validations(), 1);
    }

    #[test]
    fn first_quorum_stops_early_sequentially() {
        let t = LocalTransport::new(Cluster::new(6));
        let before = t.cluster().io_totals();
        let out = QuorumRound::first_quorum(2).run(&t, pings(6));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 2);
        assert_eq!(
            out.abandoned,
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)],
            "sequential transport never issues the abandoned suffix"
        );
        // Ping is unaccounted, but ensure nothing else was counted.
        assert_eq!(t.cluster().io_totals().since(&before).reads, 0);
    }

    #[test]
    fn first_quorum_skips_failures_until_met() {
        let t = LocalTransport::new(Cluster::new(5));
        t.cluster().kill(0);
        t.cluster().kill(1);
        let out = QuorumRound::first_quorum(2).run(&t, pings(5));
        assert!(out.quorum_met());
        assert_eq!(out.rejected.len(), 2, "failures before quorum are recorded");
        assert_eq!(out.accepted_in_issue_order()[0].node, NodeId(2));
        assert_eq!(out.abandoned, vec![NodeId(4)]);
    }

    #[test]
    fn first_quorum_zero_needed_is_a_noop() {
        let t = LocalTransport::new(Cluster::new(3));
        let out = QuorumRound::first_quorum(0).run(&t, pings(3));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 0);
        assert_eq!(out.abandoned.len(), 3);
    }

    #[test]
    fn concurrent_round_meets_quorum_despite_dead_member() {
        let t = ChannelTransport::new(Cluster::new(5));
        t.cluster().kill(3);
        let out = QuorumRound::await_all(4).run(&t, pings(5));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 4);
        assert_eq!(out.rejected[0].node, NodeId(3));
        // Arrival order is nondeterministic; issue order is not.
        let order: Vec<usize> = out
            .accepted_in_issue_order()
            .iter()
            .map(|a| a.index)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 4]);
    }

    #[test]
    fn empty_round_trivially_met_at_zero() {
        let t = LocalTransport::new(Cluster::new(1));
        let out = QuorumRound::await_all(0).run(&t, Vec::new());
        assert!(out.quorum_met());
        let out = QuorumRound::await_all(1).run(&t, Vec::new());
        assert!(!out.quorum_met());
    }

    #[test]
    fn fused_awaitall_ops_gather_independently() {
        let t = LocalTransport::new(Cluster::new(6));
        t.cluster().kill(4);
        let ops = vec![
            PlanOp {
                round: QuorumRound::await_all(3),
                calls: pings(3),
            },
            PlanOp {
                round: QuorumRound::await_all(2),
                calls: (3..6).map(|i| (NodeId(i), Request::Ping)).collect(),
            },
        ];
        let outcomes = MultiRound::run(&t, ops);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].quorum_met());
        assert_eq!(outcomes[0].validations(), 3);
        assert!(outcomes[0].rejected.is_empty());
        assert!(outcomes[1].quorum_met());
        assert_eq!(outcomes[1].validations(), 2);
        assert_eq!(outcomes[1].rejected[0].node, NodeId(4));
        // Local indices are per-op, not per-batch.
        assert_eq!(outcomes[1].accepted_in_issue_order()[0].index, 0);
    }

    #[test]
    fn fused_first_quorum_stops_after_every_op_is_met() {
        let t = LocalTransport::new(Cluster::new(6));
        let ops = vec![
            PlanOp {
                round: QuorumRound::first_quorum(1),
                calls: pings(3),
            },
            PlanOp {
                round: QuorumRound::first_quorum(2),
                calls: (3..6).map(|i| (NodeId(i), Request::Ping)).collect(),
            },
        ];
        let outcomes = MultiRound::run(&t, ops);
        // Sequential lazy dispatch: op 0 is met on its first call; its
        // other two calls are issued anyway while op 1 still gathers
        // (fusion records them as accepts, a lone round would have
        // abandoned them). Op 1 completes on its second success and its
        // remaining call is never issued.
        assert!(outcomes[0].quorum_met());
        assert!(outcomes[1].quorum_met());
        assert_eq!(outcomes[1].validations(), 2);
        assert_eq!(outcomes[1].abandoned, vec![NodeId(5)]);
    }

    #[test]
    fn fused_unsatisfiable_op_does_not_block_early_exit() {
        let t = LocalTransport::new(Cluster::new(6));
        for n in 0..3 {
            t.cluster().kill(n);
        }
        let ops = vec![
            // Op 0 can never meet its quorum: all members dead.
            PlanOp {
                round: QuorumRound::first_quorum(1),
                calls: pings(3),
            },
            PlanOp {
                round: QuorumRound::first_quorum(1),
                calls: (3..6).map(|i| (NodeId(i), Request::Ping)).collect(),
            },
        ];
        let outcomes = MultiRound::run(&t, ops);
        assert!(!outcomes[0].quorum_met());
        assert_eq!(outcomes[0].rejected.len(), 3, "exhausted, not stuck");
        assert!(outcomes[1].quorum_met());
        assert_eq!(outcomes[1].validations(), 1);
        assert_eq!(
            outcomes[1].abandoned,
            vec![NodeId(4), NodeId(5)],
            "the dead op must not keep the met op's stragglers awaited"
        );
    }

    #[test]
    fn fused_zero_threshold_and_empty_ops_complete_upfront() {
        let t = LocalTransport::new(Cluster::new(3));
        let ops = vec![
            PlanOp {
                round: QuorumRound::first_quorum(0),
                calls: pings(3),
            },
            PlanOp {
                round: QuorumRound::await_all(0),
                calls: Vec::new(),
            },
        ];
        let outcomes = MultiRound::run(&t, ops);
        assert_eq!(outcomes[0].abandoned.len(), 3, "never dispatched");
        assert!(outcomes[1].quorum_met());
    }

    /// Delivers every reply twice — an at-least-once fabric in the
    /// worst case. The engines must count each op id once.
    struct DuplicatingTransport {
        inner: LocalTransport,
    }

    impl Transport for DuplicatingTransport {
        fn node_count(&self) -> usize {
            self.inner.node_count()
        }
        fn dispatch(&self, node: NodeId, env: Envelope) -> crate::rpc::Reply {
            self.inner.dispatch(node, env)
        }
        fn multicall(
            &self,
            calls: Vec<(NodeId, Envelope)>,
            sink: &mut dyn FnMut(RoundReply) -> bool,
        ) {
            let mut buffered = Vec::new();
            self.inner.multicall(calls, &mut |reply| {
                buffered.push(reply);
                true
            });
            for reply in buffered {
                if !sink(reply.clone()) || !sink(reply) {
                    return;
                }
            }
        }
    }

    /// Injects a reply with an op id the round never issued before every
    /// real reply — the cross-round stale-straggler shape.
    struct StrangerTransport {
        inner: LocalTransport,
    }

    impl Transport for StrangerTransport {
        fn node_count(&self) -> usize {
            self.inner.node_count()
        }
        fn dispatch(&self, node: NodeId, env: Envelope) -> crate::rpc::Reply {
            self.inner.dispatch(node, env)
        }
        fn multicall(
            &self,
            calls: Vec<(NodeId, Envelope)>,
            sink: &mut dyn FnMut(RoundReply) -> bool,
        ) {
            self.inner.multicall(calls, &mut |reply| {
                let stranger = RoundReply {
                    op_id: OpId::fresh(), // unknown to the round
                    round_epoch: 0,
                    node: reply.node,
                    result: Ok(Response::Ack),
                };
                sink(stranger) && sink(reply)
            });
        }
    }

    #[test]
    fn boundary_thresholds_met_exactly_and_one_short() {
        // Exactly at the boundary: 4 live of 5, threshold 4.
        let t = LocalTransport::new(Cluster::new(5));
        t.cluster().kill(2);
        let met = QuorumRound::await_all(4).run(&t, pings(5));
        assert!(met.quorum_met());
        assert_eq!(met.validations(), 4);
        assert_eq!(met.rejected.len(), 1);
        // One short: same round graded against 5.
        let short = QuorumRound::await_all(5).run(&t, pings(5));
        assert!(!short.quorum_met());
        assert_eq!(short.validations(), 4);
        assert_eq!(short.rejected.len(), 1);
        assert!(short.abandoned.is_empty(), "await_all leaves no stragglers");
    }

    #[test]
    fn fused_ops_graded_at_boundary_and_one_short_independently() {
        let t = LocalTransport::new(Cluster::new(6));
        t.cluster().kill(4);
        let ops = vec![
            // Met exactly at the boundary: 3 live members, needs 3.
            PlanOp {
                round: QuorumRound::await_all(3),
                calls: pings(3),
            },
            // One short: members {3, 4, 5} with 4 dead, needs 3.
            PlanOp {
                round: QuorumRound::await_all(3),
                calls: (3..6).map(|i| (NodeId(i), Request::Ping)).collect(),
            },
        ];
        let outcomes = MultiRound::run(&t, ops);
        assert!(outcomes[0].quorum_met());
        assert_eq!(outcomes[0].validations(), 3);
        assert!(outcomes[0].rejected.is_empty());
        assert!(!outcomes[1].quorum_met());
        assert_eq!(outcomes[1].validations(), 2);
        assert_eq!(outcomes[1].rejected.len(), 1);
        assert_eq!(outcomes[1].rejected[0].node, NodeId(4));
        assert!(outcomes[1].abandoned.is_empty());
    }

    #[test]
    fn duplicated_replies_do_not_fake_a_quorum() {
        let t = DuplicatingTransport {
            inner: LocalTransport::new(Cluster::new(4)),
        };
        // Without identity matching, node 0's duplicated ack would
        // satisfy threshold 2 on its own.
        let out = QuorumRound::first_quorum(2).run(&t, pings(4));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 2);
        let mut nodes: Vec<usize> = out.accepted.iter().map(|a| a.node.0).collect();
        nodes.dedup();
        assert_eq!(nodes, vec![0, 1], "two *distinct* members validated");
    }

    #[test]
    fn foreign_replies_are_ignored_by_identity() {
        let t = StrangerTransport {
            inner: LocalTransport::new(Cluster::new(4)),
        };
        // Every stranger ack is discarded: the quorum is still built
        // from the round's own op ids only.
        let out = QuorumRound::first_quorum(2).run(&t, pings(4));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 2);
        let nodes: Vec<usize> = out
            .accepted_in_issue_order()
            .iter()
            .map(|a| a.node.0)
            .collect();
        assert_eq!(nodes, vec![0, 1]);

        let ops = vec![
            PlanOp {
                round: QuorumRound::await_all(2),
                calls: pings(2),
            },
            PlanOp {
                round: QuorumRound::first_quorum(1),
                calls: (2..4).map(|i| (NodeId(i), Request::Ping)).collect(),
            },
        ];
        let t = StrangerTransport {
            inner: LocalTransport::new(Cluster::new(4)),
        };
        let outcomes = MultiRound::run(&t, ops);
        assert!(outcomes[0].quorum_met());
        assert_eq!(outcomes[0].validations(), 2);
        assert!(outcomes[1].quorum_met());
    }

    #[test]
    fn duplicated_replies_keep_fused_accounting_exact() {
        let t = DuplicatingTransport {
            inner: LocalTransport::new(Cluster::new(6)),
        };
        t.inner.cluster().kill(4);
        let ops = vec![
            PlanOp {
                round: QuorumRound::await_all(3),
                calls: pings(3),
            },
            PlanOp {
                round: QuorumRound::first_quorum(2),
                calls: (3..6).map(|i| (NodeId(i), Request::Ping)).collect(),
            },
        ];
        // Without identity matching this underflows `remaining` and
        // panics.
        let outcomes = MultiRound::run(&t, ops);
        assert!(outcomes[0].quorum_met());
        assert_eq!(outcomes[0].validations(), 3);
        assert!(outcomes[1].quorum_met());
        assert_eq!(outcomes[1].validations(), 2);
        assert_eq!(outcomes[1].rejected.len(), 1, "dead member counted once");
        // Totals never exceed the issued batch despite double delivery.
        for out in &outcomes {
            assert!(out.accepted.len() + out.rejected.len() + out.abandoned.len() <= 3);
        }
    }

    #[test]
    fn fused_plan_on_concurrent_transport_delivers_everything() {
        let t = ChannelTransport::new(Cluster::new(8));
        t.cluster().kill(6);
        let ops: Vec<PlanOp> = (0..4)
            .map(|op| PlanOp {
                round: QuorumRound::await_all(1),
                calls: (0..2)
                    .map(|j| (NodeId(op * 2 + j), Request::Ping))
                    .collect(),
            })
            .collect();
        let outcomes = MultiRound::run(&t, ops);
        for (op, out) in outcomes.iter().enumerate() {
            let expect_rejects = usize::from(op == 3);
            assert_eq!(out.rejected.len(), expect_rejects, "op {op}");
            assert_eq!(out.validations(), 2 - expect_rejects, "op {op}");
            assert!(out.abandoned.is_empty(), "op {op}");
        }
    }
}
