//! The quorum round engine: scatter a level's requests, gather until the
//! quorum condition is met.
//!
//! The paper's Algorithms 1 and 2 are loops over trapezoid levels; each
//! level polls its members and proceeds once `w_l` (write) or `r_l`
//! (read) of them validate. The seed implementation walked members one
//! blocking [`Transport::call`] at a time, so a level's wall-clock cost
//! was the *sum* of member latencies. [`QuorumRound`] restores the shape
//! quorum systems are built for: issue the whole level at once via
//! [`Transport::multicall`] and complete on the quorum condition —
//! roughly the latency of the slowest *needed* responder on a concurrent
//! transport, and bit-for-bit the old sequential behaviour on
//! [`LocalTransport`](crate::transport::LocalTransport).
//!
//! Two completion policies cover both algorithms:
//!
//! * [`QuorumRound::await_all`] — every reply is awaited; the quorum
//!   threshold only decides success afterwards. Writes need this: a
//!   validated write *set* is the durability statement, and on the
//!   sequential transport an early exit would leave members unwritten.
//! * [`QuorumRound::first_quorum`] — the round ends the moment the
//!   threshold-th success arrives. Version checks (Algorithm 2 line 30)
//!   and "first live replica" reads use this; outstanding members are
//!   reported as [`RoundOutcome::abandoned`] stragglers.

use crate::node::NodeId;
use crate::rpc::{NodeError, Request, Response};
use crate::transport::Transport;

/// When a round stops gathering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Stop as soon as `needed` successes arrived.
    FirstQuorum,
    /// Gather every reply; `needed` only grades the outcome.
    AwaitAll,
}

/// A successful reply within a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accepted {
    /// Position within the issued batch (stable across transports).
    pub index: usize,
    /// The responding node.
    pub node: NodeId,
    /// Its answer.
    pub response: Response,
}

/// A failed reply within a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// Position within the issued batch.
    pub index: usize,
    /// The failing node.
    pub node: NodeId,
    /// Why it failed.
    pub error: NodeError,
}

/// Everything a round learned, for protocol logic and accounting.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The quorum threshold the round was run with.
    pub needed: usize,
    /// Successes, in arrival order.
    pub accepted: Vec<Accepted>,
    /// Failures, in arrival order.
    pub rejected: Vec<Rejected>,
    /// Members whose replies were never awaited (first-quorum early
    /// completion). On a concurrent transport their requests were still
    /// delivered and executed; on the sequential transport they were
    /// never issued.
    pub abandoned: Vec<NodeId>,
}

impl RoundOutcome {
    /// `true` iff at least `needed` members validated.
    pub fn quorum_met(&self) -> bool {
        self.accepted.len() >= self.needed
    }

    /// Number of validations gathered.
    pub fn validations(&self) -> usize {
        self.accepted.len()
    }

    /// Accepted replies re-sorted into batch-issue order — use when a
    /// result must be independent of reply arrival order (validated-set
    /// reporting, decode input selection).
    pub fn accepted_in_issue_order(&self) -> Vec<&Accepted> {
        let mut sorted: Vec<&Accepted> = self.accepted.iter().collect();
        sorted.sort_by_key(|a| a.index);
        sorted
    }

    /// `true` iff any rejection carries the given error.
    pub fn saw_error(&self, is: impl Fn(&NodeError) -> bool) -> bool {
        self.rejected.iter().any(|r| is(&r.error))
    }

    /// The first rejection in batch-issue order, if any — the error a
    /// sequential walk would have tripped on first.
    pub fn first_rejection(&self) -> Option<&Rejected> {
        self.rejected.iter().min_by_key(|r| r.index)
    }
}

/// One scatter-gather round against a set of nodes.
#[derive(Debug, Clone, Copy)]
pub struct QuorumRound {
    needed: usize,
    completion: Completion,
}

impl QuorumRound {
    /// A round that completes on the `needed`-th success.
    pub fn first_quorum(needed: usize) -> Self {
        QuorumRound {
            needed,
            completion: Completion::FirstQuorum,
        }
    }

    /// A round that gathers every reply and grades against `needed`.
    pub fn await_all(needed: usize) -> Self {
        QuorumRound {
            needed,
            completion: Completion::AwaitAll,
        }
    }

    /// The quorum threshold.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// The completion policy.
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// Runs the round: scatters `calls` through the transport's fan-out
    /// primitive and gathers according to the completion policy.
    pub fn run<T: Transport + ?Sized>(
        &self,
        transport: &T,
        calls: Vec<(NodeId, Request)>,
    ) -> RoundOutcome {
        let issued: Vec<NodeId> = calls.iter().map(|&(node, _)| node).collect();
        let mut outcome = RoundOutcome {
            needed: self.needed,
            accepted: Vec::new(),
            rejected: Vec::new(),
            abandoned: Vec::new(),
        };
        let mut seen = vec![false; issued.len()];
        // A zero threshold under FirstQuorum is already satisfied; skip
        // dispatch entirely rather than special-casing inside the sink.
        if !(self.completion == Completion::FirstQuorum && self.needed == 0) {
            transport.multicall(calls, &mut |reply| {
                seen[reply.index] = true;
                match reply.result {
                    Ok(response) => outcome.accepted.push(Accepted {
                        index: reply.index,
                        node: reply.node,
                        response,
                    }),
                    Err(error) => outcome.rejected.push(Rejected {
                        index: reply.index,
                        node: reply.node,
                        error,
                    }),
                }
                match self.completion {
                    Completion::AwaitAll => true,
                    Completion::FirstQuorum => outcome.accepted.len() < self.needed,
                }
            });
        }
        for (i, node) in issued.into_iter().enumerate() {
            if !seen[i] {
                outcome.abandoned.push(node);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::transport::{ChannelTransport, LocalTransport};

    fn pings(n: usize) -> Vec<(NodeId, Request)> {
        (0..n).map(|i| (NodeId(i), Request::Ping)).collect()
    }

    #[test]
    fn await_all_gathers_everything() {
        let t = LocalTransport::new(Cluster::new(5));
        t.cluster().kill(2);
        let out = QuorumRound::await_all(4).run(&t, pings(5));
        assert_eq!(out.validations(), 4);
        assert!(out.quorum_met());
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].node, NodeId(2));
        assert_eq!(out.rejected[0].error, NodeError::Down);
        assert!(out.abandoned.is_empty());
    }

    #[test]
    fn await_all_reports_missed_quorum() {
        let t = LocalTransport::new(Cluster::new(3));
        t.cluster().kill(0);
        t.cluster().kill(1);
        let out = QuorumRound::await_all(2).run(&t, pings(3));
        assert!(!out.quorum_met());
        assert_eq!(out.validations(), 1);
    }

    #[test]
    fn first_quorum_stops_early_sequentially() {
        let t = LocalTransport::new(Cluster::new(6));
        let before = t.cluster().io_totals();
        let out = QuorumRound::first_quorum(2).run(&t, pings(6));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 2);
        assert_eq!(
            out.abandoned,
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)],
            "sequential transport never issues the abandoned suffix"
        );
        // Ping is unaccounted, but ensure nothing else was counted.
        assert_eq!(t.cluster().io_totals().since(&before).reads, 0);
    }

    #[test]
    fn first_quorum_skips_failures_until_met() {
        let t = LocalTransport::new(Cluster::new(5));
        t.cluster().kill(0);
        t.cluster().kill(1);
        let out = QuorumRound::first_quorum(2).run(&t, pings(5));
        assert!(out.quorum_met());
        assert_eq!(out.rejected.len(), 2, "failures before quorum are recorded");
        assert_eq!(out.accepted_in_issue_order()[0].node, NodeId(2));
        assert_eq!(out.abandoned, vec![NodeId(4)]);
    }

    #[test]
    fn first_quorum_zero_needed_is_a_noop() {
        let t = LocalTransport::new(Cluster::new(3));
        let out = QuorumRound::first_quorum(0).run(&t, pings(3));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 0);
        assert_eq!(out.abandoned.len(), 3);
    }

    #[test]
    fn concurrent_round_meets_quorum_despite_dead_member() {
        let t = ChannelTransport::new(Cluster::new(5));
        t.cluster().kill(3);
        let out = QuorumRound::await_all(4).run(&t, pings(5));
        assert!(out.quorum_met());
        assert_eq!(out.validations(), 4);
        assert_eq!(out.rejected[0].node, NodeId(3));
        // Arrival order is nondeterministic; issue order is not.
        let order: Vec<usize> = out
            .accepted_in_issue_order()
            .iter()
            .map(|a| a.index)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 4]);
    }

    #[test]
    fn empty_round_trivially_met_at_zero() {
        let t = LocalTransport::new(Cluster::new(1));
        let out = QuorumRound::await_all(0).run(&t, Vec::new());
        assert!(out.quorum_met());
        let out = QuorumRound::await_all(1).run(&t, Vec::new());
        assert!(!out.quorum_met());
    }
}
