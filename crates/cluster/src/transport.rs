//! How protocol code reaches storage nodes.
//!
//! Two implementations of one [`Transport`] trait:
//!
//! * [`LocalTransport`] — synchronous in-process dispatch. Deterministic
//!   and allocation-light; the default for availability experiments,
//!   where per-operation outcomes must be exactly replayable.
//! * [`ChannelTransport`] — one worker thread per node behind crossbeam
//!   channels, a faithful stand-in for an RPC fabric. Requests from many
//!   protocol threads interleave on the node's mailbox exactly as they
//!   would on a socket. Links are reliable and FIFO, matching the
//!   paper's "no failure on communication links" assumption. Per-node
//!   latency injection ([`ChannelTransport::set_node_latency`]) makes
//!   dispatch strategies measurable: a level fanned out over slow nodes
//!   costs one round trip, a sequential walk costs their sum.
//!
//! Everything a transport carries is an [`Envelope`] (command identity +
//! payload) answered by a [`Reply`] echoing that identity; transports
//! route envelopes to the [`NodeApi`] surface and never interpret
//! payloads. Besides the single-command [`Transport::dispatch`] (and its
//! payload-level convenience [`Transport::call`]), the trait exposes the
//! fan-out primitive [`Transport::multicall`] that the quorum round
//! engine ([`crate::quorum_round`]) builds on: issue a batch, observe
//! completions in arrival order, match them by [`OpId`], stop early once
//! a quorum is satisfied.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};

use crate::cluster::Cluster;
use crate::detmap::DetHashMap;
use crate::health::NodeHealth;
use crate::node::NodeId;
use crate::rpc::{Envelope, Lane, NodeApi, NodeError, OpId, Reply, Request, Response};

/// One completed call of a [`Transport::multicall`] batch, identified by
/// the op id its envelope carried (never by arrival position — an
/// at-least-once fabric may interleave stale replies from earlier
/// rounds, and only identity tells them apart).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReply {
    /// Identity of the command this reply answers.
    pub op_id: OpId,
    /// The round epoch the command carried.
    pub round_epoch: u64,
    /// The node that was addressed.
    pub node: NodeId,
    /// What came back.
    pub result: Result<Response, NodeError>,
}

impl RoundReply {
    /// Builds the round reply for `node` from a node-level [`Reply`].
    pub fn from_reply(node: NodeId, reply: Reply) -> Self {
        RoundReply {
            op_id: reply.op_id,
            round_epoch: reply.round_epoch,
            node,
            result: reply.result,
        }
    }
}

/// A way to issue enveloped commands to nodes and wait for their
/// answers.
pub trait Transport: Send + Sync {
    /// Number of reachable nodes.
    fn node_count(&self) -> usize;

    /// Sends one enveloped command to `node` and waits for the outcome.
    /// The reply echoes the envelope's identity even when synthesised by
    /// the transport (timeout, closed channel).
    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply;

    /// Payload-level convenience: wraps `req` in a fresh single-shot
    /// [`Envelope`] and unwraps the reply.
    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError> {
        self.dispatch(node, Envelope::new(req)).result
    }

    /// Fans out a batch of enveloped calls, delivering each completion
    /// to `sink` in *arrival order*. The sink returning `false` abandons
    /// the rest of the round (a quorum was satisfied; the stragglers'
    /// answers are no longer needed).
    ///
    /// Dispatch semantics differ by transport and both are load-bearing:
    ///
    /// * The default implementation (used by [`LocalTransport`]) issues
    ///   calls **lazily and sequentially** in batch order — fully
    ///   deterministic, and an abandoned suffix is *never issued*, so
    ///   experiment replays and IO accounting are bit-for-bit stable.
    /// * [`ChannelTransport`] **sends every request up front** and
    ///   forwards completions as they arrive, so a round costs roughly
    ///   the latency of the slowest *needed* responder instead of the
    ///   sum over members. Abandoning a round only stops waiting: every
    ///   request has already been delivered and will still execute on
    ///   its node (exactly how a real fabric behaves — a write you stop
    ///   waiting for may still land).
    ///
    /// At-least-once transports may additionally deliver **duplicate or
    /// foreign** replies (op ids the caller never issued in this batch);
    /// sinks must match by [`RoundReply::op_id`] and ignore strangers.
    fn multicall(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        for (node, env) in calls {
            let reply = self.dispatch(node, env);
            if !sink(RoundReply::from_reply(node, reply)) {
                break;
            }
        }
    }

    /// The transport's per-node health registry, if it keeps one.
    ///
    /// `None` (the default, and what [`LocalTransport`] returns) means
    /// no adaptive machinery: fixed deadlines, no hedging, no
    /// first-quorum write completion — the fully deterministic
    /// configuration experiments and exact-IO-count tests rely on.
    fn health(&self) -> Option<&NodeHealth> {
        None
    }
}

/// Synchronous in-process transport: `dispatch` runs the node's
/// [`NodeApi`] on the caller's thread, and `multicall` is the lazy
/// sequential default.
#[derive(Debug, Clone)]
pub struct LocalTransport {
    cluster: Cluster,
}

impl LocalTransport {
    /// Wraps a cluster.
    pub fn new(cluster: Cluster) -> Self {
        LocalTransport { cluster }
    }

    /// Borrow the underlying cluster (fault injection, accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Transport for LocalTransport {
    fn node_count(&self) -> usize {
        self.cluster.len()
    }

    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        assert!(node.0 < self.cluster.len(), "node {node} out of range");
        self.cluster.node(node.0).execute(env)
    }
}

/// Where a node worker routes its answer.
enum ReplyTo {
    /// A lone [`Transport::dispatch`]: one rendezvous channel.
    Single(Sender<Reply>),
    /// Part of a [`Transport::multicall`] round: answers from the whole
    /// batch funnel into one channel, tagged with the serving node.
    Round {
        node: NodeId,
        tx: Sender<RoundReply>,
    },
}

/// One in-flight request parcel on a node's mailbox.
struct Parcel {
    env: Envelope,
    reply: ReplyTo,
}

/// Thread-per-node transport over crossbeam channels.
///
/// Dropping the transport closes every mailbox and joins the workers.
pub struct ChannelTransport {
    cluster: Cluster,
    mailboxes: Vec<Sender<Parcel>>,
    /// Injected service delay per node, in nanoseconds (0 = none).
    latencies: Vec<Arc<AtomicU64>>,
    /// Per-node health registry (hedging off by default, so the
    /// transport behaves exactly as before until a caller enables it).
    health: Arc<NodeHealth>,
    /// Wire messages put on a mailbox: single dispatches, fan-out sends,
    /// and hedge re-issues. Benchmarks use this to price hedging.
    messages: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl ChannelTransport {
    /// Spawns one worker thread per node of `cluster`, with no injected
    /// latency.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_latency(cluster, &[])
    }

    /// Spawns workers with an initial per-node service delay: node `i`
    /// sleeps `latency[i]` before handling each request (nodes beyond
    /// the slice get zero). Use this to model heterogeneous or uniformly
    /// slow fabrics; [`set_node_latency`](Self::set_node_latency)
    /// adjusts it live.
    pub fn with_latency(cluster: Cluster, latency: &[Duration]) -> Self {
        let mut mailboxes = Vec::with_capacity(cluster.len());
        let mut latencies = Vec::with_capacity(cluster.len());
        let mut workers = Vec::with_capacity(cluster.len());
        for i in 0..cluster.len() {
            let (tx, rx) = unbounded::<Parcel>();
            let node = Arc::clone(cluster.node(i));
            let initial = latency.get(i).map_or(0, |d| d.as_nanos() as u64);
            let delay = Arc::new(AtomicU64::new(initial));
            let worker_delay = Arc::clone(&delay);
            let handle = std::thread::Builder::new()
                .name(format!("tq-node-{i}"))
                .spawn(move || {
                    // Serve until the mailbox closes. A reply failing to
                    // send means the caller gave up; that is its problem,
                    // not the node's.
                    while let Ok(Parcel { env, reply }) = rx.recv() {
                        let nanos = worker_delay.load(Ordering::Relaxed);
                        if nanos > 0 {
                            // tq-lint: allow(sim-determinism) -- ChannelTransport is the real-threads fabric; DST runs use SimTransport, which injects latency on the virtual clock instead.
                            std::thread::sleep(Duration::from_nanos(nanos));
                        }
                        let answer = node.execute(env);
                        match reply {
                            ReplyTo::Single(tx) => {
                                let _ = tx.send(answer);
                            }
                            ReplyTo::Round { node, tx } => {
                                let _ = tx.send(RoundReply::from_reply(node, answer));
                            }
                        }
                    }
                })
                .expect("spawn node worker");
            mailboxes.push(tx);
            latencies.push(delay);
            workers.push(handle);
        }
        ChannelTransport {
            cluster,
            mailboxes,
            latencies,
            health: Arc::new(NodeHealth::real_scale()),
            messages: AtomicU64::new(0),
            workers,
        }
    }

    /// Borrow the underlying cluster (fault injection, accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Sets node `i`'s injected service delay (applies to requests the
    /// worker picks up from now on).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_node_latency(&self, i: usize, latency: Duration) {
        self.latencies[i].store(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Node `i`'s current injected service delay.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn node_latency(&self, i: usize) -> Duration {
        Duration::from_nanos(self.latencies[i].load(Ordering::Relaxed))
    }

    /// The transport's health registry — enable hedging via
    /// [`NodeHealth::set_policy`].
    pub fn health_registry(&self) -> &NodeHealth {
        &self.health
    }

    /// Total wire messages sent so far (single dispatches, fan-out
    /// sends, and hedge re-issues). Hedging's message overhead is
    /// `hedge_counters().fired / (messages_sent() - fired)`.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// The hedged fan-out path, entered only when a
    /// [`HedgePolicy`](crate::health::HedgePolicy) is active: sends
    /// every request up front like the plain path, but while waiting it
    /// watches each foreground slot's hedge deadline (a quantile of the
    /// node's latency estimate) and speculatively re-issues the *same*
    /// envelope to the straggler once the deadline passes — idempotency
    /// makes the duplicate safe, and the retry budget caps how many can
    /// fire. The first reply completes the slot; the loser's answer is
    /// absorbed as a duplicate.
    ///
    /// Attribution caveat: both copies carry the same `OpId`, so the
    /// transport cannot tell which one a completion came from. A slot
    /// that completes after its hedge fired is counted as a hedge win;
    /// totals (fired/won/dups) are conserved, per-slot attribution is
    /// approximate under real-thread races.
    fn multicall_hedged(
        &self,
        calls: Vec<(NodeId, Envelope)>,
        sink: &mut dyn FnMut(RoundReply) -> bool,
    ) {
        struct Slot {
            node: NodeId,
            env: Envelope,
            sent: std::time::Instant,
            hedge_at: Option<std::time::Instant>,
            hedged: bool,
            done: bool,
        }
        let total = calls.len();
        if total == 0 {
            return;
        }
        let (tx, rx) = unbounded::<RoundReply>();
        let mut slots: Vec<Slot> = Vec::with_capacity(total);
        let mut by_op: DetHashMap<OpId, usize> = DetHashMap::default();
        for (node, env) in calls {
            let mailbox = self
                .mailboxes
                .get(node.0)
                .expect("node index within cluster");
            let (op_id, round_epoch) = (env.op_id, env.round_epoch);
            self.messages.fetch_add(1, Ordering::Relaxed);
            let sent = mailbox.send(Parcel {
                env: env.clone(),
                reply: ReplyTo::Round {
                    node,
                    tx: tx.clone(),
                },
            });
            if sent.is_err() {
                let _ = tx.send(RoundReply {
                    op_id,
                    round_epoch,
                    node,
                    result: Err(NodeError::TransportClosed),
                });
            }
            // tq-lint: allow(sim-determinism) -- hedged multicall is the real-threads path; SimTransport hedges on the virtual clock instead.
            let now = std::time::Instant::now();
            // No hedge for a flagged straggler: the re-issue goes to the
            // *same* node (its protocol role is fixed), which can win
            // against transient jitter or a dropped packet but never
            // against a chronically slow node — there the duplicate only
            // burns budget and messages. Reads already route around
            // stragglers; writes must await them for durability either
            // way.
            let hedge_at = (env.lane == Lane::Foreground && !self.health.straggler(node.0))
                .then(|| self.health.hedge_delay(node.0))
                .flatten()
                .map(|d| now + Duration::from_nanos(d));
            by_op.insert(op_id, slots.len());
            slots.push(Slot {
                node,
                env,
                sent: now,
                hedge_at,
                hedged: false,
                done: false,
            });
        }
        // `tx` stays alive for hedge re-sends; the loop exits on
        // completion count, not channel disconnect. Every slot is
        // guaranteed a completion: a dead mailbox was synthesised as
        // `TransportClosed` in-band above.
        let mut done_count = 0;
        while done_count < total {
            let next_hedge = slots
                .iter()
                .filter(|s| !s.done && !s.hedged)
                .filter_map(|s| s.hedge_at)
                .min();
            let received = match next_hedge {
                Some(at) => {
                    // tq-lint: allow(sim-determinism) -- real-threads path, see above.
                    let wait = at.saturating_duration_since(std::time::Instant::now());
                    match rx.recv_timeout(wait) {
                        Ok(reply) => Some(reply),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match rx.recv() {
                    Ok(reply) => Some(reply),
                    Err(_) => break,
                },
            };
            let Some(reply) = received else {
                // A hedge deadline passed with the slot still open:
                // re-issue the same envelope if the budget allows.
                // tq-lint: allow(sim-determinism) -- real-threads path, see above.
                let now = std::time::Instant::now();
                for s in slots.iter_mut() {
                    if s.done || s.hedged || s.hedge_at.is_none_or(|at| at > now) {
                        continue;
                    }
                    if !self.health.try_spend(s.env.lane) {
                        s.hedge_at = None; // budget refused; stop asking
                        continue;
                    }
                    self.messages.fetch_add(1, Ordering::Relaxed);
                    let resend = self.mailboxes.get(s.node.0).and_then(|m| {
                        m.send(Parcel {
                            env: s.env.clone(),
                            reply: ReplyTo::Round {
                                node: s.node,
                                tx: tx.clone(),
                            },
                        })
                        .ok()
                    });
                    if resend.is_some() {
                        s.hedged = true;
                        self.health.note_hedge_fired();
                    } else {
                        s.hedge_at = None;
                    }
                }
                continue;
            };
            match by_op.get(&reply.op_id) {
                Some(&i) if !slots[i].done => {
                    let s = &mut slots[i];
                    s.done = true;
                    done_count += 1;
                    // Latency sample only — success/failure outcomes are
                    // fed once, by the quorum engine, to avoid double
                    // counting against the circuit breaker and budget.
                    if reply.result.is_ok() {
                        let rtt = s.sent.elapsed().as_nanos() as u64;
                        self.health.record_sample(s.node.0, rtt);
                    }
                    if s.hedged {
                        self.health.note_hedge_won();
                    }
                }
                Some(&i) => {
                    if slots[i].hedged {
                        self.health.note_hedge_dup();
                    }
                    continue; // duplicate: absorbed, not forwarded
                }
                None => {} // stranger: forward; the sink ignores by identity
            }
            if !sink(reply) {
                break;
            }
        }
    }
}

impl Transport for ChannelTransport {
    fn node_count(&self) -> usize {
        self.cluster.len()
    }

    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        let mailbox = self
            .mailboxes
            .get(node.0)
            .expect("node index within cluster");
        let (op_id, round_epoch) = (env.op_id, env.round_epoch);
        let closed = || Reply {
            op_id,
            round_epoch,
            result: Err(NodeError::TransportClosed),
        };
        let (reply_tx, reply_rx) = bounded(1);
        self.messages.fetch_add(1, Ordering::Relaxed);
        match mailbox.send(Parcel {
            env,
            reply: ReplyTo::Single(reply_tx),
        }) {
            Ok(()) => {
                // tq-lint: allow(sim-determinism) -- real-threads path; SimTransport samples on the virtual clock.
                let sent = std::time::Instant::now();
                let reply = reply_rx.recv().unwrap_or_else(|_| closed());
                // The estimator warms even while hedging is off, so
                // arming a policy later starts from live latencies
                // instead of a cold table.
                if reply.result.is_ok() {
                    self.health
                        .record_sample(node.0, sent.elapsed().as_nanos() as u64);
                }
                reply
            }
            Err(_) => closed(),
        }
    }

    fn health(&self) -> Option<&NodeHealth> {
        Some(&self.health)
    }

    fn multicall(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        if self.health.hedging_enabled() {
            return self.multicall_hedged(calls, sink);
        }
        let total = calls.len();
        if total == 0 {
            return;
        }
        let (tx, rx) = unbounded::<RoundReply>();
        for (node, env) in calls {
            let mailbox = self
                .mailboxes
                .get(node.0)
                .expect("node index within cluster");
            let (op_id, round_epoch) = (env.op_id, env.round_epoch);
            self.messages.fetch_add(1, Ordering::Relaxed);
            let sent = mailbox.send(Parcel {
                env,
                reply: ReplyTo::Round {
                    node,
                    tx: tx.clone(),
                },
            });
            if sent.is_err() {
                // The worker is gone; synthesise the failure in-band so
                // the round still sees `total` completions.
                let _ = tx.send(RoundReply {
                    op_id,
                    round_epoch,
                    node,
                    result: Err(NodeError::TransportClosed),
                });
            }
        }
        drop(tx); // the receiver must not count our own handle as pending
        let mut received = 0;
        while received < total {
            let Ok(reply) = rx.recv() else { break };
            received += 1;
            if !sink(reply) {
                break; // stragglers execute anyway; nobody awaits them
            }
        }
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.mailboxes.clear(); // close every mailbox
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("nodes", &self.cluster.len())
            .finish()
    }
}

/// Blanket impl so `Arc<T>` transports can be shared across protocol
/// threads. Forwards `multicall` so concurrent fan-out survives the
/// indirection.
impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        (**self).dispatch(node, env)
    }
    fn multicall(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        (**self).multicall(calls, sink)
    }
    fn health(&self) -> Option<&NodeHealth> {
        (**self).health()
    }
}

impl<T: Transport + ?Sized> Transport for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        (**self).dispatch(node, env)
    }
    fn multicall(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        (**self).multicall(calls, sink)
    }
    fn health(&self) -> Option<&NodeHealth> {
        (**self).health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Instant;

    fn exercise(transport: &dyn Transport) {
        assert_eq!(transport.node_count(), 3);
        transport
            .call(
                NodeId(0),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"abc"),
                },
            )
            .unwrap();
        match transport
            .call(NodeId(0), Request::ReadData { id: 1 })
            .unwrap()
        {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"abc");
                assert_eq!(version, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            transport.call(NodeId(1), Request::ReadData { id: 1 }),
            Err(NodeError::NotFound)
        );
    }

    #[test]
    fn local_transport_basics() {
        let t = LocalTransport::new(Cluster::new(3));
        exercise(&t);
    }

    #[test]
    fn channel_transport_basics() {
        let t = ChannelTransport::new(Cluster::new(3));
        exercise(&t);
    }

    #[test]
    fn dispatch_echoes_envelope_identity() {
        let t = LocalTransport::new(Cluster::new(1));
        let env = Envelope::in_epoch(Request::Ping, 7);
        let (op_id, epoch) = (env.op_id, env.round_epoch);
        let reply = t.dispatch(NodeId(0), env);
        assert_eq!(reply.op_id, op_id);
        assert_eq!(reply.round_epoch, epoch);
        assert_eq!(reply.result, Ok(Response::Pong));

        let t = ChannelTransport::new(Cluster::new(1));
        let env = Envelope::in_epoch(Request::Ping, 9);
        let (op_id, epoch) = (env.op_id, env.round_epoch);
        let reply = t.dispatch(NodeId(0), env);
        assert_eq!(reply.op_id, op_id);
        assert_eq!(reply.round_epoch, epoch);
        assert_eq!(reply.result, Ok(Response::Pong));
    }

    #[test]
    fn both_transports_honour_fail_stop() {
        let local = LocalTransport::new(Cluster::new(2));
        local.cluster().kill(0);
        assert_eq!(local.call(NodeId(0), Request::Ping), Err(NodeError::Down));
        assert_eq!(local.call(NodeId(1), Request::Ping), Ok(Response::Pong));

        let chan = ChannelTransport::new(Cluster::new(2));
        chan.cluster().kill(1);
        assert_eq!(chan.call(NodeId(0), Request::Ping), Ok(Response::Pong));
        assert_eq!(chan.call(NodeId(1), Request::Ping), Err(NodeError::Down));
    }

    #[test]
    fn channel_transport_concurrent_callers() {
        let t = Arc::new(ChannelTransport::new(Cluster::new(4)));
        for i in 0..4 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 42,
                    bytes: Bytes::from(vec![i as u8; 8]),
                },
            )
            .unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let node = NodeId((worker + round) % 4);
                        match t.call(node, Request::ReadData { id: 42 }).unwrap() {
                            Response::Data { bytes, .. } => {
                                assert_eq!(bytes[0] as usize, node.0);
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.cluster().io_totals().reads, 400);
    }

    #[test]
    fn shared_cluster_between_transports() {
        // The same nodes can be reached through both transports; state is
        // shared because the cluster holds Arc'd nodes.
        let cluster = Cluster::new(2);
        let local = LocalTransport::new(cluster.clone());
        let chan = ChannelTransport::new(cluster);
        local
            .call(
                NodeId(0),
                Request::InitData {
                    id: 5,
                    bytes: Bytes::from_static(b"shared"),
                },
            )
            .unwrap();
        match chan.call(NodeId(0), Request::ReadData { id: 5 }).unwrap() {
            Response::Data { bytes, .. } => assert_eq!(&bytes[..], b"shared"),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn ping_batch(n: usize) -> Vec<(NodeId, Envelope)> {
        (0..n)
            .map(|i| (NodeId(i), Envelope::new(Request::Ping)))
            .collect()
    }

    #[test]
    fn sequential_multicall_is_lazy_and_ordered() {
        let t = LocalTransport::new(Cluster::new(4));
        let batch = ping_batch(4);
        let ids: Vec<OpId> = batch.iter().map(|(_, env)| env.op_id).collect();
        let mut seen = Vec::new();
        t.multicall(batch, &mut |reply| {
            seen.push(reply.op_id);
            seen.len() < 2 // abandon after two completions
        });
        assert_eq!(seen, ids[..2], "issue order, early exit");
        // Lazy: abandoned pings were never issued, so no rejects either.
        let t = LocalTransport::new(Cluster::new(4));
        t.cluster().kill(3);
        let mut results = Vec::new();
        t.multicall(ping_batch(4), &mut |reply| {
            results.push((reply.node, reply.result.is_ok()));
            true
        });
        assert_eq!(
            results,
            vec![
                (NodeId(0), true),
                (NodeId(1), true),
                (NodeId(2), true),
                (NodeId(3), false)
            ],
            "full batch delivered in order with failures in-band"
        );
    }

    #[test]
    fn concurrent_multicall_delivers_every_reply() {
        let t = ChannelTransport::new(Cluster::new(8));
        t.cluster().kill(5);
        let mut ok = 0;
        let mut down = 0;
        t.multicall(ping_batch(8), &mut |reply| {
            match reply.result {
                Ok(Response::Pong) => ok += 1,
                Err(NodeError::Down) => down += 1,
                other => panic!("unexpected {other:?}"),
            }
            true
        });
        assert_eq!((ok, down), (7, 1));
    }

    #[test]
    fn concurrent_multicall_overlaps_injected_latency() {
        // 6 nodes, 40ms each: sequential costs ≥ 240ms, fan-out ≈ 40ms.
        // The margin is generous (4× the ideal, well under sequential) so
        // scheduler noise on a loaded CI runner cannot flake the test.
        let delay = Duration::from_millis(40);
        let t = ChannelTransport::with_latency(Cluster::new(6), &[delay; 6]);
        let start = Instant::now();
        let mut count = 0;
        t.multicall(ping_batch(6), &mut |reply| {
            assert_eq!(reply.result, Ok(Response::Pong));
            count += 1;
            true
        });
        let elapsed = start.elapsed();
        assert_eq!(count, 6);
        assert!(
            elapsed < delay * 4,
            "fan-out took {elapsed:?}, expected ~1 round trip of {delay:?}"
        );
    }

    #[test]
    fn abandoned_round_still_executes_stragglers() {
        // First-quorum abandon over the channel transport: the write we
        // stop waiting for still lands on the node.
        let t = ChannelTransport::new(Cluster::new(3));
        for i in 0..3 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 9,
                    bytes: Bytes::from_static(b"old"),
                },
            )
            .unwrap();
        }
        let calls: Vec<(NodeId, Envelope)> = (0..3)
            .map(|i| {
                (
                    NodeId(i),
                    Envelope::new(Request::WriteData {
                        id: 9,
                        bytes: Bytes::from_static(b"new"),
                        version: 1,
                    }),
                )
            })
            .collect();
        let mut first = None;
        t.multicall(calls, &mut |reply| {
            first = Some(reply.result.clone());
            false // abandon after the first ack
        });
        assert_eq!(first, Some(Ok(Response::Ack)));
        // Every node eventually applied the write (drain via fresh calls,
        // which queue behind the straggling writes on each mailbox).
        for i in 0..3 {
            match t.call(NodeId(i), Request::ReadData { id: 9 }).unwrap() {
                Response::Data { bytes, version, .. } => {
                    assert_eq!(&bytes[..], b"new");
                    assert_eq!(version, 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn hedged_multicall_reissues_to_stragglers() {
        use crate::health::HedgePolicy;
        let t = ChannelTransport::new(Cluster::new(4));
        t.health_registry().set_policy(HedgePolicy::P99);
        // Warm the estimator (and earn retry budget) with fast rounds.
        for _ in 0..8 {
            let mut n = 0;
            t.multicall(ping_batch(4), &mut |_| {
                n += 1;
                true
            });
            assert_eq!(n, 4);
        }
        // Turn node 3 gray: far past any hedge delay the estimator
        // derives from the fast warm-up samples.
        t.set_node_latency(3, Duration::from_millis(50));
        let mut n = 0;
        t.multicall(ping_batch(4), &mut |r| {
            assert!(r.result.is_ok());
            n += 1;
            true
        });
        assert_eq!(n, 4, "every slot still completes exactly once");
        let c = t.health_registry().hedge_counters();
        assert!(c.fired >= 1, "expected a hedge to fire: {c:?}");
        assert!(c.retries >= 1, "hedges spend retry budget: {c:?}");
    }

    #[test]
    fn hedging_off_keeps_the_plain_path() {
        let t = ChannelTransport::new(Cluster::new(3));
        assert!(!t.health_registry().hedging_enabled());
        let mut n = 0;
        t.multicall(ping_batch(3), &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 3);
        assert_eq!(
            t.health_registry().hedge_counters(),
            crate::health::HedgeCounters::default()
        );
    }

    #[test]
    fn latency_can_be_adjusted_live() {
        let t = ChannelTransport::new(Cluster::new(2));
        assert_eq!(t.node_latency(0), Duration::ZERO);
        t.set_node_latency(0, Duration::from_millis(5));
        assert_eq!(t.node_latency(0), Duration::from_millis(5));
        let start = Instant::now();
        t.call(NodeId(0), Request::Ping).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        t.set_node_latency(0, Duration::ZERO);
        assert_eq!(t.node_latency(0), Duration::ZERO);
    }
}
