//! How protocol code reaches storage nodes.
//!
//! Two implementations of one [`Transport`] trait:
//!
//! * [`LocalTransport`] — synchronous in-process dispatch. Deterministic
//!   and allocation-light; the default for availability experiments,
//!   where per-operation outcomes must be exactly replayable.
//! * [`ChannelTransport`] — one worker thread per node behind crossbeam
//!   channels, a faithful stand-in for an RPC fabric. Requests from many
//!   protocol threads interleave on the node's mailbox exactly as they
//!   would on a socket. Links are reliable and FIFO, matching the
//!   paper's "no failure on communication links" assumption.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};

use crate::cluster::Cluster;
use crate::node::NodeId;
use crate::rpc::{NodeError, Request, Response};

/// A way to issue one request to one node and wait for its answer.
pub trait Transport: Send + Sync {
    /// Number of reachable nodes.
    fn node_count(&self) -> usize;

    /// Sends `req` to node `node` and waits for the outcome.
    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError>;
}

/// Synchronous in-process transport: `call` runs the node handler on the
/// caller's thread.
#[derive(Debug, Clone)]
pub struct LocalTransport {
    cluster: Cluster,
}

impl LocalTransport {
    /// Wraps a cluster.
    pub fn new(cluster: Cluster) -> Self {
        LocalTransport { cluster }
    }

    /// Borrow the underlying cluster (fault injection, accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Transport for LocalTransport {
    fn node_count(&self) -> usize {
        self.cluster.len()
    }

    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError> {
        assert!(node.0 < self.cluster.len(), "node {node} out of range");
        self.cluster.node(node.0).handle(req)
    }
}

/// One in-flight request envelope.
struct Envelope {
    req: Request,
    reply: Sender<Result<Response, NodeError>>,
}

/// Thread-per-node transport over crossbeam channels.
///
/// Dropping the transport closes every mailbox and joins the workers.
pub struct ChannelTransport {
    cluster: Cluster,
    mailboxes: Vec<Sender<Envelope>>,
    workers: Vec<JoinHandle<()>>,
}

impl ChannelTransport {
    /// Spawns one worker thread per node of `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        let mut mailboxes = Vec::with_capacity(cluster.len());
        let mut workers = Vec::with_capacity(cluster.len());
        for i in 0..cluster.len() {
            let (tx, rx) = unbounded::<Envelope>();
            let node = Arc::clone(cluster.node(i));
            let handle = std::thread::Builder::new()
                .name(format!("tq-node-{i}"))
                .spawn(move || {
                    // Serve until the mailbox closes. A reply failing to
                    // send means the caller gave up; that is its problem,
                    // not the node's.
                    while let Ok(Envelope { req, reply }) = rx.recv() {
                        let _ = reply.send(node.handle(req));
                    }
                })
                .expect("spawn node worker");
            mailboxes.push(tx);
            workers.push(handle);
        }
        ChannelTransport {
            cluster,
            mailboxes,
            workers,
        }
    }

    /// Borrow the underlying cluster (fault injection, accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl Transport for ChannelTransport {
    fn node_count(&self) -> usize {
        self.cluster.len()
    }

    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError> {
        let mailbox = self
            .mailboxes
            .get(node.0)
            .expect("node index within cluster");
        let (reply_tx, reply_rx) = bounded(1);
        mailbox
            .send(Envelope {
                req,
                reply: reply_tx,
            })
            .map_err(|_| NodeError::TransportClosed)?;
        reply_rx.recv().map_err(|_| NodeError::TransportClosed)?
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.mailboxes.clear(); // close every mailbox
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("nodes", &self.cluster.len())
            .finish()
    }
}

/// Blanket impl so `Arc<T>` transports can be shared across protocol
/// threads.
impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError> {
        (**self).call(node, req)
    }
}

impl<T: Transport + ?Sized> Transport for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError> {
        (**self).call(node, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn exercise(transport: &dyn Transport) {
        assert_eq!(transport.node_count(), 3);
        transport
            .call(
                NodeId(0),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"abc"),
                },
            )
            .unwrap();
        match transport.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version } => {
                assert_eq!(&bytes[..], b"abc");
                assert_eq!(version, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            transport.call(NodeId(1), Request::ReadData { id: 1 }),
            Err(NodeError::NotFound)
        );
    }

    #[test]
    fn local_transport_basics() {
        let t = LocalTransport::new(Cluster::new(3));
        exercise(&t);
    }

    #[test]
    fn channel_transport_basics() {
        let t = ChannelTransport::new(Cluster::new(3));
        exercise(&t);
    }

    #[test]
    fn both_transports_honour_fail_stop() {
        let local = LocalTransport::new(Cluster::new(2));
        local.cluster().kill(0);
        assert_eq!(local.call(NodeId(0), Request::Ping), Err(NodeError::Down));
        assert_eq!(local.call(NodeId(1), Request::Ping), Ok(Response::Pong));

        let chan = ChannelTransport::new(Cluster::new(2));
        chan.cluster().kill(1);
        assert_eq!(chan.call(NodeId(0), Request::Ping), Ok(Response::Pong));
        assert_eq!(chan.call(NodeId(1), Request::Ping), Err(NodeError::Down));
    }

    #[test]
    fn channel_transport_concurrent_callers() {
        let t = Arc::new(ChannelTransport::new(Cluster::new(4)));
        for i in 0..4 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 42,
                    bytes: Bytes::from(vec![i as u8; 8]),
                },
            )
            .unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for round in 0..50 {
                        let node = NodeId((worker + round) % 4);
                        match t.call(node, Request::ReadData { id: 42 }).unwrap() {
                            Response::Data { bytes, .. } => {
                                assert_eq!(bytes[0] as usize, node.0);
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.cluster().io_totals().reads, 400);
    }

    #[test]
    fn shared_cluster_between_transports() {
        // The same nodes can be reached through both transports; state is
        // shared because the cluster holds Arc'd nodes.
        let cluster = Cluster::new(2);
        let local = LocalTransport::new(cluster.clone());
        let chan = ChannelTransport::new(cluster);
        local
            .call(
                NodeId(0),
                Request::InitData {
                    id: 5,
                    bytes: Bytes::from_static(b"shared"),
                },
            )
            .unwrap();
        match chan.call(NodeId(0), Request::ReadData { id: 5 }).unwrap() {
            Response::Data { bytes, .. } => assert_eq!(&bytes[..], b"shared"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
