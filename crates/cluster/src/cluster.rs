//! A cluster: the node universe one stripe (or many) lives on.

use std::sync::Arc;

use crate::node::{NodeBuilder, NodeId, StorageNode};
use crate::stats::IoSnapshot;
use crate::storage::StorageBackend;

/// A fixed-size set of storage nodes with fail-stop switches.
///
/// Nodes are shared (`Arc`) so transports, fault injectors and protocol
/// drivers can hold references concurrently; the cluster itself is
/// immutable after construction (the paper's model has a fixed node set —
/// dynamics happen through the up/down switches, not membership).
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Arc<StorageNode>>,
}

impl Cluster {
    /// Builds a cluster of `n` live nodes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Cluster {
            nodes: (0..n)
                .map(|i| Arc::new(StorageNode::new(NodeId(i))))
                .collect(),
        }
    }

    /// Builds a cluster of `n` live nodes whose persistence is supplied
    /// per node by `backend` (index → backend) — the hook the DST uses
    /// to wrap every node's storage in a seeded faulting backend, and
    /// tests use to pin a specific backend regardless of
    /// `TQ_NODE_BACKEND`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_backends(
        n: usize,
        mut backend: impl FnMut(usize) -> Arc<dyn StorageBackend>,
    ) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Cluster {
            nodes: (0..n)
                .map(|i| Arc::new(StorageNode::builder(NodeId(i)).backend(backend(i)).build()))
                .collect(),
        }
    }

    /// Builds a cluster of `n` live nodes, letting `configure` adjust
    /// each node's builder (backend, durability, read verification)
    /// before it is built — the general form of
    /// [`with_backends`](Self::with_backends), used by tests that need
    /// e.g. a verify-off cluster to exercise client-side integrity
    /// checking.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_node_builders(
        n: usize,
        mut configure: impl FnMut(usize, NodeBuilder) -> NodeBuilder,
    ) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Cluster {
            nodes: (0..n)
                .map(|i| Arc::new(configure(i, StorageNode::builder(NodeId(i))).build()))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the cluster is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow node `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &Arc<StorageNode> {
        &self.nodes[i]
    }

    /// Iterator over the nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Arc<StorageNode>> {
        self.nodes.iter()
    }

    /// Marks node `i` failed.
    pub fn kill(&self, i: usize) {
        self.nodes[i].set_up(false);
    }

    /// Revives node `i` (its pre-failure state is still there — revived
    /// nodes are *stale*, not fresh).
    pub fn revive(&self, i: usize) {
        self.nodes[i].set_up(true);
    }

    /// Replaces node `i` with blank hardware: wipes its stored blocks and
    /// brings it up empty. Use `tq-trapezoid`'s rebuild to repopulate it.
    pub fn replace(&self, i: usize) {
        self.nodes[i].wipe();
        self.nodes[i].set_up(true);
    }

    /// Applies an availability pattern: node `i` is up iff `up[i]`.
    ///
    /// # Panics
    /// Panics if `up.len() != self.len()`.
    pub fn apply_availability(&self, up: &[bool]) {
        assert_eq!(up.len(), self.nodes.len(), "availability vector length");
        for (node, &u) in self.nodes.iter().zip(up) {
            node.set_up(u);
        }
    }

    /// Indices of currently live nodes.
    pub fn live_nodes(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.nodes[i].is_up()).collect()
    }

    /// Cluster-wide IO counters.
    pub fn io_totals(&self) -> IoSnapshot {
        self.nodes
            .iter()
            .map(|n| n.io_snapshot())
            .fold(IoSnapshot::default(), |acc, s| acc.merge(&s))
    }

    /// Total payload bytes stored across all nodes (measured `D_used`).
    pub fn stored_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.stored_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{NodeError, Request, Response};
    use bytes::Bytes;

    #[test]
    fn construction_and_access() {
        let c = Cluster::new(5);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.node(3).id(), NodeId(3));
        assert_eq!(c.live_nodes(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn kill_and_revive() {
        let c = Cluster::new(3);
        c.kill(1);
        assert_eq!(c.live_nodes(), vec![0, 2]);
        assert_eq!(c.node(1).handle(Request::Ping), Err(NodeError::Down));
        c.revive(1);
        assert_eq!(c.live_nodes(), vec![0, 1, 2]);
        assert_eq!(c.node(1).handle(Request::Ping), Ok(Response::Pong));
    }

    #[test]
    fn apply_availability_pattern() {
        let c = Cluster::new(4);
        c.apply_availability(&[true, false, false, true]);
        assert_eq!(c.live_nodes(), vec![0, 3]);
        c.apply_availability(&[true, true, true, true]);
        assert_eq!(c.live_nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cluster_accounting() {
        let c = Cluster::new(2);
        c.node(0)
            .handle(Request::InitData {
                id: 1,
                bytes: Bytes::from(vec![0; 64]),
            })
            .unwrap();
        c.node(1)
            .handle(Request::InitParity {
                id: 1,
                bytes: Bytes::from(vec![0; 16]),
                k: 4,
                checks: vec![],
            })
            .unwrap();
        assert_eq!(c.stored_bytes(), 80);
        let totals = c.io_totals();
        assert_eq!(totals.writes, 2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = Cluster::new(0);
    }
}
