//! Per-node IO accounting.
//!
//! The paper motivates ERC schemes by update/recovery IO cost ("a (9,6)
//! MDS will require 8 read and write operations for a single block
//! update"). These counters make that arithmetic observable: every node
//! tallies operations served and payload bytes moved, so benches can
//! report IO per protocol operation and the delta-update ablation can
//! show its savings against full re-encode.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operation / byte counters for one node.
///
/// All counters are relaxed atomics: they are statistics, not
/// synchronisation, and the hot path must stay cheap.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    version_queries: AtomicU64,
    parity_adds: AtomicU64,
    rejected: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Block reads served (data or parity).
    pub reads: u64,
    /// Block writes applied.
    pub writes: u64,
    /// Version / version-vector queries served.
    pub version_queries: u64,
    /// Parity delta folds applied.
    pub parity_adds: u64,
    /// Requests rejected (down, guard failure, …).
    pub rejected: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
}

impl IoSnapshot {
    /// Total operations served (excluding rejections).
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.version_queries + self.parity_adds
    }

    /// Element-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            version_queries: self.version_queries - earlier.version_queries,
            parity_adds: self.parity_adds - earlier.parity_adds,
            rejected: self.rejected - earlier.rejected,
            bytes_in: self.bytes_in - earlier.bytes_in,
            bytes_out: self.bytes_out - earlier.bytes_out,
        }
    }

    /// Element-wise sum (for cluster-wide aggregation).
    pub fn merge(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            version_queries: self.version_queries + other.version_queries,
            parity_adds: self.parity_adds + other.parity_adds,
            rejected: self.rejected + other.rejected,
            bytes_in: self.bytes_in + other.bytes_in,
            bytes_out: self.bytes_out + other.bytes_out,
        }
    }
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records a block read serving `bytes` bytes.
    pub fn record_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a block write receiving `bytes` bytes.
    pub fn record_write(&self, bytes: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a version(-vector) query.
    pub fn record_version_query(&self) {
        self.version_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a parity fold receiving `bytes` delta bytes.
    pub fn record_parity_add(&self, bytes: usize) {
        self.parity_adds.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a rejected request.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot (relaxed reads; counters are
    /// monotone so any interleaving is a valid point in time for tests).
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            version_queries: self.version_queries.load(Ordering::Relaxed),
            parity_adds: self.parity_adds.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_write(200);
        s.record_version_query();
        s.record_parity_add(30);
        s.record_rejected();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.version_queries, 1);
        assert_eq!(snap.parity_adds, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.bytes_out, 150);
        assert_eq!(snap.bytes_in, 230);
        assert_eq!(snap.total_ops(), 5);
    }

    #[test]
    fn snapshot_diff_and_merge() {
        let s = IoStats::new();
        s.record_read(10);
        let first = s.snapshot();
        s.record_read(10);
        s.record_write(5);
        let second = s.snapshot();
        let diff = second.since(&first);
        assert_eq!(diff.reads, 1);
        assert_eq!(diff.writes, 1);
        assert_eq!(diff.bytes_out, 10);
        let merged = first.merge(&diff);
        assert_eq!(merged, second);
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let s = Arc::new(IoStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().reads, 4000);
    }
}
