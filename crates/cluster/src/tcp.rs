//! Real-socket transport: [`TcpNodeServer`] hosts any [`NodeApi`] on a
//! TCP listener, and [`TcpTransport`] implements [`Transport`] over a
//! per-node connection pool speaking the [`wire`] format.
//!
//! The container this reproduction builds in is offline and carries no
//! async runtime, so everything here is blocking `std::net`: the server
//! runs an accept loop plus one thread per connection; the client runs
//! one *reader* thread per pooled connection feeding a shared dispatch
//! table, while callers write frames directly and park on a rendezvous
//! channel until their reply (matched by [`OpId`](crate::rpc::OpId) —
//! never by arrival
//! order) comes back. That shape is exactly the per-connection
//! reader / shared dispatcher split a nonblocking implementation would
//! have, minus the reactor.
//!
//! Failure surfacing keeps the vocabulary the protocol already speaks:
//!
//! * a node that cannot be reached after bounded reconnect-with-backoff
//!   answers [`NodeError::Down`];
//! * an exceeded round-trip budget answers [`NodeError::TimedOut`]
//!   (and, as everywhere else, the request *may still execute* — a
//!   timed-out write is a partial write, not a no-op);
//! * a connection dying mid-flight answers
//!   [`NodeError::TransportClosed`].
//!
//! Per-node inflight limits provide backpressure: once `max_inflight`
//! commands are outstanding against one node, further dispatches block
//! briefly (bounded by [`TcpConfig::overload_wait`]) and then shed the
//! request as [`NodeError::Overloaded`] — a typed signal that the
//! request was *never sent*, so the caller may retry elsewhere
//! immediately instead of waiting out the full round-trip budget.
//!
//! Reconnects back off exponentially with a cap and deterministic
//! per-peer jitter (seeded from the address, not a global RNG — two
//! transports to the same dead node desynchronise their retry storms
//! identically on every run), and every reconnect attempt beyond the
//! first draws on the shared [`NodeHealth`] retry budget: a dead node
//! cannot soak unbounded connect attempts while live traffic pays for
//! them.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use crate::health::NodeHealth;
use crate::node::NodeId;
use crate::rpc::{Envelope, Lane, NodeApi, NodeError, Reply, Response};
use crate::transport::{RoundReply, Transport};
use crate::wire::{self, Frame, Header, HEADER_LEN};

// ---------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------

/// Hosts one [`NodeApi`] on a TCP listener.
///
/// One thread accepts; each connection gets a serving thread that reads
/// request frames, executes them on the node, and writes reply frames
/// back on the same connection (replies stay in request order per
/// connection; concurrency comes from the client's connection pool).
/// Dropping the server stops the accept loop and closes every serving
/// connection.
pub struct TcpNodeServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpNodeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `node`.
    pub fn spawn(node: Arc<dyn NodeApi>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("tq-tcp-accept-{local_addr}"))
            .spawn(move || {
                accept_loop(listener, node, accept_shutdown);
            })?;
        Ok(TcpNodeServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for TcpNodeServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for TcpNodeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNodeServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn accept_loop(listener: TcpListener, node: Arc<dyn NodeApi>, shutdown: Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nodelay(true);
                let node = Arc::clone(&node);
                let conn_shutdown = Arc::clone(&shutdown);
                if let Ok(handle) = std::thread::Builder::new()
                    .name(format!("tq-tcp-serve-{peer}"))
                    .spawn(move || serve_connection(stream, node, conn_shutdown))
                {
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Reads exactly `buf.len()` bytes, polling `shutdown` between partial
/// reads. Returns `Ok(false)` on orderly EOF at a frame boundary or on
/// shutdown; `Err` on a mid-frame failure.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false) // peer closed between frames
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: re-check shutdown, keep reading
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn serve_connection(mut stream: TcpStream, node: Arc<dyn NodeApi>, shutdown: Arc<AtomicBool>) {
    // A short read timeout turns the blocking read into a poll loop so
    // the thread notices server shutdown promptly.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut header_buf = [0u8; HEADER_LEN];
    loop {
        match read_exact_polling(&mut stream, &mut header_buf, &shutdown) {
            Ok(true) => {}
            _ => return,
        }
        let Ok(header) = Header::decode(&header_buf) else {
            return; // framing lost (or a stranger speaking); drop the link
        };
        let mut body = vec![0u8; header.body_len as usize];
        match read_exact_polling(&mut stream, &mut body, &shutdown) {
            Ok(true) => {}
            _ => return,
        }
        let body = Bytes::from(body);
        let Ok(Frame::Envelope(env)) = wire::decode_body(&header, &body) else {
            return; // replies or garbage on the request path: drop the link
        };
        let reply = node.execute(env);
        if stream.write_all(&wire::encode_reply(&reply)).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

/// Tuning for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Round-trip budget per dispatch: connect + write + wait for the
    /// reply. Exceeding it surfaces [`NodeError::TimedOut`].
    pub io_timeout: Duration,
    /// Connections pooled per node (requests round-robin across them).
    pub pool_size: usize,
    /// Maximum commands outstanding against one node before dispatch
    /// blocks (backpressure).
    pub max_inflight: usize,
    /// Reconnect attempts per dispatch before the node is reported
    /// [`NodeError::Down`].
    pub connect_attempts: u32,
    /// First reconnect backoff; doubles per consecutive failure, capped
    /// at `backoff_max` and jittered ±50% (deterministically, per peer).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// How long a dispatch waits for inflight budget before shedding
    /// the request as [`NodeError::Overloaded`]. Kept well under the
    /// round-trip budget so overload surfaces as a fast typed error,
    /// not a slow timeout.
    pub overload_wait: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(2),
            pool_size: 2,
            max_inflight: 64,
            connect_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            overload_wait: Duration::from_millis(500),
        }
    }
}

/// SplitMix64 finalizer: the deterministic jitter source for reconnect
/// backoff — seeded from the peer address and failure count, so replays
/// of the same failure sequence jitter identically.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a parked caller gets back: the node's answer or the transport's
/// synthesised error.
type ReplyResult = Result<Response, NodeError>;

/// A live client connection: shared writer, reader thread, and the
/// dispatch table matching reply frames to parked callers by op id.
struct Conn {
    writer: Mutex<TcpStream>,
    /// op id → FIFO of waiters. A queue because an at-least-once caller
    /// may legally have the same op id in flight more than once.
    pending: Mutex<HashMap<u64, Vec<Sender<ReplyResult>>>>,
    alive: AtomicBool,
}

impl Conn {
    fn register(&self, op_id: u64) -> crossbeam::channel::Receiver<ReplyResult> {
        let (tx, rx) = bounded(1);
        self.pending.lock().entry(op_id).or_default().push(tx);
        rx
    }

    fn deregister(&self, op_id: u64) {
        let mut pending = self.pending.lock();
        if let Some(waiters) = pending.get_mut(&op_id) {
            waiters.pop();
            if waiters.is_empty() {
                pending.remove(&op_id);
            }
        }
    }

    fn complete(&self, op_id: u64, result: Result<Response, NodeError>) {
        let tx = {
            let mut pending = self.pending.lock();
            match pending.get_mut(&op_id) {
                Some(waiters) if !waiters.is_empty() => {
                    let tx = waiters.remove(0);
                    if waiters.is_empty() {
                        pending.remove(&op_id);
                    }
                    Some(tx)
                }
                // A reply nobody waits for: a straggler whose caller
                // already timed out. Drop it; identity matching means it
                // cannot be miscounted against another command.
                _ => None,
            }
        };
        if let Some(tx) = tx {
            let _ = tx.send(result);
        }
    }

    /// Marks the connection dead and fails every parked caller.
    fn poison(&self) {
        self.alive.store(false, Ordering::Release);
        let drained: Vec<_> = self.pending.lock().drain().collect();
        for (_, waiters) in drained {
            for tx in waiters {
                let _ = tx.send(Err(NodeError::TransportClosed));
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    let mut header_buf = [0u8; HEADER_LEN];
    loop {
        let ok = (|| -> std::io::Result<()> {
            stream.read_exact(&mut header_buf)?;
            let header = Header::decode(&header_buf)
                .map_err(|_| std::io::Error::from(std::io::ErrorKind::InvalidData))?;
            let mut body = vec![0u8; header.body_len as usize];
            stream.read_exact(&mut body)?;
            let body = Bytes::from(body);
            match wire::decode_body(&header, &body) {
                Ok(Frame::Reply(reply)) => {
                    conn.complete(reply.op_id.0, reply.result);
                    Ok(())
                }
                // Requests on the reply path, or an undecodable body:
                // the stream cannot be trusted any more.
                _ => Err(std::io::ErrorKind::InvalidData.into()),
            }
        })();
        if ok.is_err() {
            conn.poison();
            return;
        }
    }
}

/// One pooled connection slot with its reconnect backoff state.
struct Slot {
    conn: Option<Arc<Conn>>,
    consecutive_failures: u32,
    next_attempt: Instant,
}

/// Everything the transport knows about one node.
struct Peer {
    addr: SocketAddr,
    slots: Vec<Mutex<Slot>>,
    rr: AtomicUsize,
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
}

/// Releases one unit of a peer's inflight budget on drop, so every
/// dispatch return path (reply, timeout, failure) gives it back.
struct InflightPermit<'a> {
    peer: &'a Peer,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        let mut count = self.peer.inflight.lock();
        *count -= 1;
        self.peer.inflight_cv.notify_one();
    }
}

struct TcpInner {
    peers: Vec<Peer>,
    cfg: TcpConfig,
    /// Real-scale health registry: RTT samples land here per dispatch,
    /// reconnect retries draw on its budget, and the quorum engine feeds
    /// outcomes through [`Transport::health`].
    health: Arc<NodeHealth>,
    /// Wall-clock anchor for the health registry's monotone nanosecond
    /// clock.
    started: Instant,
}

/// [`Transport`] over real TCP connections, one pool per node.
///
/// Cloning is cheap (shared inner); drop closes the pooled connections.
/// Connections are established lazily on first dispatch and re-created
/// with exponential backoff after failures.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("nodes", &self.inner.peers.len())
            .finish()
    }
}

impl TcpTransport {
    /// Builds a transport reaching `addrs[i]` as node `i`, with default
    /// tuning.
    pub fn connect(addrs: Vec<SocketAddr>) -> Self {
        Self::with_config(addrs, TcpConfig::default())
    }

    /// Builds a transport with explicit tuning.
    pub fn with_config(addrs: Vec<SocketAddr>, cfg: TcpConfig) -> Self {
        let now = Instant::now();
        let peers = addrs
            .into_iter()
            .map(|addr| Peer {
                addr,
                slots: (0..cfg.pool_size.max(1))
                    .map(|_| {
                        Mutex::new(Slot {
                            conn: None,
                            consecutive_failures: 0,
                            next_attempt: now,
                        })
                    })
                    .collect(),
                rr: AtomicUsize::new(0),
                inflight: Mutex::new(0),
                inflight_cv: Condvar::new(),
            })
            .collect();
        TcpTransport {
            inner: Arc::new(TcpInner {
                peers,
                cfg,
                health: Arc::new(NodeHealth::real_scale()),
                started: now,
            }),
        }
    }

    /// The health registry behind this transport — arm a hedge policy
    /// for adaptive per-node deadlines, inspect snapshots, or share the
    /// retry budget with other clients of the same cluster.
    pub fn health_registry(&self) -> &Arc<NodeHealth> {
        &self.inner.health
    }
}

impl TcpInner {
    /// Blocks until the peer has inflight budget, bounded by `deadline`.
    fn acquire_inflight<'a>(
        &self,
        peer: &'a Peer,
        deadline: Instant,
    ) -> Option<InflightPermit<'a>> {
        let mut count = peer.inflight.lock();
        while *count >= self.cfg.max_inflight {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if peer.inflight_cv.wait_for(&mut count, deadline - now)
                && *count >= self.cfg.max_inflight
            {
                return None;
            }
        }
        *count += 1;
        Some(InflightPermit { peer })
    }

    /// Gets (or re-establishes, with capped jittered backoff) a live
    /// connection for `peer`. `None` means the node is unreachable
    /// within the attempt budget / deadline. Every attempt beyond the
    /// first must be paid for out of the retry budget (`lane`-aware:
    /// background reconnects leave the foreground reserve untouched).
    fn get_conn(&self, peer: &Peer, deadline: Instant, lane: Lane) -> Option<Arc<Conn>> {
        let slot_index = peer.rr.fetch_add(1, Ordering::Relaxed) % peer.slots.len();
        let mut slot = peer.slots[slot_index].lock();
        if let Some(conn) = &slot.conn {
            if conn.alive.load(Ordering::Acquire) {
                return Some(Arc::clone(conn));
            }
            slot.conn = None;
        }
        for attempt in 0..self.cfg.connect_attempts {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // tq-lint: allow(bounded-retry) -- the budget consult IS here:
            // first attempt free, every re-attempt spends a token.
            if attempt > 0 && !self.health.try_spend(lane) {
                return None;
            }
            // Honour the backoff window from previous failures.
            if slot.next_attempt > now {
                let wait = (slot.next_attempt - now).min(deadline - now);
                std::thread::sleep(wait);
                if Instant::now() >= deadline {
                    return None;
                }
            }
            let budget = self.cfg.connect_timeout.min(deadline - Instant::now());
            match TcpStream::connect_timeout(&peer.addr, budget.max(Duration::from_millis(1))) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
                    let reader_stream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let conn = Arc::new(Conn {
                        writer: Mutex::new(stream),
                        pending: Mutex::new(HashMap::new()),
                        alive: AtomicBool::new(true),
                    });
                    let reader_conn = Arc::clone(&conn);
                    if std::thread::Builder::new()
                        .name(format!("tq-tcp-read-{}", peer.addr))
                        .spawn(move || reader_loop(reader_stream, reader_conn))
                        .is_err()
                    {
                        continue;
                    }
                    slot.consecutive_failures = 0;
                    slot.conn = Some(Arc::clone(&conn));
                    return Some(conn);
                }
                Err(_) => {
                    slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                    let shift = slot.consecutive_failures.min(6);
                    let backoff = self
                        .cfg
                        .backoff_base
                        .saturating_mul(1u32 << shift.saturating_sub(1))
                        .min(self.cfg.backoff_max);
                    // Deterministic ±50% jitter so many slots/processes
                    // hammering one dead node spread out instead of
                    // synchronising their retry storms.
                    let seed = (u64::from(peer.addr.port()) << 32)
                        ^ u64::from(slot.consecutive_failures)
                        ^ (slot_index as u64) << 16;
                    let permille = 500 + splitmix64(seed) % 1001; // [0.5, 1.5]×
                    let jittered = Duration::from_nanos(
                        (backoff.as_nanos() as u64).saturating_mul(permille) / 1000,
                    );
                    slot.next_attempt = Instant::now() + jittered;
                }
            }
        }
        None
    }

    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        let (op_id, round_epoch) = (env.op_id, env.round_epoch);
        let fail = |e: NodeError| Reply {
            op_id,
            round_epoch,
            result: Err(e),
        };
        let Some(peer) = self.peers.get(node.0) else {
            return fail(NodeError::TransportClosed);
        };
        let issued = Instant::now();
        self.health
            .advance_now(issued.duration_since(self.started).as_nanos() as u64);
        // Adaptive round-trip budget: with a hedge policy armed, the
        // per-node estimate (never looser than the configured budget)
        // governs the deadline; fixed io_timeout otherwise.
        let budget = if self.health.hedging_enabled() {
            self.health
                .timeout_for(node.0)
                .map_or(self.cfg.io_timeout, |ns| {
                    Duration::from_nanos(ns).min(self.cfg.io_timeout)
                })
        } else {
            self.cfg.io_timeout
        };
        let deadline = issued + budget;

        // Backpressure first: a node already saturated with our own
        // inflight commands should not accumulate more. Shedding is
        // typed — Overloaded means "never sent", so the caller may
        // re-route immediately.
        let overload_deadline = deadline.min(issued + self.cfg.overload_wait);
        let Some(_permit) = self.acquire_inflight(peer, overload_deadline) else {
            return fail(NodeError::Overloaded);
        };

        let Some(conn) = self.get_conn(peer, deadline, env.lane) else {
            // Unreachable within the bounded reconnect budget: for the
            // protocol that is a down node, unless the clock ran out
            // while we were still trying.
            return if Instant::now() >= deadline {
                fail(NodeError::TimedOut)
            } else {
                fail(NodeError::Down)
            };
        };

        let frame = wire::encode_envelope(&env);
        let rx = conn.register(op_id.0);
        {
            let mut writer = conn.writer.lock();
            if writer.write_all(&frame).is_err() {
                drop(writer);
                conn.deregister(op_id.0);
                conn.poison();
                return fail(NodeError::TransportClosed);
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            // Rebuild the reply around *our* envelope identity: even a
            // buggy peer cannot make us mislabel an answer.
            Ok(result) => {
                if result.is_ok() {
                    // RTT sample for the estimator; outcomes are fed
                    // once, by the quorum engine.
                    let rtt = issued.elapsed().as_nanos() as u64;
                    self.health.record_sample(node.0, rtt.max(1));
                }
                Reply {
                    op_id,
                    round_epoch,
                    result,
                }
            }
            Err(_) => {
                conn.deregister(op_id.0);
                fail(NodeError::TimedOut)
            }
        }
    }
}

impl Drop for TcpInner {
    fn drop(&mut self) {
        for peer in &self.peers {
            for slot in &peer.slots {
                if let Some(conn) = slot.lock().conn.take() {
                    // Wake the reader thread so it exits.
                    let _ = conn.writer.lock().shutdown(std::net::Shutdown::Both);
                    conn.poison();
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn node_count(&self) -> usize {
        self.inner.peers.len()
    }

    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        self.inner.dispatch(node, env)
    }

    fn health(&self) -> Option<&NodeHealth> {
        Some(&self.inner.health)
    }

    /// Concurrent fan-out: every call is written immediately (one
    /// dispatcher thread per call) and completions stream to the sink in
    /// arrival order. Abandoning the round only stops waiting — like any
    /// real fabric, requests already written will still execute.
    fn multicall(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        let total = calls.len();
        if total == 0 {
            return;
        }
        let (tx, rx) = unbounded::<RoundReply>();
        for (node, env) in calls {
            let inner = Arc::clone(&self.inner);
            let thread_tx = tx.clone();
            let (op_id, round_epoch) = (env.op_id, env.round_epoch);
            let spawned = std::thread::Builder::new()
                .name("tq-tcp-multicall".into())
                .spawn(move || {
                    let reply = inner.dispatch(node, env);
                    let _ = thread_tx.send(RoundReply::from_reply(node, reply));
                });
            if spawned.is_err() {
                // Could not even spawn the dispatcher: fail this call
                // in-band so the round still sees `total` completions.
                let _ = tx.send(RoundReply {
                    op_id,
                    round_epoch,
                    node,
                    result: Err(NodeError::TransportClosed),
                });
            }
        }
        drop(tx);
        let mut received = 0;
        while received < total {
            let Ok(reply) = rx.recv() else { break };
            received += 1;
            if !sink(reply) {
                break; // stragglers complete on their own threads
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::node::StorageNode;
    use crate::rpc::Request;
    use crate::storage::MemoryBackend;

    fn serve_cluster(n: usize) -> (Cluster, Vec<TcpNodeServer>, Vec<SocketAddr>) {
        let cluster = Cluster::new(n);
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..n {
            let node: Arc<dyn NodeApi> = Arc::clone(cluster.node(i)) as Arc<dyn NodeApi>;
            let server = TcpNodeServer::spawn(node, "127.0.0.1:0").expect("bind loopback");
            addrs.push(server.local_addr());
            servers.push(server);
        }
        (cluster, servers, addrs)
    }

    #[test]
    fn tcp_roundtrip_basics() {
        let (_cluster, _servers, addrs) = serve_cluster(3);
        let t = TcpTransport::connect(addrs);
        assert_eq!(t.node_count(), 3);
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"abc"),
            },
        )
        .unwrap();
        match t.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"abc");
                assert_eq!(version, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            t.call(NodeId(1), Request::ReadData { id: 1 }),
            Err(NodeError::NotFound)
        );
    }

    #[test]
    fn tcp_dispatch_echoes_envelope_identity() {
        let (_cluster, _servers, addrs) = serve_cluster(1);
        let t = TcpTransport::connect(addrs);
        let env = Envelope::in_epoch(Request::Ping, 11);
        let (op_id, epoch) = (env.op_id, env.round_epoch);
        let reply = t.dispatch(NodeId(0), env);
        assert_eq!(reply.op_id, op_id);
        assert_eq!(reply.round_epoch, epoch);
        assert_eq!(reply.result, Ok(Response::Pong));
    }

    #[test]
    fn tcp_surfaces_fail_stop_and_unreachable_nodes() {
        let (cluster, servers, mut addrs) = serve_cluster(2);
        // Node 1's address exists but nothing listens: grab a port and
        // free it.
        let throwaway = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs[1] = throwaway.local_addr().unwrap();
        drop(throwaway);

        let t = TcpTransport::with_config(
            addrs,
            TcpConfig {
                io_timeout: Duration::from_millis(1500),
                connect_attempts: 2,
                backoff_base: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        );
        // Fail-stop flows through end to end.
        cluster.kill(0);
        assert_eq!(t.call(NodeId(0), Request::Ping), Err(NodeError::Down));
        cluster.revive(0);
        assert_eq!(t.call(NodeId(0), Request::Ping), Ok(Response::Pong));
        // Unreachable node: bounded backoff, then Down.
        assert_eq!(t.call(NodeId(1), Request::Ping), Err(NodeError::Down));
        drop(servers);
    }

    #[test]
    fn tcp_reconnects_after_server_restart() {
        let cluster = Cluster::new(1);
        let node: Arc<dyn NodeApi> = Arc::clone(cluster.node(0)) as Arc<dyn NodeApi>;
        let server = TcpNodeServer::spawn(Arc::clone(&node), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let t = TcpTransport::with_config(
            vec![addr],
            TcpConfig {
                backoff_base: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        );
        assert_eq!(t.call(NodeId(0), Request::Ping), Ok(Response::Pong));

        drop(server);
        // The old connection dies; dispatches fail while nothing listens.
        let during_outage = t.call(NodeId(0), Request::Ping);
        assert!(during_outage.is_err(), "{during_outage:?}");

        // Restart on the same port and the pool reconnects by itself.
        let _server = TcpNodeServer::spawn(node, addr).unwrap();
        let mut revived = false;
        for _ in 0..20 {
            if t.call(NodeId(0), Request::Ping) == Ok(Response::Pong) {
                revived = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(revived, "transport must reconnect with backoff");
    }

    #[test]
    fn tcp_round_trip_budget_surfaces_timed_out() {
        // A listener that accepts and then never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let mut held = Vec::new();
            listener
                .set_nonblocking(false)
                .expect("blocking accept for the black-hole listener");
            for _ in 0..1 {
                if let Ok((s, _)) = listener.accept() {
                    held.push(s);
                }
            }
            std::thread::sleep(Duration::from_millis(800));
            drop(held);
        });
        let t = TcpTransport::with_config(
            vec![addr],
            TcpConfig {
                io_timeout: Duration::from_millis(200),
                ..TcpConfig::default()
            },
        );
        assert_eq!(t.call(NodeId(0), Request::Ping), Err(NodeError::TimedOut));
        hold.join().unwrap();
    }

    #[test]
    fn tcp_multicall_fans_out_and_abandons_early() {
        let (_cluster, _servers, addrs) = serve_cluster(4);
        let t = TcpTransport::connect(addrs);
        let calls: Vec<(NodeId, Envelope)> = (0..4)
            .map(|i| (NodeId(i), Envelope::new(Request::Ping)))
            .collect();
        let mut seen = 0;
        t.multicall(calls, &mut |reply| {
            assert_eq!(reply.result, Ok(Response::Pong));
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2, "early abandon stops the wait");
    }

    #[test]
    fn tcp_inflight_limit_applies_backpressure_not_deadlock() {
        let node = Arc::new(
            StorageNode::builder(NodeId(0))
                .backend(Arc::new(MemoryBackend::new()))
                .build(),
        );
        let server = TcpNodeServer::spawn(node as Arc<dyn NodeApi>, "127.0.0.1:0").unwrap();
        let t = TcpTransport::with_config(
            vec![server.local_addr()],
            TcpConfig {
                max_inflight: 2,
                pool_size: 1,
                ..TcpConfig::default()
            },
        );
        // Many concurrent pings against a 2-slot window: all succeed,
        // the extras just wait their turn.
        let t = Arc::new(t);
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.call(NodeId(0), Request::Ping))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Ok(Response::Pong));
        }
    }

    #[test]
    fn tcp_pool_exhaustion_sheds_typed_overloaded() {
        // A listener that accepts and never answers: the first dispatch
        // occupies the single inflight slot for its whole budget, so a
        // second dispatch must be shed — quickly, and as Overloaded,
        // not as a slow TimedOut.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let mut held = Vec::new();
            listener.set_nonblocking(false).unwrap();
            if let Ok((s, _)) = listener.accept() {
                held.push(s);
            }
            std::thread::sleep(Duration::from_millis(900));
            drop(held);
        });
        let t = Arc::new(TcpTransport::with_config(
            vec![addr],
            TcpConfig {
                max_inflight: 1,
                pool_size: 1,
                io_timeout: Duration::from_millis(600),
                overload_wait: Duration::from_millis(30),
                ..TcpConfig::default()
            },
        ));
        let blocker = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.call(NodeId(0), Request::Ping))
        };
        // Let the blocker occupy the inflight window first.
        std::thread::sleep(Duration::from_millis(100));
        let started = Instant::now();
        let shed = t.call(NodeId(0), Request::Ping);
        assert_eq!(shed, Err(NodeError::Overloaded));
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "shedding is fast, not a timeout: {:?}",
            started.elapsed()
        );
        assert_eq!(blocker.join().unwrap(), Err(NodeError::TimedOut));
        hold.join().unwrap();
    }

    #[test]
    fn tcp_reconnect_retries_draw_on_the_budget() {
        // Nothing listens: every connect attempt fails. The first
        // attempt per dispatch is free; each further attempt spends a
        // retry token, so a generous attempt count cannot burn more
        // than the budget holds.
        let throwaway = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = throwaway.local_addr().unwrap();
        drop(throwaway);
        let t = TcpTransport::with_config(
            vec![addr],
            TcpConfig {
                connect_attempts: 10,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        );
        assert_eq!(t.call(NodeId(0), Request::Ping), Err(NodeError::Down));
        let spent_once = t.health_registry().hedge_counters().retries;
        assert!(
            (1..10).contains(&spent_once),
            "retries are budget-bounded below the attempt count: {spent_once}"
        );
        // Budget exhausted: further dispatches stop at the free attempt.
        assert_eq!(t.call(NodeId(0), Request::Ping), Err(NodeError::Down));
        assert_eq!(t.call(NodeId(0), Request::Ping), Err(NodeError::Down));
        let spent_after = t.health_registry().hedge_counters().retries;
        assert_eq!(
            spent_after, spent_once,
            "an empty budget stops paid reconnect attempts"
        );
    }

    #[test]
    fn tcp_payloads_survive_the_wire_byte_exact() {
        let (_cluster, _servers, addrs) = serve_cluster(1);
        let t = TcpTransport::connect(addrs);
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        t.call(
            NodeId(0),
            Request::InitData {
                id: 77,
                bytes: Bytes::from(payload.clone()),
            },
        )
        .unwrap();
        match t.call(NodeId(0), Request::ReadData { id: 77 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(bytes.to_vec(), payload);
                assert_eq!(version, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
