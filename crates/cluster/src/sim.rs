//! Deterministic simulation transport: virtual time, adversarial links.
//!
//! The other transports realise the paper's §IV model faithfully —
//! perfect links, fail-stop nodes. Real deployments are hostile in ways
//! that model never probes: messages are delayed, lost, duplicated and
//! reordered; partitions cut one direction of a link but not the other;
//! nodes crash mid-round and come back with (or without) their disks.
//! [`SimTransport`] is a FoundationDB-style deterministic simulation of
//! exactly that hostility:
//!
//! * **Virtual time.** No wall clock and no threads: a seeded
//!   event-scheduler loop pops `(time, seq)`-ordered events off a heap.
//!   The same seed replays the same schedule bit-for-bit, on any
//!   machine, under any test runner.
//! * **Programmable network.** A [`NetworkModel`] gives every message an
//!   independently sampled link delay (with optional per-link override),
//!   a loss probability per *direction* (a lost reply is a write that
//!   landed but looks failed — the classic partial-write hazard), a
//!   duplication probability (at-least-once delivery: the duplicate
//!   executes on the node again), and a round-trip `timeout` after which
//!   the caller sees [`NodeError::TimedOut`].
//! * **Faults in virtual time.** [`SimFault`]s can be applied
//!   immediately or scheduled at an absolute virtual instant, so a crash
//!   can land *between two replies of the same round*. Crashes are
//!   durable (state kept, the paper's fail-stop) or volatile (disk lost:
//!   the node answers `NotFound` after restart until anti-entropy
//!   reinstalls it). Partitions block the request or the reply direction
//!   of a set of links, independently.
//!
//! One boundary is deliberate: a request still in flight when its round
//! ends (timeout fired, or a first-quorum round stopped waiting) is
//! *dropped*, not delivered later. Cross-round redelivery would model a
//! fabric that retries writes behind the protocol's back — the storage
//! nodes have no per-write version guard against that, and neither do
//! the paper's algorithms (they assume a link either delivers promptly
//! or fails). Within a round, loss/duplication/reordering are fully
//! adversarial; a request whose reply was lost has still executed.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Cluster;
use crate::node::NodeId;
use crate::rpc::{NodeError, Request, Response};
use crate::transport::{RoundReply, Transport};

/// Link behaviour knobs, all per-message and independently sampled.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Minimum one-way delay, in virtual nanoseconds.
    pub min_delay: u64,
    /// Maximum one-way delay (inclusive). Widening `[min, max]` is the
    /// reordering knob: independent draws land replies out of issue
    /// order.
    pub max_delay: u64,
    /// Probability that a message (request or reply, each direction
    /// rolled separately) is lost.
    pub loss: f64,
    /// Probability that a delivered request is delivered *again* at an
    /// independently sampled time (at-least-once fabric).
    pub duplicate: f64,
    /// Round-trip budget per call: with no reply by `issue + timeout`
    /// the caller sees [`NodeError::TimedOut`].
    pub timeout: u64,
    /// Keep each link FIFO (per direction, per node): a later message on
    /// the same link never overtakes an earlier one. Reordering across
    /// *different* links is unaffected. Off = fully adversarial
    /// per-message order even within a link.
    pub fifo_links: bool,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::reliable()
    }
}

impl NetworkModel {
    /// Perfect links with mild symmetric jitter — the §IV model plus a
    /// clock.
    pub fn reliable() -> Self {
        NetworkModel {
            min_delay: 50,
            max_delay: 150,
            loss: 0.0,
            duplicate: 0.0,
            timeout: 100_000,
            fifo_links: true,
        }
    }

    /// Lossy, duplicating, widely-jittered links: the adversarial
    /// default of the DST scenarios.
    pub fn hostile(loss: f64, duplicate: f64) -> Self {
        NetworkModel {
            min_delay: 10,
            max_delay: 5_000,
            loss,
            duplicate,
            timeout: 50_000,
            fifo_links: false,
        }
    }
}

/// One network/node fault, applied immediately or scheduled in virtual
/// time via [`SimTransport::schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimFault {
    /// Fail-stop the node. `durable: true` keeps its disk (the paper's
    /// model — it revives stale); `durable: false` loses it (the node
    /// revives empty and answers `NotFound` until repaired).
    Crash {
        /// Which node.
        node: usize,
        /// Whether the stored stripe state survives the crash.
        durable: bool,
    },
    /// Bring the node back up (state as the crash left it).
    Restart {
        /// Which node.
        node: usize,
    },
    /// Block the *request* direction of the links to these nodes.
    PartitionRequests {
        /// Unreachable nodes.
        nodes: Vec<usize>,
    },
    /// Block the *reply* direction of the links from these nodes
    /// (asymmetric partition: their writes land, their acks do not).
    PartitionReplies {
        /// Muted nodes.
        nodes: Vec<usize>,
    },
    /// Clear every partition in both directions.
    HealPartitions,
    /// Replace the loss probability.
    SetLoss(f64),
    /// Replace the duplication probability.
    SetDuplication(f64),
    /// Replace the global delay band.
    SetDelay {
        /// New minimum one-way delay.
        min: u64,
        /// New maximum one-way delay.
        max: u64,
    },
}

/// Counters the scheduler keeps; deterministic per seed, so tests can
/// assert on them to prove two runs took the same schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Fan-out rounds served.
    pub rounds: u64,
    /// Requests handed to the network.
    pub requests: u64,
    /// Replies delivered to callers.
    pub delivered: u64,
    /// Requests lost (sampled loss or request-partition).
    pub requests_dropped: u64,
    /// Replies lost (sampled loss or reply-partition).
    pub replies_dropped: u64,
    /// Duplicate request deliveries that executed.
    pub duplicates: u64,
    /// Calls completed by the timeout instead of a reply.
    pub timeouts: u64,
    /// Faults applied (scheduled and immediate).
    pub faults: u64,
}

/// What travels through the event heap.
#[derive(Debug)]
enum EventKind {
    /// A request reaches its node (and executes there).
    ReqArrive {
        index: usize,
        node: NodeId,
        req: Request,
        deadline: u64,
        duplicate: bool,
    },
    /// A reply reaches the caller.
    ReplyArrive {
        index: usize,
        node: NodeId,
        result: Result<Response, NodeError>,
    },
    /// The round-trip budget for a call elapses.
    Timeout { index: usize, node: NodeId },
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    /// Min-heap order on `(time, seq)` through `BinaryHeap`'s max-heap:
    /// earliest time first, issue order breaking ties — a total,
    /// deterministic order.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A fault bound to a virtual instant.
#[derive(Debug)]
struct PlannedFault {
    time: u64,
    seq: u64,
    fault: SimFault,
}

/// Mutable scheduler state behind the transport's `&self` surface.
#[derive(Debug)]
struct SimState {
    now: u64,
    seq: u64,
    rng: StdRng,
    model: NetworkModel,
    /// Per-node one-way delay override `(min, max)`; `None` uses the
    /// model band. Applies to both directions of the link.
    link_delay: Vec<Option<(u64, u64)>>,
    /// Request direction blocked towards node `i`.
    req_blocked: Vec<bool>,
    /// Reply direction blocked from node `i`.
    reply_blocked: Vec<bool>,
    /// Pending scheduled faults (unsorted; drained by time).
    plan: Vec<PlannedFault>,
    /// Last delivery instant per link direction, for FIFO enforcement.
    req_last: Vec<u64>,
    reply_last: Vec<u64>,
    stats: SimStats,
}

impl SimState {
    fn sample_delay(&mut self, node: usize) -> u64 {
        let (lo, hi) =
            self.link_delay[node].unwrap_or((self.model.min_delay, self.model.max_delay));
        let hi = hi.max(lo);
        self.rng.random_range(lo..=hi)
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random_bool(p)
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// FIFO clamp: delivery on a link never precedes an earlier message
    /// of the same link/direction.
    fn fifo(&mut self, last: u64, at: u64) -> u64 {
        if self.model.fifo_links && at <= last {
            last + 1
        } else {
            at
        }
    }

    fn apply_fault(&mut self, cluster: &Cluster, fault: &SimFault) {
        self.stats.faults += 1;
        match fault {
            SimFault::Crash { node, durable } => {
                if !durable {
                    cluster.node(*node).wipe();
                }
                cluster.kill(*node);
            }
            SimFault::Restart { node } => cluster.revive(*node),
            SimFault::PartitionRequests { nodes } => {
                for &n in nodes {
                    self.req_blocked[n] = true;
                }
            }
            SimFault::PartitionReplies { nodes } => {
                for &n in nodes {
                    self.reply_blocked[n] = true;
                }
            }
            SimFault::HealPartitions => {
                self.req_blocked.iter_mut().for_each(|b| *b = false);
                self.reply_blocked.iter_mut().for_each(|b| *b = false);
            }
            SimFault::SetLoss(p) => self.model.loss = *p,
            SimFault::SetDuplication(p) => self.model.duplicate = *p,
            SimFault::SetDelay { min, max } => {
                self.model.min_delay = *min;
                self.model.max_delay = *max;
            }
        }
    }

    /// Applies every scheduled fault with `time <= t`, in `(time, seq)`
    /// order.
    fn run_faults_until(&mut self, cluster: &Cluster, t: u64) {
        loop {
            let mut due: Option<usize> = None;
            for (i, pf) in self.plan.iter().enumerate() {
                if pf.time <= t
                    && due.is_none_or(|j| (pf.time, pf.seq) < (self.plan[j].time, self.plan[j].seq))
                {
                    due = Some(i);
                }
            }
            let Some(i) = due else { break };
            let pf = self.plan.swap_remove(i);
            self.apply_fault(cluster, &pf.fault);
        }
    }
}

/// The deterministic simulation transport. See the [module docs](self).
///
/// All mutation goes through a single internal lock, and the event loop
/// runs on the caller's thread: the simulation is effectively
/// single-threaded even if the handle is shared, which is what makes
/// replays exact.
pub struct SimTransport {
    cluster: Cluster,
    state: Mutex<SimState>,
}

impl SimTransport {
    /// A simulation over `cluster` with the default (reliable) model.
    pub fn new(cluster: Cluster, seed: u64) -> Self {
        Self::with_model(cluster, seed, NetworkModel::default())
    }

    /// A simulation with an explicit network model.
    pub fn with_model(cluster: Cluster, seed: u64, model: NetworkModel) -> Self {
        let n = cluster.len();
        SimTransport {
            cluster,
            state: Mutex::new(SimState {
                now: 0,
                seq: 0,
                rng: StdRng::seed_from_u64(seed),
                model,
                link_delay: vec![None; n],
                req_blocked: vec![false; n],
                reply_blocked: vec![false; n],
                plan: Vec::new(),
                req_last: vec![0; n],
                reply_last: vec![0; n],
                stats: SimStats::default(),
            }),
        }
    }

    /// Borrow the underlying cluster (state inspection, accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current virtual instant.
    pub fn now(&self) -> u64 {
        self.state.lock().now
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> SimStats {
        self.state.lock().stats
    }

    /// A copy of the current network model.
    pub fn model(&self) -> NetworkModel {
        self.state.lock().model.clone()
    }

    /// Replaces the network model (delay band, loss, duplication,
    /// timeout, FIFO discipline) from now on.
    pub fn set_model(&self, model: NetworkModel) {
        self.state.lock().model = model;
    }

    /// Overrides the one-way delay band of node `i`'s link (both
    /// directions); `None` restores the model band.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_link_delay(&self, i: usize, band: Option<(u64, u64)>) {
        self.state.lock().link_delay[i] = band;
    }

    /// Applies a fault right now.
    pub fn apply(&self, fault: SimFault) {
        let mut st = self.state.lock();
        st.apply_fault(&self.cluster, &fault);
    }

    /// Schedules a fault at absolute virtual time `at` (clamped to the
    /// present if already past). It fires when the event loop or
    /// [`advance_to`](Self::advance_to) reaches that instant — including
    /// *between two replies of one round*.
    pub fn schedule(&self, at: u64, fault: SimFault) {
        let mut st = self.state.lock();
        let seq = st.next_seq();
        st.plan.push(PlannedFault {
            time: at,
            seq,
            fault,
        });
    }

    /// Advances virtual time to `t`, firing scheduled faults on the way
    /// (no-op if `t` is in the past).
    pub fn advance_to(&self, t: u64) {
        let mut st = self.state.lock();
        st.run_faults_until(&self.cluster, t);
        st.now = st.now.max(t);
    }

    /// Advances virtual time by `dt`.
    pub fn advance(&self, dt: u64) {
        let now = self.now();
        self.advance_to(now.saturating_add(dt));
    }

    /// Earliest pending scheduled-fault instant, if any — drive time past
    /// it with [`advance_to`](Self::advance_to) to quiesce the plan.
    pub fn next_planned_fault(&self) -> Option<u64> {
        self.state.lock().plan.iter().map(|p| p.time).min()
    }

    /// Shared event loop: runs one fan-out until every call completed or
    /// the sink abandoned the round. Undelivered messages die with the
    /// round (see the module docs for why).
    fn run_round(&self, calls: Vec<(NodeId, Request)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        let total = calls.len();
        if total == 0 {
            return;
        }
        let mut st = self.state.lock();
        st.stats.rounds += 1;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut completed = vec![false; total];
        let mut done = 0usize;

        for (index, (node, req)) in calls.into_iter().enumerate() {
            assert!(node.0 < self.cluster.len(), "node {node} out of range");
            st.stats.requests += 1;
            let deadline = st.now + st.model.timeout;
            let seq = st.next_seq();
            heap.push(Event {
                time: deadline,
                seq,
                kind: EventKind::Timeout { index, node },
            });
            let loss = st.model.loss;
            if st.req_blocked[node.0] || st.roll(loss) {
                st.stats.requests_dropped += 1;
                continue;
            }
            let delay = st.sample_delay(node.0);
            let last = st.req_last[node.0];
            let issue = st.now + delay;
            let at = st.fifo(last, issue);
            st.req_last[node.0] = at;
            let seq = st.next_seq();
            heap.push(Event {
                time: at,
                seq,
                kind: EventKind::ReqArrive {
                    index,
                    node,
                    req: req.clone(),
                    deadline,
                    duplicate: false,
                },
            });
            let dup = st.model.duplicate;
            if st.roll(dup) {
                let delay = st.sample_delay(node.0);
                let last = st.req_last[node.0];
                let issue = st.now + delay;
                let at = st.fifo(last, issue);
                st.req_last[node.0] = at;
                let seq = st.next_seq();
                heap.push(Event {
                    time: at,
                    seq,
                    kind: EventKind::ReqArrive {
                        index,
                        node,
                        req,
                        deadline,
                        duplicate: true,
                    },
                });
            }
        }

        while done < total {
            let Some(ev) = heap.pop() else {
                // Unreachable: every index owns a Timeout event. Kept as
                // a graceful exit rather than a hang if it ever breaks.
                break;
            };
            st.run_faults_until(&self.cluster, ev.time);
            st.now = st.now.max(ev.time);
            match ev.kind {
                EventKind::ReqArrive {
                    index,
                    node,
                    req,
                    deadline,
                    duplicate,
                } => {
                    // The node executes the request at arrival time even
                    // if the caller has already given up on this index —
                    // side effects of unawaited messages are the point.
                    let result = self.cluster.node(node.0).handle(req);
                    if duplicate {
                        st.stats.duplicates += 1;
                    }
                    if completed[index] {
                        continue;
                    }
                    let loss = st.model.loss;
                    if st.reply_blocked[node.0] || st.roll(loss) {
                        st.stats.replies_dropped += 1;
                        continue; // the Timeout event will complete it
                    }
                    let delay = st.sample_delay(node.0);
                    let last = st.reply_last[node.0];
                    let issue = st.now + delay;
                    let at = st.fifo(last, issue);
                    st.reply_last[node.0] = at;
                    if at > deadline {
                        continue; // arrives after the caller stopped waiting
                    }
                    let seq = st.next_seq();
                    heap.push(Event {
                        time: at,
                        seq,
                        kind: EventKind::ReplyArrive {
                            index,
                            node,
                            result,
                        },
                    });
                }
                EventKind::ReplyArrive {
                    index,
                    node,
                    result,
                } => {
                    if completed[index] {
                        continue;
                    }
                    completed[index] = true;
                    done += 1;
                    st.stats.delivered += 1;
                    if !sink(RoundReply {
                        index,
                        node,
                        result,
                    }) {
                        break;
                    }
                }
                EventKind::Timeout { index, node } => {
                    if completed[index] {
                        continue;
                    }
                    completed[index] = true;
                    done += 1;
                    st.stats.timeouts += 1;
                    if !sink(RoundReply {
                        index,
                        node,
                        result: Err(NodeError::TimedOut),
                    }) {
                        break;
                    }
                }
            }
        }
        // Remaining heap events (stragglers of an abandoned round, or
        // late duplicates) are dropped with the round.
    }
}

impl Transport for SimTransport {
    fn node_count(&self) -> usize {
        self.cluster.len()
    }

    fn call(&self, node: NodeId, req: Request) -> Result<Response, NodeError> {
        let mut result = Err(NodeError::TimedOut);
        self.run_round(vec![(node, req)], &mut |reply| {
            result = reply.result;
            false
        });
        result
    }

    fn multicall(&self, calls: Vec<(NodeId, Request)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        self.run_round(calls, sink);
    }
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SimTransport")
            .field("nodes", &self.cluster.len())
            .field("now", &st.now)
            .field("stats", &st.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pings(n: usize) -> Vec<(NodeId, Request)> {
        (0..n).map(|i| (NodeId(i), Request::Ping)).collect()
    }

    fn collect(t: &SimTransport, calls: Vec<(NodeId, Request)>) -> Vec<RoundReply> {
        let mut replies = Vec::new();
        t.multicall(calls, &mut |r| {
            replies.push(r);
            true
        });
        replies
    }

    #[test]
    fn reliable_model_delivers_everything() {
        let t = SimTransport::new(Cluster::new(5), 1);
        let replies = collect(&t, pings(5));
        assert_eq!(replies.len(), 5);
        assert!(replies.iter().all(|r| r.result == Ok(Response::Pong)));
        assert!(t.now() > 0, "virtual time advanced");
        assert_eq!(t.stats().timeouts, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let t =
                SimTransport::with_model(Cluster::new(8), seed, NetworkModel::hostile(0.3, 0.2));
            let mut order = Vec::new();
            for _ in 0..10 {
                let replies = collect(&t, pings(8));
                order.extend(replies.into_iter().map(|r| (r.index, r.result.is_ok())));
            }
            (order, t.stats(), t.now())
        };
        assert_eq!(run(42), run(42), "replay must be bit-for-bit");
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }

    #[test]
    fn loss_produces_timeouts_not_hangs() {
        let t = SimTransport::with_model(
            Cluster::new(4),
            7,
            NetworkModel {
                loss: 1.0,
                ..NetworkModel::reliable()
            },
        );
        let replies = collect(&t, pings(4));
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(|r| r.result == Err(NodeError::TimedOut)));
        assert_eq!(t.stats().timeouts, 4);
    }

    #[test]
    fn lost_reply_still_executes_the_request() {
        // Reply-partition node 0: its write lands, the ack does not.
        let t = SimTransport::new(Cluster::new(2), 3);
        for i in 0..2 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"old"),
                },
            )
            .unwrap();
        }
        t.apply(SimFault::PartitionReplies { nodes: vec![0] });
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"new"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        t.apply(SimFault::HealPartitions);
        match t.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version } => {
                assert_eq!(&bytes[..], b"new", "partial write landed");
                assert_eq!(version, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_partition_prevents_execution() {
        let t = SimTransport::new(Cluster::new(2), 5);
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"old"),
            },
        )
        .unwrap();
        t.apply(SimFault::PartitionRequests { nodes: vec![0] });
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"new"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        t.apply(SimFault::HealPartitions);
        match t.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, .. } => assert_eq!(&bytes[..], b"old"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scheduled_crash_lands_mid_round() {
        // Nodes answer one after another under FIFO + fixed delay; a
        // crash scheduled between the first and last arrival splits the
        // round into successes and Down rejections.
        let t = SimTransport::with_model(
            Cluster::new(4),
            9,
            NetworkModel {
                min_delay: 100,
                max_delay: 100,
                ..NetworkModel::reliable()
            },
        );
        // Stagger the links so arrivals are 100, 300, 500, 700.
        for i in 0..4 {
            t.set_link_delay(i, Some((100 + 200 * i as u64, 100 + 200 * i as u64)));
        }
        t.schedule(
            400,
            SimFault::Crash {
                node: 2,
                durable: true,
            },
        );
        t.schedule(
            400,
            SimFault::Crash {
                node: 3,
                durable: true,
            },
        );
        let replies = collect(&t, pings(4));
        let ok: Vec<usize> = replies
            .iter()
            .filter(|r| r.result.is_ok())
            .map(|r| r.index)
            .collect();
        let down: Vec<usize> = replies
            .iter()
            .filter(|r| r.result == Err(NodeError::Down))
            .map(|r| r.index)
            .collect();
        assert_eq!(ok, vec![0, 1], "requests delivered before the crash");
        assert_eq!(down, vec![2, 3], "requests delivered after the crash");
    }

    #[test]
    fn volatile_crash_loses_state_durable_keeps_it() {
        let t = SimTransport::new(Cluster::new(2), 11);
        for i in 0..2 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"x"),
                },
            )
            .unwrap();
        }
        t.apply(SimFault::Crash {
            node: 0,
            durable: true,
        });
        t.apply(SimFault::Crash {
            node: 1,
            durable: false,
        });
        t.apply(SimFault::Restart { node: 0 });
        t.apply(SimFault::Restart { node: 1 });
        assert!(t.call(NodeId(0), Request::ReadData { id: 1 }).is_ok());
        assert_eq!(
            t.call(NodeId(1), Request::ReadData { id: 1 }),
            Err(NodeError::NotFound),
            "volatile crash wiped the disk"
        );
    }

    #[test]
    fn duplicates_execute_but_complete_once() {
        let t = SimTransport::with_model(
            Cluster::new(1),
            13,
            NetworkModel {
                duplicate: 1.0,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from(vec![0u8; 4]),
            },
        )
        .unwrap();
        let replies = collect(&t, vec![(NodeId(0), Request::ReadData { id: 1 })]);
        assert_eq!(replies.len(), 1, "one completion per call");
        assert!(t.stats().duplicates >= 1, "the duplicate executed");
        // Both the original and the duplicate hit the node's read path.
        assert_eq!(t.cluster().io_totals().reads, 2);
    }

    #[test]
    fn abandoned_round_drops_stragglers() {
        let t = SimTransport::new(Cluster::new(6), 17);
        let mut first = None;
        t.multicall(pings(6), &mut |reply| {
            first = Some(reply.result.clone());
            false
        });
        assert_eq!(first, Some(Ok(Response::Pong)));
        let delivered_after_first = t.stats().delivered;
        assert_eq!(delivered_after_first, 1);
    }

    #[test]
    fn advance_fires_scheduled_faults() {
        let t = SimTransport::new(Cluster::new(2), 19);
        t.schedule(
            1_000,
            SimFault::Crash {
                node: 1,
                durable: true,
            },
        );
        assert_eq!(t.next_planned_fault(), Some(1_000));
        assert!(t.cluster().node(1).is_up());
        t.advance_to(999);
        assert!(t.cluster().node(1).is_up());
        t.advance(1);
        assert!(!t.cluster().node(1).is_up());
        assert_eq!(t.next_planned_fault(), None);
    }

    #[test]
    fn fifo_links_preserve_per_link_order() {
        // With FIFO on and a huge jitter band, two requests to the same
        // node must still execute in issue order.
        let t = SimTransport::with_model(
            Cluster::new(1),
            23,
            NetworkModel {
                min_delay: 1,
                max_delay: 100_000,
                timeout: 1_000_000,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from(vec![0u8; 1]),
            },
        )
        .unwrap();
        for v in 1..=20u64 {
            // Issue write then read in one round: the read must observe
            // the write that was issued before it on the same link.
            let calls = vec![
                (
                    NodeId(0),
                    Request::WriteData {
                        id: 1,
                        bytes: Bytes::from(vec![v as u8]),
                        version: v,
                    },
                ),
                (NodeId(0), Request::ReadData { id: 1 }),
            ];
            let replies = collect(&t, calls);
            let read = replies.iter().find(|r| r.index == 1).unwrap();
            match &read.result {
                Ok(Response::Data { version, .. }) => assert_eq!(*version, v),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
