//! Deterministic simulation transport: virtual time, adversarial links.
//!
//! The other transports realise the paper's §IV model faithfully —
//! perfect links, fail-stop nodes. Real deployments are hostile in ways
//! that model never probes: messages are delayed, lost, duplicated and
//! reordered; partitions cut one direction of a link but not the other;
//! nodes crash mid-round and come back with (or without) their disks.
//! [`SimTransport`] is a FoundationDB-style deterministic simulation of
//! exactly that hostility:
//!
//! * **Virtual time.** No wall clock and no threads: a seeded
//!   event-scheduler loop pops `(time, seq)`-ordered events off a heap.
//!   The same seed replays the same schedule bit-for-bit, on any
//!   machine, under any test runner.
//! * **Programmable network.** A [`NetworkModel`] gives every message an
//!   independently sampled link delay (with optional per-link override),
//!   a loss probability per *direction* (a lost reply is a write that
//!   landed but looks failed — the classic partial-write hazard), a
//!   duplication probability (the duplicate executes on the node again),
//!   and a round-trip `timeout` after which the caller sees
//!   [`NodeError::TimedOut`].
//! * **At-least-once delivery.** With [`NetworkModel::redelivery`] on,
//!   a message still in flight when its round ends is **not** dropped:
//!   it goes to a bounded limbo and is re-injected into later rounds —
//!   stale requests execute on nodes long after their round gave up,
//!   stale replies surface in rounds that never issued them, and
//!   duplicates of both are sampled again on the way. This is the
//!   adversarial regime the idempotent command API
//!   ([`Envelope`]/[`crate::rpc::NodeApi`], monotone node mutations,
//!   identity-matched gathering) exists to survive; the protocols run
//!   checker-clean under it in the DST matrix. With `redelivery` off,
//!   in-flight messages die with their round (the paper's
//!   deliver-promptly-or-fail link model).
//! * **Faults in virtual time.** [`SimFault`]s can be applied
//!   immediately or scheduled at an absolute virtual instant, so a crash
//!   can land *between two replies of the same round*. Crashes are
//!   durable (state kept, the paper's fail-stop) or volatile (disk lost:
//!   the node answers `NotFound` after restart until anti-entropy
//!   reinstalls it). Partitions block the request or the reply direction
//!   of a set of links, independently. [`SimFault::Degrade`] grays a
//!   node out — up and correct, just 10–100× slower — the straggler
//!   regime the adaptive layer exists for.
//! * **Adaptive robustness under test.** The transport owns a
//!   virtual-time-driven [`NodeHealth`] registry (exposed via
//!   [`SimTransport::health_registry`]). Arming a
//!   [`HedgePolicy`](crate::health::HedgePolicy) turns on per-node
//!   adaptive deadlines (never looser than the model's budget) and
//!   speculative re-issue of slow calls — same `OpId`, so the existing
//!   duplicate-absorption hardening makes the losing copy invisible.
//!   With the default policy (`Off`) no extra events are scheduled and
//!   no extra RNG draws happen: every legacy schedule replays
//!   bit-identically.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Cluster;
use crate::health::NodeHealth;
use crate::node::NodeId;
use crate::rpc::{Envelope, Lane, NodeApi, NodeError, OpId, Reply};
use crate::transport::{RoundReply, Transport};

/// How many times one limbo message is re-injected into later rounds
/// before the simulation finally drops it.
const REDELIVERY_TTL: u8 = 3;

/// Upper bound on messages parked in limbo between rounds (oldest are
/// dropped first) — keeps a pathological schedule from accreting an
/// unbounded backlog.
const LIMBO_CAP: usize = 64;

/// Virtual nanoseconds one storage stall tick costs: slow-read faults
/// reported by [`crate::storage::StorageBackend::take_stall_ticks`] are
/// folded into the reply's delivery delay at this rate.
const STALL_TICK_NS: u64 = 1_000;

/// Link behaviour knobs, all per-message and independently sampled.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Minimum one-way delay, in virtual nanoseconds.
    pub min_delay: u64,
    /// Maximum one-way delay (inclusive). Widening `[min, max]` is the
    /// reordering knob: independent draws land replies out of issue
    /// order.
    pub max_delay: u64,
    /// Probability that a message (request or reply, each direction
    /// rolled separately) is lost.
    pub loss: f64,
    /// Probability that a delivered request is delivered *again* at an
    /// independently sampled time (at-least-once fabric).
    pub duplicate: f64,
    /// Round-trip budget per call: with no reply by `issue + timeout`
    /// the caller sees [`NodeError::TimedOut`].
    pub timeout: u64,
    /// Keep each link FIFO (per direction, per node): a later message on
    /// the same link never overtakes an earlier one. Reordering across
    /// *different* links is unaffected. Off = fully adversarial
    /// per-message order even within a link.
    pub fifo_links: bool,
    /// Cross-round redelivery (at-least-once mode): messages that
    /// outlive their round are parked and re-injected into later rounds
    /// instead of dropped. See the [module docs](self).
    pub redelivery: bool,
    /// Probability that a sampled delay grows a heavy (lognormal-ish)
    /// tail: the draw is multiplied by a power of two in `[2, 32]`.
    /// The body of the distribution stays put; rare stragglers appear —
    /// exactly what hedged requests exist to absorb. At `0.0` nothing
    /// is drawn from the RNG, so legacy schedules stay bit-identical.
    pub heavy_tail: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::reliable()
    }
}

impl NetworkModel {
    /// Perfect links with mild symmetric jitter — the §IV model plus a
    /// clock.
    pub fn reliable() -> Self {
        NetworkModel {
            min_delay: 50,
            max_delay: 150,
            loss: 0.0,
            duplicate: 0.0,
            timeout: 100_000,
            fifo_links: true,
            redelivery: false,
            heavy_tail: 0.0,
        }
    }

    /// Lossy, duplicating, widely-jittered links: the adversarial
    /// default of the DST scenarios.
    pub fn hostile(loss: f64, duplicate: f64) -> Self {
        NetworkModel {
            min_delay: 10,
            max_delay: 5_000,
            loss,
            duplicate,
            timeout: 50_000,
            fifo_links: false,
            redelivery: false,
            heavy_tail: 0.0,
        }
    }

    /// A genuinely at-least-once fabric: hostile links **plus**
    /// cross-round redelivery — every undelivered request or reply gets
    /// re-injected into later rounds (up to a TTL), arbitrarily
    /// duplicated again on the way.
    pub fn at_least_once(loss: f64, duplicate: f64) -> Self {
        NetworkModel {
            redelivery: true,
            ..NetworkModel::hostile(loss, duplicate)
        }
    }
}

/// One network/node fault, applied immediately or scheduled in virtual
/// time via [`SimTransport::schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimFault {
    /// Fail-stop the node. `durable: true` keeps its disk (the paper's
    /// model — it revives stale); `durable: false` loses it (the node
    /// revives empty and answers `NotFound` until repaired).
    Crash {
        /// Which node.
        node: usize,
        /// Whether the stored stripe state survives the crash.
        durable: bool,
    },
    /// Bring the node back up (state as the crash left it).
    Restart {
        /// Which node.
        node: usize,
    },
    /// Block the *request* direction of the links to these nodes.
    PartitionRequests {
        /// Unreachable nodes.
        nodes: Vec<usize>,
    },
    /// Block the *reply* direction of the links from these nodes
    /// (asymmetric partition: their writes land, their acks do not).
    PartitionReplies {
        /// Muted nodes.
        nodes: Vec<usize>,
    },
    /// Clear every partition in both directions.
    HealPartitions,
    /// Replace the loss probability.
    SetLoss(f64),
    /// Replace the duplication probability.
    SetDuplication(f64),
    /// Replace the global delay band.
    SetDelay {
        /// New minimum one-way delay.
        min: u64,
        /// New maximum one-way delay.
        max: u64,
    },
    /// Gray the node out: every message to or from it takes `factor`×
    /// the sampled delay. The node stays up and answers correctly —
    /// it is merely slow, the failure mode fail-stop detectors never
    /// see and hedged requests are built to route around. `factor: 1`
    /// restores full speed.
    Degrade {
        /// Which node.
        node: usize,
        /// Delay multiplier (clamped to at least 1).
        factor: u64,
    },
}

/// Counters the scheduler keeps; deterministic per seed, so tests can
/// assert on them to prove two runs took the same schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Fan-out rounds served.
    pub rounds: u64,
    /// Requests handed to the network.
    pub requests: u64,
    /// Replies delivered to callers.
    pub delivered: u64,
    /// Requests lost (sampled loss or request-partition).
    pub requests_dropped: u64,
    /// Replies lost (sampled loss or reply-partition).
    pub replies_dropped: u64,
    /// Duplicate deliveries: requests that reached their node again,
    /// plus replies that surfaced at a caller again.
    pub duplicates: u64,
    /// Calls completed by the timeout instead of a reply.
    pub timeouts: u64,
    /// Faults applied (scheduled and immediate).
    pub faults: u64,
    /// Cross-round redeliveries: stale requests executed in a later
    /// round plus stale replies surfaced to a later round's caller.
    pub redelivered: u64,
    /// Limbo messages dropped for good (TTL exhausted, capacity, or a
    /// [`SimTransport::flush_inflight`]).
    pub limbo_dropped: u64,
    /// Hedges fired: speculative re-issues of calls still outstanding
    /// past their node's hedge quantile (armed policies only).
    pub hedges_fired: u64,
    /// Completions won by the hedge copy arriving before the original.
    pub hedges_won: u64,
    /// Late arrivals absorbed on already-completed slots a hedge had
    /// been fired for — the losing copy of a hedged pair.
    pub hedge_dups: u64,
}

/// A message that outlived its round, waiting to be re-injected.
#[derive(Debug)]
enum LimboMsg {
    /// An undelivered request: will execute on `node` in a later round.
    Req {
        node: NodeId,
        env: Envelope,
        hops: u8,
    },
    /// An undelivered reply: will surface to a later round's caller,
    /// carrying its original (now stale) identity.
    Reply {
        node: NodeId,
        reply: Reply,
        hops: u8,
    },
}

/// What travels through the event heap.
#[derive(Debug)]
enum EventKind {
    /// A request reaches its node (and executes there). `foreign` marks
    /// a cross-round redelivery: no caller of the *current* round awaits
    /// it, so it never counts toward the round's completion.
    ReqArrive {
        node: NodeId,
        env: Envelope,
        deadline: u64,
        duplicate: bool,
        foreign: bool,
        /// Provenance: this copy was issued by a hedge re-send. Carried
        /// through to the reply so the scheduler can attribute wins.
        hedged: bool,
        hops: u8,
    },
    /// A reply reaches the caller.
    ReplyArrive {
        node: NodeId,
        reply: Reply,
        duplicate: bool,
        foreign: bool,
        /// The reply answers a hedge copy (see [`EventKind::ReqArrive`]).
        hedged: bool,
        hops: u8,
    },
    /// The round-trip budget for a call elapses.
    Timeout {
        op_id: OpId,
        round_epoch: u64,
        node: NodeId,
    },
    /// The hedge quantile for a still-outstanding call elapses: re-issue
    /// the same envelope to the straggler (armed policies only).
    HedgeFire { slot: usize },
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    /// Min-heap order on `(time, seq)` through `BinaryHeap`'s max-heap:
    /// earliest time first, issue order breaking ties — a total,
    /// deterministic order.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A fault bound to a virtual instant.
#[derive(Debug)]
struct PlannedFault {
    time: u64,
    seq: u64,
    fault: SimFault,
}

/// Mutable scheduler state behind the transport's `&self` surface.
#[derive(Debug)]
struct SimState {
    now: u64,
    seq: u64,
    rng: StdRng,
    model: NetworkModel,
    /// Per-node one-way delay override `(min, max)`; `None` uses the
    /// model band. Applies to both directions of the link.
    link_delay: Vec<Option<(u64, u64)>>,
    /// Request direction blocked towards node `i`.
    req_blocked: Vec<bool>,
    /// Reply direction blocked from node `i`.
    reply_blocked: Vec<bool>,
    /// Pending scheduled faults (unsorted; drained by time).
    plan: Vec<PlannedFault>,
    /// Last delivery instant per link direction, for FIFO enforcement.
    req_last: Vec<u64>,
    reply_last: Vec<u64>,
    /// Messages that outlived their round, awaiting re-injection
    /// (at-least-once mode only; insertion order, bounded).
    limbo: Vec<LimboMsg>,
    /// Per-node delay multiplier ([`SimFault::Degrade`]); 1 = healthy.
    degrade: Vec<u64>,
    stats: SimStats,
}

impl SimState {
    fn sample_delay(&mut self, node: usize) -> u64 {
        let (lo, hi) =
            self.link_delay[node].unwrap_or((self.model.min_delay, self.model.max_delay));
        let hi = hi.max(lo);
        let mut delay = self.rng.random_range(lo..=hi);
        // Heavy-tail knob: rarely multiply the draw by 2..32, a
        // lognormal-ish tail that produces stragglers without moving
        // the body of the distribution. `roll` draws nothing at 0.0.
        let tail = self.model.heavy_tail;
        if self.roll(tail) {
            let shift = self.rng.random_range(1..=5u32);
            delay = delay.saturating_mul(1u64 << shift);
        }
        // A degraded (gray) node slows both directions of its link.
        delay.saturating_mul(self.degrade[node])
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random_bool(p)
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// FIFO clamp: delivery on a link never precedes an earlier message
    /// of the same link/direction.
    fn fifo(&mut self, last: u64, at: u64) -> u64 {
        if self.model.fifo_links && at <= last {
            last + 1
        } else {
            at
        }
    }

    /// Samples a delivery instant on the request direction of `node`'s
    /// link: delay draw + FIFO clamp, advancing the link's high-water
    /// mark.
    fn next_req_arrival(&mut self, node: usize) -> u64 {
        let delay = self.sample_delay(node);
        let last = self.req_last[node];
        let issue = self.now + delay;
        let at = self.fifo(last, issue);
        self.req_last[node] = at;
        at
    }

    /// Reply-direction counterpart of
    /// [`next_req_arrival`](Self::next_req_arrival). `extra` is added to
    /// the sampled delay — node-side processing stalls (the storage
    /// fault axis's slow reads) delay the ack like extra wire time.
    fn next_reply_arrival(&mut self, node: usize, extra: u64) -> u64 {
        let delay = self.sample_delay(node).saturating_add(extra);
        let last = self.reply_last[node];
        let issue = self.now + delay;
        let at = self.fifo(last, issue);
        self.reply_last[node] = at;
        at
    }

    /// Schedules one request delivery toward `node` (plus a sampled
    /// duplicate), honouring request-partitions, loss, FIFO and the
    /// duplication knob — the single path fresh sends, hedge re-issues
    /// and limbo re-injections all go through.
    #[allow(clippy::too_many_arguments)] // internal: one slot per delivery knob
    fn schedule_request(
        &mut self,
        heap: &mut BinaryHeap<Event>,
        node: NodeId,
        env: Envelope,
        deadline: u64,
        foreign: bool,
        hedged: bool,
        hops: u8,
    ) {
        let loss = self.model.loss;
        if self.req_blocked[node.0] || self.roll(loss) {
            self.stats.requests_dropped += 1;
            return;
        }
        let at = self.next_req_arrival(node.0);
        let dup_p = self.model.duplicate;
        let dup = self.roll(dup_p);
        let seq = self.next_seq();
        heap.push(Event {
            time: at,
            seq,
            kind: EventKind::ReqArrive {
                node,
                env: env.clone(),
                deadline,
                duplicate: false,
                foreign,
                hedged,
                hops,
            },
        });
        if dup {
            let at = self.next_req_arrival(node.0);
            let seq = self.next_seq();
            heap.push(Event {
                time: at,
                seq,
                kind: EventKind::ReqArrive {
                    node,
                    env,
                    deadline,
                    duplicate: true,
                    foreign,
                    hedged,
                    hops,
                },
            });
        }
    }

    /// Schedules one reply delivery from `node` (plus a sampled
    /// duplicate), honouring reply-partitions, loss, FIFO and the
    /// duplication knob. `deadline` bounds in-round replies: one
    /// arriving past it is stale — parked for a later round in
    /// at-least-once mode, dropped otherwise. Limbo re-injections pass
    /// `None` (their original caller is long gone).
    #[allow(clippy::too_many_arguments)] // internal: one slot per delivery knob
    fn schedule_reply(
        &mut self,
        heap: &mut BinaryHeap<Event>,
        node: NodeId,
        reply: Reply,
        deadline: Option<u64>,
        foreign: bool,
        hedged: bool,
        hops: u8,
        stall: u64,
    ) {
        let loss = self.model.loss;
        if self.reply_blocked[node.0] || self.roll(loss) {
            self.stats.replies_dropped += 1;
            return;
        }
        let at = self.next_reply_arrival(node.0, stall);
        let dup_p = self.model.duplicate;
        let dup = self.roll(dup_p);
        if deadline.is_some_and(|d| at > d) {
            // Arrives after the caller stopped waiting: a stale reply.
            if self.model.redelivery {
                self.park(LimboMsg::Reply { node, reply, hops });
            }
            return;
        }
        let seq = self.next_seq();
        heap.push(Event {
            time: at,
            seq,
            kind: EventKind::ReplyArrive {
                node,
                reply: reply.clone(),
                duplicate: false,
                foreign,
                hedged,
                hops,
            },
        });
        if dup {
            let at = self.next_reply_arrival(node.0, 0);
            if deadline.is_some_and(|d| at > d) {
                return; // only the duplicate is late: the original made it
            }
            let seq = self.next_seq();
            heap.push(Event {
                time: at,
                seq,
                kind: EventKind::ReplyArrive {
                    node,
                    reply,
                    duplicate: true,
                    foreign,
                    hedged,
                    hops,
                },
            });
        }
    }

    /// Parks a limbo message, honouring TTL and capacity.
    fn park(&mut self, msg: LimboMsg) {
        let hops = match &msg {
            LimboMsg::Req { hops, .. } | LimboMsg::Reply { hops, .. } => *hops,
        };
        if hops >= REDELIVERY_TTL {
            self.stats.limbo_dropped += 1;
            return;
        }
        if self.limbo.len() >= LIMBO_CAP {
            self.limbo.remove(0);
            self.stats.limbo_dropped += 1;
        }
        self.limbo.push(msg);
    }

    fn apply_fault(&mut self, cluster: &Cluster, fault: &SimFault) {
        self.stats.faults += 1;
        match fault {
            SimFault::Crash { node, durable } => {
                if *durable {
                    // The process dies and restarts with its disk: the
                    // backend recovers what it durably holds (everything
                    // on an in-memory backend; the last fsync barrier on
                    // a faulting one) and volatile node state — the
                    // applied-op window — is gone either way.
                    cluster.node(*node).crash_restart();
                } else {
                    cluster.node(*node).wipe();
                }
                cluster.kill(*node);
            }
            SimFault::Restart { node } => cluster.revive(*node),
            SimFault::PartitionRequests { nodes } => {
                for &n in nodes {
                    self.req_blocked[n] = true;
                }
            }
            SimFault::PartitionReplies { nodes } => {
                for &n in nodes {
                    self.reply_blocked[n] = true;
                }
            }
            SimFault::HealPartitions => {
                self.req_blocked.iter_mut().for_each(|b| *b = false);
                self.reply_blocked.iter_mut().for_each(|b| *b = false);
            }
            SimFault::SetLoss(p) => self.model.loss = *p,
            SimFault::SetDuplication(p) => self.model.duplicate = *p,
            SimFault::SetDelay { min, max } => {
                self.model.min_delay = *min;
                self.model.max_delay = *max;
            }
            SimFault::Degrade { node, factor } => {
                self.degrade[*node] = (*factor).max(1);
            }
        }
    }

    /// Applies every scheduled fault with `time <= t`, in `(time, seq)`
    /// order.
    fn run_faults_until(&mut self, cluster: &Cluster, t: u64) {
        loop {
            let mut due: Option<usize> = None;
            for (i, pf) in self.plan.iter().enumerate() {
                if pf.time <= t
                    && due.is_none_or(|j| (pf.time, pf.seq) < (self.plan[j].time, self.plan[j].seq))
                {
                    due = Some(i);
                }
            }
            let Some(i) = due else { break };
            let pf = self.plan.swap_remove(i);
            self.apply_fault(cluster, &pf.fault);
        }
    }
}

/// The deterministic simulation transport. See the [module docs](self).
///
/// All mutation goes through a single internal lock, and the event loop
/// runs on the caller's thread: the simulation is effectively
/// single-threaded even if the handle is shared, which is what makes
/// replays exact.
pub struct SimTransport {
    cluster: Cluster,
    state: Mutex<SimState>,
    /// Per-node health, fed from virtual time: RTT samples on delivery,
    /// outcomes by the quorum engine via [`Transport::health`]. Dormant
    /// (and schedule-invisible) until a hedge policy is armed.
    health: Arc<NodeHealth>,
}

impl SimTransport {
    /// A simulation over `cluster` with the default (reliable) model.
    pub fn new(cluster: Cluster, seed: u64) -> Self {
        Self::with_model(cluster, seed, NetworkModel::default())
    }

    /// A simulation with an explicit network model.
    pub fn with_model(cluster: Cluster, seed: u64, model: NetworkModel) -> Self {
        let n = cluster.len();
        SimTransport {
            cluster,
            state: Mutex::new(SimState {
                now: 0,
                seq: 0,
                rng: StdRng::seed_from_u64(seed),
                model,
                link_delay: vec![None; n],
                req_blocked: vec![false; n],
                reply_blocked: vec![false; n],
                plan: Vec::new(),
                req_last: vec![0; n],
                reply_last: vec![0; n],
                limbo: Vec::new(),
                degrade: vec![1; n],
                stats: SimStats::default(),
            }),
            health: Arc::new(NodeHealth::sim_scale()),
        }
    }

    /// The health registry this simulation feeds, driven entirely by
    /// virtual time. Arm a policy with
    /// [`set_policy`](NodeHealth::set_policy) to turn on adaptive
    /// per-node deadlines and hedged re-issue; the default
    /// ([`HedgePolicy::Off`](crate::health::HedgePolicy::Off)) keeps
    /// every schedule bit-identical to the pre-hedging transport.
    pub fn health_registry(&self) -> &Arc<NodeHealth> {
        &self.health
    }

    /// Borrow the underlying cluster (state inspection, accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current virtual instant.
    pub fn now(&self) -> u64 {
        self.state.lock().now
    }

    /// Scheduler counters so far.
    pub fn stats(&self) -> SimStats {
        self.state.lock().stats
    }

    /// A copy of the current network model.
    pub fn model(&self) -> NetworkModel {
        self.state.lock().model.clone()
    }

    /// Replaces the network model (delay band, loss, duplication,
    /// timeout, FIFO discipline, redelivery) from now on. Messages
    /// already in limbo stay parked until a round runs with redelivery
    /// enabled — or [`flush_inflight`](Self::flush_inflight) drops them.
    pub fn set_model(&self, model: NetworkModel) {
        self.state.lock().model = model;
    }

    /// Drops every in-flight cross-round message (the limbo backlog),
    /// returning how many were discarded. A quiesce — what anti-entropy
    /// runs behind — means *waiting out* the network; this models that
    /// wait as the messages never arriving afterwards.
    pub fn flush_inflight(&self) -> usize {
        let mut st = self.state.lock();
        let dropped = st.limbo.len();
        st.stats.limbo_dropped += dropped as u64;
        st.limbo.clear();
        dropped
    }

    /// Number of cross-round messages currently parked in limbo.
    pub fn inflight(&self) -> usize {
        self.state.lock().limbo.len()
    }

    /// Overrides the one-way delay band of node `i`'s link (both
    /// directions); `None` restores the model band.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_link_delay(&self, i: usize, band: Option<(u64, u64)>) {
        self.state.lock().link_delay[i] = band;
    }

    /// Applies a fault right now.
    pub fn apply(&self, fault: SimFault) {
        let mut st = self.state.lock();
        st.apply_fault(&self.cluster, &fault);
    }

    /// Schedules a fault at absolute virtual time `at` (clamped to the
    /// present if already past). It fires when the event loop or
    /// [`advance_to`](Self::advance_to) reaches that instant — including
    /// *between two replies of one round*.
    pub fn schedule(&self, at: u64, fault: SimFault) {
        let mut st = self.state.lock();
        let seq = st.next_seq();
        st.plan.push(PlannedFault {
            time: at,
            seq,
            fault,
        });
    }

    /// Advances virtual time to `t`, firing scheduled faults on the way
    /// (no-op if `t` is in the past).
    pub fn advance_to(&self, t: u64) {
        let mut st = self.state.lock();
        st.run_faults_until(&self.cluster, t);
        st.now = st.now.max(t);
    }

    /// Advances virtual time by `dt`.
    pub fn advance(&self, dt: u64) {
        let now = self.now();
        self.advance_to(now.saturating_add(dt));
    }

    /// Earliest pending scheduled-fault instant, if any — drive time past
    /// it with [`advance_to`](Self::advance_to) to quiesce the plan.
    pub fn next_planned_fault(&self) -> Option<u64> {
        self.state.lock().plan.iter().map(|p| p.time).min()
    }

    /// Shared event loop: runs one fan-out until every call completed or
    /// the sink abandoned the round. In at-least-once mode, undelivered
    /// messages (this round's *and* re-injected older ones) go back to
    /// limbo when the round ends; otherwise they die with the round.
    fn run_round(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        let total = calls.len();
        if total == 0 {
            return;
        }
        let mut st = self.state.lock();
        st.stats.rounds += 1;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        // Completion slots for this round's own calls, by issue order;
        // foreign (cross-round) messages have no slot and never count.
        let slot_of = |ids: &[(OpId, NodeId)], op: OpId| ids.iter().position(|&(id, _)| id == op);
        let ids: Vec<(OpId, NodeId)> = calls.iter().map(|(n, e)| (e.op_id, *n)).collect();
        let mut completed = vec![false; total];
        let mut done = 0usize;

        // Adaptive layer: with a policy armed, deadlines come from the
        // per-node estimator (never looser than the model budget) and
        // each foreground call gets a HedgeFire event at its node's
        // hedge quantile. With the policy Off none of this runs — no
        // extra events, no extra RNG draws, bit-identical schedules.
        let hedging = self.health.hedging_enabled();
        self.health.advance_now(st.now);
        let start = st.now;
        let mut hedge_plan: Vec<Option<(Envelope, u64)>> = (0..total).map(|_| None).collect();
        let mut hedge_fired = vec![false; total];

        for (i, (node, env)) in calls.into_iter().enumerate() {
            assert!(node.0 < self.cluster.len(), "node {node} out of range");
            st.stats.requests += 1;
            let budget = if hedging {
                self.health
                    .timeout_for(node.0)
                    .map_or(st.model.timeout, |t| t.min(st.model.timeout))
            } else {
                st.model.timeout
            };
            let deadline = st.now + budget;
            let seq = st.next_seq();
            heap.push(Event {
                time: deadline,
                seq,
                kind: EventKind::Timeout {
                    op_id: env.op_id,
                    round_epoch: env.round_epoch,
                    node,
                },
            });
            if hedging && env.lane == Lane::Foreground {
                if let Some(d) = self.health.hedge_delay(node.0) {
                    let at = st.now + d;
                    if at < deadline {
                        let seq = st.next_seq();
                        heap.push(Event {
                            time: at,
                            seq,
                            kind: EventKind::HedgeFire { slot: i },
                        });
                        hedge_plan[i] = Some((env.clone(), deadline));
                    }
                }
            }
            st.schedule_request(&mut heap, node, env, deadline, false, false, 0);
        }

        // At-least-once: re-inject everything parked by earlier rounds
        // through the same scheduling path as fresh traffic —
        // loss/partitions/duplication roll again per re-injection; the
        // fabric is as adversarial to stragglers as to new messages.
        if st.model.redelivery {
            let parked = std::mem::take(&mut st.limbo);
            for msg in parked {
                match msg {
                    LimboMsg::Req { node, env, hops } => {
                        st.schedule_request(&mut heap, node, env, u64::MAX, true, false, hops + 1);
                    }
                    LimboMsg::Reply { node, reply, hops } => {
                        st.schedule_reply(&mut heap, node, reply, None, true, false, hops + 1, 0);
                    }
                }
            }
        }

        let mut abandoned = false;
        while done < total && !abandoned {
            let Some(ev) = heap.pop() else {
                // Unreachable: every slot owns a Timeout event. Kept as
                // a graceful exit rather than a hang if it ever breaks.
                break;
            };
            st.run_faults_until(&self.cluster, ev.time);
            st.now = st.now.max(ev.time);
            match ev.kind {
                EventKind::ReqArrive {
                    node,
                    env,
                    deadline,
                    duplicate,
                    foreign,
                    hedged,
                    hops,
                } => {
                    // The node executes the request at arrival time even
                    // if the caller has already given up on this op —
                    // side effects of unawaited messages are the point.
                    if duplicate {
                        st.stats.duplicates += 1;
                    }
                    if foreign {
                        st.stats.redelivered += 1;
                    }
                    // The ack is sent regardless of whether the caller
                    // is still waiting — a request arriving after its
                    // own timeout produces exactly the stale reply the
                    // at-least-once mode must keep in flight (it parks
                    // past-deadline replies; without redelivery they
                    // drop here as before).
                    let reply = self.cluster.node(node.0).execute(env);
                    // Storage-fault axis: slow reads charged by the
                    // node's backend surface as reply latency.
                    let stall =
                        self.cluster.node(node.0).backend().take_stall_ticks() * STALL_TICK_NS;
                    st.schedule_reply(
                        &mut heap,
                        node,
                        reply,
                        Some(deadline),
                        foreign,
                        hedged,
                        hops,
                        stall,
                    );
                }
                EventKind::ReplyArrive {
                    node,
                    reply,
                    duplicate,
                    foreign,
                    hedged,
                    hops: _,
                } => {
                    if duplicate {
                        st.stats.duplicates += 1;
                    }
                    let slot = slot_of(&ids, reply.op_id).filter(|_| !foreign);
                    match slot {
                        Some(i) => {
                            if completed[i] {
                                if hedge_fired[i] {
                                    // The losing copy of a hedged pair
                                    // landing after the winner: absorbed
                                    // here, invisible to the caller.
                                    st.stats.hedge_dups += 1;
                                    self.health.note_hedge_dup();
                                }
                                continue;
                            }
                            completed[i] = true;
                            done += 1;
                            st.stats.delivered += 1;
                            // Feed the estimator the real virtual-time
                            // RTT; outcomes (accept/reject) are fed once,
                            // by the quorum engine.
                            if reply.result.is_ok() {
                                self.health.advance_now(st.now);
                                self.health
                                    .record_sample(node.0, st.now.saturating_sub(start));
                            }
                            if hedged {
                                st.stats.hedges_won += 1;
                                self.health.note_hedge_won();
                            }
                            if !sink(RoundReply::from_reply(node, reply)) {
                                abandoned = true;
                            }
                        }
                        None => {
                            // A stale straggler from an earlier round
                            // surfacing at this round's caller: deliver
                            // it — the engine must discard it by
                            // identity — but never count it.
                            st.stats.redelivered += 1;
                            if !sink(RoundReply::from_reply(node, reply)) {
                                abandoned = true;
                            }
                        }
                    }
                }
                EventKind::Timeout {
                    op_id,
                    round_epoch,
                    node,
                } => {
                    let Some(i) = slot_of(&ids, op_id) else {
                        continue;
                    };
                    if completed[i] {
                        continue;
                    }
                    completed[i] = true;
                    done += 1;
                    st.stats.timeouts += 1;
                    if !sink(RoundReply {
                        op_id,
                        round_epoch,
                        node,
                        result: Err(NodeError::TimedOut),
                    }) {
                        abandoned = true;
                    }
                }
                EventKind::HedgeFire { slot } => {
                    // Speculative re-issue: the call is still outstanding
                    // past its node's hedge quantile. Same OpId — the
                    // identity matching and idempotent command API absorb
                    // whichever copy loses. Budget-gated so hedges stay a
                    // bounded fraction of successful traffic.
                    if completed[slot] {
                        continue;
                    }
                    let Some((env, deadline)) = hedge_plan[slot].take() else {
                        continue;
                    };
                    let node = ids[slot].1;
                    if !self.health.try_spend(env.lane) {
                        continue;
                    }
                    hedge_fired[slot] = true;
                    st.stats.hedges_fired += 1;
                    self.health.note_hedge_fired();
                    st.schedule_request(&mut heap, node, env, deadline, false, true, 0);
                }
            }
        }
        // The round is over. Remaining events are messages still in
        // flight: in at-least-once mode requests and replies go to limbo
        // for later rounds; otherwise they die here. Timeouts die either
        // way (their caller is gone).
        if st.model.redelivery {
            while let Some(ev) = heap.pop() {
                match ev.kind {
                    EventKind::ReqArrive {
                        node, env, hops, ..
                    } => st.park(LimboMsg::Req { node, env, hops }),
                    EventKind::ReplyArrive {
                        node, reply, hops, ..
                    } => st.park(LimboMsg::Reply { node, reply, hops }),
                    // Their caller is gone either way; hedge triggers are
                    // meaningless outside their round.
                    EventKind::Timeout { .. } | EventKind::HedgeFire { .. } => {}
                }
            }
        }
        // Keep the health clock current so outcome feeding (circuit
        // stamps, cooldowns) that happens after multicall returns sees
        // the end-of-round instant.
        self.health.advance_now(st.now);
    }
}

impl Transport for SimTransport {
    fn node_count(&self) -> usize {
        self.cluster.len()
    }

    fn dispatch(&self, node: NodeId, env: Envelope) -> Reply {
        let (op_id, round_epoch) = (env.op_id, env.round_epoch);
        let mut result = Err(NodeError::TimedOut);
        self.run_round(vec![(node, env)], &mut |reply| {
            if reply.op_id == op_id {
                result = reply.result;
                false
            } else {
                true // stale stranger from an earlier round: ignore
            }
        });
        Reply {
            op_id,
            round_epoch,
            result,
        }
    }

    fn multicall(&self, calls: Vec<(NodeId, Envelope)>, sink: &mut dyn FnMut(RoundReply) -> bool) {
        self.run_round(calls, sink);
    }

    fn health(&self) -> Option<&NodeHealth> {
        Some(&self.health)
    }
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SimTransport")
            .field("nodes", &self.cluster.len())
            .field("now", &st.now)
            .field("inflight", &st.limbo.len())
            .field("stats", &st.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{Request, Response};
    use bytes::Bytes;

    fn pings(n: usize) -> Vec<(NodeId, Request)> {
        (0..n).map(|i| (NodeId(i), Request::Ping)).collect()
    }

    fn envelopes(calls: Vec<(NodeId, Request)>) -> Vec<(NodeId, Envelope)> {
        calls
            .into_iter()
            .map(|(node, req)| (node, Envelope::new(req)))
            .collect()
    }

    fn collect(t: &SimTransport, calls: Vec<(NodeId, Request)>) -> Vec<RoundReply> {
        let mut replies = Vec::new();
        t.multicall(envelopes(calls), &mut |r| {
            replies.push(r);
            true
        });
        replies
    }

    #[test]
    fn reliable_model_delivers_everything() {
        let t = SimTransport::new(Cluster::new(5), 1);
        let replies = collect(&t, pings(5));
        assert_eq!(replies.len(), 5);
        assert!(replies.iter().all(|r| r.result == Ok(Response::Pong)));
        assert!(t.now() > 0, "virtual time advanced");
        assert_eq!(t.stats().timeouts, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let t =
                SimTransport::with_model(Cluster::new(8), seed, NetworkModel::hostile(0.3, 0.2));
            let mut order = Vec::new();
            for _ in 0..10 {
                let replies = collect(&t, pings(8));
                order.extend(replies.into_iter().map(|r| (r.node, r.result.is_ok())));
            }
            (order, t.stats(), t.now())
        };
        assert_eq!(run(42), run(42), "replay must be bit-for-bit");
        assert_ne!(run(42).0, run(43).0, "different seeds diverge");
    }

    #[test]
    fn loss_produces_timeouts_not_hangs() {
        let t = SimTransport::with_model(
            Cluster::new(4),
            7,
            NetworkModel {
                loss: 1.0,
                ..NetworkModel::reliable()
            },
        );
        let replies = collect(&t, pings(4));
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(|r| r.result == Err(NodeError::TimedOut)));
        assert_eq!(t.stats().timeouts, 4);
        // Synthesised timeout replies still echo the issuing round's
        // epoch, like every other reply.
        let env = Envelope::in_epoch(Request::Ping, 99);
        let (op, epoch) = (env.op_id, env.round_epoch);
        let mut timed_out = None;
        t.multicall(vec![(NodeId(0), env)], &mut |reply| {
            timed_out = Some((reply.op_id, reply.round_epoch));
            true
        });
        assert_eq!(timed_out, Some((op, epoch)));
    }

    #[test]
    fn lost_reply_still_executes_the_request() {
        // Reply-partition node 0: its write lands, the ack does not.
        let t = SimTransport::new(Cluster::new(2), 3);
        for i in 0..2 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"old"),
                },
            )
            .unwrap();
        }
        t.apply(SimFault::PartitionReplies { nodes: vec![0] });
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"new"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        t.apply(SimFault::HealPartitions);
        match t.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"new", "partial write landed");
                assert_eq!(version, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_partition_prevents_execution() {
        let t = SimTransport::new(Cluster::new(2), 5);
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"old"),
            },
        )
        .unwrap();
        t.apply(SimFault::PartitionRequests { nodes: vec![0] });
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"new"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        t.apply(SimFault::HealPartitions);
        match t.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, .. } => assert_eq!(&bytes[..], b"old"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scheduled_crash_lands_mid_round() {
        // Nodes answer one after another under FIFO + fixed delay; a
        // crash scheduled between the first and last arrival splits the
        // round into successes and Down rejections.
        let t = SimTransport::with_model(
            Cluster::new(4),
            9,
            NetworkModel {
                min_delay: 100,
                max_delay: 100,
                ..NetworkModel::reliable()
            },
        );
        // Stagger the links so arrivals are 100, 300, 500, 700.
        for i in 0..4 {
            t.set_link_delay(i, Some((100 + 200 * i as u64, 100 + 200 * i as u64)));
        }
        t.schedule(
            400,
            SimFault::Crash {
                node: 2,
                durable: true,
            },
        );
        t.schedule(
            400,
            SimFault::Crash {
                node: 3,
                durable: true,
            },
        );
        let replies = collect(&t, pings(4));
        let ok: Vec<usize> = replies
            .iter()
            .filter(|r| r.result.is_ok())
            .map(|r| r.node.0)
            .collect();
        let down: Vec<usize> = replies
            .iter()
            .filter(|r| r.result == Err(NodeError::Down))
            .map(|r| r.node.0)
            .collect();
        assert_eq!(ok, vec![0, 1], "requests delivered before the crash");
        assert_eq!(down, vec![2, 3], "requests delivered after the crash");
    }

    #[test]
    fn volatile_crash_loses_state_durable_keeps_it() {
        let t = SimTransport::new(Cluster::new(2), 11);
        for i in 0..2 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"x"),
                },
            )
            .unwrap();
        }
        t.apply(SimFault::Crash {
            node: 0,
            durable: true,
        });
        t.apply(SimFault::Crash {
            node: 1,
            durable: false,
        });
        t.apply(SimFault::Restart { node: 0 });
        t.apply(SimFault::Restart { node: 1 });
        assert!(t.call(NodeId(0), Request::ReadData { id: 1 }).is_ok());
        assert_eq!(
            t.call(NodeId(1), Request::ReadData { id: 1 }),
            Err(NodeError::NotFound),
            "volatile crash wiped the disk"
        );
    }

    #[test]
    fn duplicates_reach_the_node_but_complete_once() {
        let t = SimTransport::with_model(
            Cluster::new(1),
            13,
            NetworkModel {
                duplicate: 1.0,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from(vec![0u8; 4]),
            },
        )
        .unwrap();
        let replies = collect(&t, vec![(NodeId(0), Request::ReadData { id: 1 })]);
        assert_eq!(replies.len(), 1, "one completion per call");
        assert!(t.stats().duplicates >= 1, "the duplicate reached the node");
        // Both the original and the duplicate hit the node's read path
        // (reads are outside the applied-op window).
        assert_eq!(t.cluster().io_totals().reads, 2);
    }

    #[test]
    fn abandoned_round_drops_stragglers() {
        let t = SimTransport::new(Cluster::new(6), 17);
        let mut first = None;
        t.multicall(envelopes(pings(6)), &mut |reply| {
            first = Some(reply.result.clone());
            false
        });
        assert_eq!(first, Some(Ok(Response::Pong)));
        let delivered_after_first = t.stats().delivered;
        assert_eq!(delivered_after_first, 1);
        assert_eq!(t.inflight(), 0, "no redelivery: stragglers die");
    }

    #[test]
    fn advance_fires_scheduled_faults() {
        let t = SimTransport::new(Cluster::new(2), 19);
        t.schedule(
            1_000,
            SimFault::Crash {
                node: 1,
                durable: true,
            },
        );
        assert_eq!(t.next_planned_fault(), Some(1_000));
        assert!(t.cluster().node(1).is_up());
        t.advance_to(999);
        assert!(t.cluster().node(1).is_up());
        t.advance(1);
        assert!(!t.cluster().node(1).is_up());
        assert_eq!(t.next_planned_fault(), None);
    }

    #[test]
    fn fifo_links_preserve_per_link_order() {
        // With FIFO on and a huge jitter band, two requests to the same
        // node must still execute in issue order.
        let t = SimTransport::with_model(
            Cluster::new(1),
            23,
            NetworkModel {
                min_delay: 1,
                max_delay: 100_000,
                timeout: 1_000_000,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from(vec![0u8; 1]),
            },
        )
        .unwrap();
        for v in 1..=20u64 {
            // Issue write then read in one round: the read must observe
            // the write that was issued before it on the same link.
            let calls = vec![
                (
                    NodeId(0),
                    Request::WriteData {
                        id: 1,
                        bytes: Bytes::from(vec![v as u8]),
                        version: v,
                    },
                ),
                (NodeId(0), Request::ReadData { id: 1 }),
            ];
            let replies = collect(&t, calls);
            let read = replies
                .iter()
                .find(|r| matches!(r.result, Ok(Response::Data { .. })))
                .unwrap();
            match &read.result {
                Ok(Response::Data { version, .. }) => assert_eq!(*version, v),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn redelivery_executes_a_stale_request_in_a_later_round() {
        // Partition the reply direction and time the write out; in
        // at-least-once mode the *late reply* is parked rather than the
        // request being lost, and a fully-partitioned request also
        // survives rounds. Here: block requests so the write never lands
        // in its own round, heal, then watch it land during a later
        // round.
        let t = SimTransport::with_model(
            Cluster::new(2),
            29,
            NetworkModel {
                redelivery: true,
                // Huge delay on this link: the request outlives the round.
                ..NetworkModel::reliable()
            },
        );
        for i in 0..2 {
            t.call(
                NodeId(i),
                Request::InitData {
                    id: 1,
                    bytes: Bytes::from_static(b"old"),
                },
            )
            .unwrap();
        }
        // Delay node 0's link far past the timeout: the request is still
        // in flight when the round times out.
        t.set_link_delay(0, Some((200_000, 200_000)));
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"new"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        assert_eq!(t.inflight(), 1, "the write is parked, not dropped");
        // Restore the link; the parked write executes during this later
        // round, before the read's own (FIFO-ordered) arrival? No — the
        // limbo message samples a fresh delay, so just assert it lands
        // and the node converges to the new value across rounds.
        t.set_link_delay(0, None);
        let mut value = None;
        for _ in 0..4 {
            if let Ok(Response::Data { bytes, version, .. }) =
                t.call(NodeId(0), Request::ReadData { id: 1 })
            {
                value = Some((bytes.to_vec(), version));
            }
        }
        assert_eq!(t.inflight(), 0, "limbo drained");
        assert!(t.stats().redelivered >= 1);
        assert_eq!(
            value,
            Some((b"new".to_vec(), 1)),
            "the stale write landed in a later round"
        );
    }

    #[test]
    fn redelivered_stale_write_cannot_regress_a_newer_version() {
        let t = SimTransport::with_model(
            Cluster::new(1),
            31,
            NetworkModel {
                redelivery: true,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"v0"),
            },
        )
        .unwrap();
        // Strand a v1 write in limbo (past the 100k timeout).
        t.set_link_delay(0, Some((150_000, 150_000)));
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"v1"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        assert_eq!(t.inflight(), 1);
        // Commit v2 through a healthy link, with the stale v1 landing
        // somewhere among these rounds.
        t.set_link_delay(0, None);
        t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"v2"),
                version: 2,
            },
        )
        .unwrap();
        let mut last = None;
        for _ in 0..4 {
            if let Ok(Response::Data { bytes, version, .. }) =
                t.call(NodeId(0), Request::ReadData { id: 1 })
            {
                last = Some((bytes.to_vec(), version));
            }
        }
        assert_eq!(t.inflight(), 0);
        assert_eq!(
            last,
            Some((b"v2".to_vec(), 2)),
            "monotone write guard: the stale v1 redelivery acked without clobbering"
        );
    }

    #[test]
    fn stale_replies_surface_in_later_rounds_and_are_ignored() {
        // Block the reply direction so the write executes but its ack is
        // parked; later rounds then receive that stale ack in-band.
        let t = SimTransport::with_model(
            Cluster::new(1),
            37,
            NetworkModel {
                redelivery: true,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"x"),
            },
        )
        .unwrap();
        // Stretch the link so the reply (FIFO behind the request) cannot
        // make the deadline: the request executes, the reply is parked.
        t.set_link_delay(0, Some((60_000, 60_000)));
        let r = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"y"),
                version: 1,
            },
        );
        assert_eq!(r, Err(NodeError::TimedOut));
        assert!(t.inflight() >= 1, "the late ack is parked");
        t.set_link_delay(0, None);
        // The next rounds see the stale ack as a foreign RoundReply; the
        // engine-facing contract is that it carries the *old* op id.
        let mut foreign = Vec::new();
        for _ in 0..4 {
            let env = Envelope::new(Request::ReadData { id: 1 });
            let own = env.op_id;
            t.multicall(vec![(NodeId(0), env)], &mut |reply| {
                if reply.op_id != own {
                    foreign.push(reply.result.clone());
                }
                true
            });
        }
        assert_eq!(t.inflight(), 0);
        assert!(
            foreign.contains(&Ok(Response::Ack)),
            "the stale ack surfaced with its original identity: {foreign:?}"
        );
    }

    #[test]
    fn flush_inflight_empties_limbo() {
        let t = SimTransport::with_model(
            Cluster::new(1),
            41,
            NetworkModel {
                redelivery: true,
                ..NetworkModel::reliable()
            },
        );
        t.call(
            NodeId(0),
            Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"x"),
            },
        )
        .unwrap();
        t.set_link_delay(0, Some((150_000, 150_000)));
        let _ = t.call(
            NodeId(0),
            Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"y"),
                version: 1,
            },
        );
        assert_eq!(t.inflight(), 1);
        assert_eq!(t.flush_inflight(), 1);
        assert_eq!(t.inflight(), 0);
        t.set_link_delay(0, None);
        // The flushed write never lands.
        match t.call(NodeId(0), Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"x");
                assert_eq!(version, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.stats().limbo_dropped >= 1);
    }

    #[test]
    fn redelivery_replay_is_bit_for_bit() {
        let run = |seed| {
            let t = SimTransport::with_model(
                Cluster::new(6),
                seed,
                NetworkModel::at_least_once(0.15, 0.25),
            );
            let mut order = Vec::new();
            for _ in 0..12 {
                let replies = collect(&t, pings(6));
                order.extend(replies.into_iter().map(|r| (r.node, r.result.is_ok())));
            }
            (order, t.stats(), t.now())
        };
        assert_eq!(run(77), run(77), "at-least-once replay must be bit-for-bit");
    }

    #[test]
    fn degrade_slows_a_node_without_downing_it() {
        let t = SimTransport::new(Cluster::new(2), 47);
        t.apply(SimFault::Degrade {
            node: 0,
            factor: 100,
        });
        let replies = collect(&t, pings(2));
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.result == Ok(Response::Pong)));
        assert_eq!(
            replies[0].node,
            NodeId(1),
            "the gray node answers last, not never"
        );
        assert_eq!(t.stats().timeouts, 0, "degraded ≠ down");
        // Restoring factor 1 closes the gap again.
        t.apply(SimFault::Degrade { node: 0, factor: 1 });
        let replies = collect(&t, pings(2));
        assert!(replies.iter().all(|r| r.result == Ok(Response::Pong)));
    }

    #[test]
    fn armed_policy_hedges_stragglers_and_keeps_replay_exact() {
        use crate::health::HedgePolicy;
        let run = |seed| {
            let t = SimTransport::with_model(
                Cluster::new(4),
                seed,
                NetworkModel {
                    heavy_tail: 0.2,
                    ..NetworkModel::reliable()
                },
            );
            t.health_registry().set_policy(HedgePolicy::P99);
            let mut order = Vec::new();
            for _ in 0..50 {
                let replies = collect(&t, pings(4));
                assert_eq!(replies.len(), 4, "every call completes");
                order.extend(replies.into_iter().map(|r| (r.node, r.result.is_ok())));
            }
            (order, t.stats(), t.now())
        };
        let (order, stats, now) = run(51);
        assert!(
            stats.hedges_fired >= 1,
            "heavy-tail stragglers trip the hedge quantile: {stats:?}"
        );
        assert!(
            stats.hedges_won + stats.hedge_dups >= 1,
            "a hedged pair resolved one way or the other: {stats:?}"
        );
        assert_eq!(run(51), (order, stats, now), "hedged replay is bit-for-bit");
    }

    #[test]
    fn off_policy_leaves_health_dormant_but_fed() {
        // With no policy armed the schedule carries zero hedge events,
        // yet RTT samples still accumulate — so flipping a policy on
        // later starts from a warm estimator.
        let t = SimTransport::new(Cluster::new(2), 53);
        for _ in 0..5 {
            let replies = collect(&t, pings(2));
            assert_eq!(replies.len(), 2);
        }
        let stats = t.stats();
        assert_eq!(stats.hedges_fired, 0);
        assert_eq!(stats.hedges_won, 0);
        assert_eq!(stats.hedge_dups, 0);
        let snap = t.health_registry().snapshot();
        assert!(
            snap.iter().any(|s| s.timeout.is_some()),
            "RTT samples warmed the estimator even while dormant: {snap:?}"
        );
    }

    #[test]
    fn adaptive_deadline_times_a_gray_node_out_early() {
        use crate::health::HedgePolicy;
        // Warm the estimator on a healthy cluster, then gray node 0 far
        // past the model timeout. The adaptive deadline (srtt + 4·dev,
        // clamped) fires long before the fixed 100k budget would.
        let t = SimTransport::new(Cluster::new(2), 59);
        t.health_registry().set_policy(HedgePolicy::P99);
        for _ in 0..10 {
            let replies = collect(&t, pings(2));
            assert_eq!(replies.len(), 2);
        }
        let before = t.now();
        t.apply(SimFault::Degrade {
            node: 0,
            factor: 10_000,
        });
        let replies = collect(&t, pings(2));
        let gray = replies.iter().find(|r| r.node == NodeId(0)).unwrap();
        assert_eq!(gray.result, Err(NodeError::TimedOut));
        let elapsed = t.now() - before;
        assert!(
            elapsed < t.model().timeout,
            "adaptive deadline cut the wait: {elapsed} vs fixed {}",
            t.model().timeout
        );
    }

    #[test]
    fn limbo_is_bounded_by_ttl() {
        // A permanently request-partitioned node in at-least-once mode:
        // every round re-parks the pending messages until the TTL drops
        // them — limbo cannot grow without bound.
        let t = SimTransport::with_model(
            Cluster::new(1),
            43,
            NetworkModel {
                redelivery: true,
                ..NetworkModel::reliable()
            },
        );
        t.set_link_delay(0, Some((200_000, 200_000)));
        for _ in 0..20 {
            let _ = t.call(NodeId(0), Request::Ping);
        }
        assert!(
            t.inflight() <= LIMBO_CAP,
            "limbo stays bounded: {}",
            t.inflight()
        );
        assert!(t.stats().limbo_dropped > 0, "TTL or cap dropped messages");
    }
}
