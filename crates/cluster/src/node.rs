//! A single storage node: versioned block store, fail-stop switch, and
//! the idempotent [`NodeApi`] command surface.
//!
//! Every mutation the node serves is **monotone**: versions only move
//! forward, stale commands acknowledge without applying, and an exact
//! redelivery of a recently applied command short-circuits through the
//! applied-op window. Together these make the node safe under
//! at-least-once delivery — the property the cross-round redelivery mode
//! of [`crate::sim::SimTransport`] exercises adversarially.
//!
//! The node's *state* lives behind the [`StorageBackend`] seam: the same
//! command semantics run over the striped in-memory map (default), the
//! crash-safe append-only log, or the DST fault-injection wrapper. Pick
//! a backend with [`StorageNode::builder`]; plain [`StorageNode::new`]
//! uses the process default (the `TQ_NODE_BACKEND` environment
//! variable, memory if unset).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::detmap::DetHashSet;
use crate::rpc::{BlockId, Envelope, NodeApi, NodeError, OpId, Reply, Request, Response};
use crate::stats::{IoSnapshot, IoStats};
use crate::storage::{self, StorageBackend, StorageError, StoredBlock};

/// Index of a node within its cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// How many applied mutation [`OpId`]s a node remembers for exact-
/// duplicate absorption. Far beyond any redelivery horizon the
/// simulation (or a sane fabric) produces; beyond the window, the
/// monotone version guards still keep redeliveries harmless.
const APPLIED_WINDOW: usize = 4096;

/// Bounded FIFO set of recently applied mutation op ids.
#[derive(Debug, Default)]
struct AppliedWindow {
    set: DetHashSet<OpId>,
    order: VecDeque<OpId>,
}

impl AppliedWindow {
    fn contains(&self, id: OpId) -> bool {
        self.set.contains(&id)
    }

    fn remember(&mut self, id: OpId) {
        if self.set.insert(id) {
            self.order.push_back(id);
            if self.order.len() > APPLIED_WINDOW {
                if let Some(evicted) = self.order.pop_front() {
                    self.set.remove(&evicted);
                }
            }
        }
    }
}

/// How many independent per-block serialisation locks the node stripes
/// its request handling over. Each request touches exactly one block, so
/// a request locks exactly one stripe; a hot block never stalls the
/// whole node. Power of two so the hash reduction is a mask.
const OP_LOCK_STRIPES: usize = 16;

/// Builder for a [`StorageNode`] with an explicit storage backend.
///
/// ```
/// use std::sync::Arc;
/// use tq_cluster::storage::MemoryBackend;
/// use tq_cluster::{NodeId, StorageNode};
///
/// let node = StorageNode::builder(NodeId(3))
///     .backend(Arc::new(MemoryBackend::new()))
///     .build();
/// assert_eq!(node.id(), NodeId(3));
/// ```
#[derive(Debug)]
pub struct NodeBuilder {
    id: NodeId,
    backend: Option<Arc<dyn StorageBackend>>,
    durable_acks: bool,
    verify_reads: bool,
}

impl NodeBuilder {
    /// Selects the storage backend (default: the process default per
    /// `TQ_NODE_BACKEND`).
    pub fn backend(mut self, backend: Arc<dyn StorageBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Whether an acknowledged mutation must be durable (default:
    /// `true`). With durable acks the node forces the backend's
    /// durability barrier before replying to any mutation, so a crash
    /// can only lose state the caller was never told about — the
    /// fsync-before-ack discipline every quorum-intersection argument
    /// silently assumes. Turning it off trades that guarantee for
    /// per-mutation fsync cost; the DST storage-fault axis demonstrates
    /// the loss is real (a lazy-ack node that crash-reverts serves
    /// stale versions and breaks read-one protocols outright).
    pub fn durable_acks(mut self, durable: bool) -> Self {
        self.durable_acks = durable;
        self
    }

    /// Whether the node re-verifies a stored block's self-checksum
    /// before serving its bytes or folding a delta into it (default:
    /// `true`, overridable process-wide via `TQ_NODE_VERIFY`). With it
    /// on, a block whose bytes no longer match the checksum stamped at
    /// install time is answered with [`NodeError::Corrupt`] instead of
    /// served — readers treat that as an erasure of one shard and route
    /// around it, and a delta fold refuses to launder the corruption
    /// into the persisted parity.
    pub fn verify_reads(mut self, verify: bool) -> Self {
        self.verify_reads = verify;
        self
    }

    /// Builds the node.
    pub fn build(self) -> StorageNode {
        let backend = self
            .backend
            .unwrap_or_else(|| storage::default_backend(self.id.0));
        StorageNode {
            id: self.id,
            up: AtomicBool::new(true),
            backend,
            durable_acks: self.durable_acks,
            verify_reads: self.verify_reads,
            op_locks: (0..OP_LOCK_STRIPES).map(|_| Mutex::new(())).collect(),
            applied: Mutex::new(AppliedWindow::default()),
            stats: IoStats::new(),
        }
    }
}

/// The process-default for [`NodeBuilder::verify_reads`], from the
/// `TQ_NODE_VERIFY` environment variable: unset or `on` — verify;
/// `off` — serve without re-checking. Any other value panics loudly,
/// like `TQ_NODE_BACKEND`: a typo silently disabling the integrity net
/// would make CI's integrity leg report green without testing anything.
fn default_verify_reads() -> bool {
    match std::env::var("TQ_NODE_VERIFY") {
        Err(_) => true,
        Ok(v) if v == "on" => true,
        Ok(v) if v == "off" => false,
        Ok(other) => panic!("TQ_NODE_VERIFY={other:?} is not one of: on, off"),
    }
}

/// One storage server.
///
/// Thread-safe: request handling is serialised *per block* over striped
/// [`parking_lot::Mutex`] locks keyed by block-id hash, the fail-stop
/// switch is an atomic, and the backend is `Sync` — so the same node can
/// serve the direct transport, the channel transport and a TCP listener
/// interchangeably. Each block has exactly one serialisation point,
/// which matches the model (a node is a single failure domain;
/// per-block ordering is what the monotone guards need).
#[derive(Debug)]
pub struct StorageNode {
    id: NodeId,
    up: AtomicBool,
    backend: Arc<dyn StorageBackend>,
    durable_acks: bool,
    verify_reads: bool,
    op_locks: Vec<Mutex<()>>,
    applied: Mutex<AppliedWindow>,
    stats: IoStats,
}

impl StorageNode {
    /// Creates an empty, live node on the process-default backend
    /// (`TQ_NODE_BACKEND`; memory if unset).
    pub fn new(id: NodeId) -> Self {
        StorageNode::builder(id).build()
    }

    /// Starts building a node with an explicit backend choice.
    pub fn builder(id: NodeId) -> NodeBuilder {
        NodeBuilder {
            id,
            backend: None,
            durable_acks: true,
            verify_reads: default_verify_reads(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// `true` iff the node is live.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Flips the fail-stop switch. A down node rejects every request with
    /// [`NodeError::Down`]; its stored state is *retained* (fail-stop,
    /// not fail-erase) and becomes visible again on revival — which is
    /// exactly how stale replicas arise in the protocol's model.
    pub fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::Release);
    }

    /// Discards every stored block — models replacing the node's disk
    /// with a blank one (the node identity and counters survive; the
    /// applied-op window goes with the disk, as it is part of the same
    /// durability domain). The recovery workflows in `tq-trapezoid`
    /// rebuild wiped nodes from the surviving stripe.
    pub fn wipe(&self) {
        // A backend that cannot even clear is a dead disk; the node
        // keeps running empty either way (fail-stop comes from `up`).
        let _ = self.backend.clear();
        *self.applied.lock() = AppliedWindow::default();
    }

    /// Simulates a crash-restart of the node *process*: the backend
    /// recovers whatever its durability contract preserves (everything
    /// for the memory backend; the last-barrier prefix under the DST
    /// faulting wrapper; the fsync'd log prefix for a real reopened
    /// log), and the volatile applied-op window is lost. Losing the
    /// window is safe: redeliveries after a restart fall through to the
    /// monotone version guards (an already-applied parity fold carries
    /// a stale `expected_version` and is rejected, not re-applied).
    pub fn crash_restart(&self) {
        self.backend.crash_restart();
        *self.applied.lock() = AppliedWindow::default();
    }

    /// Forces the backend's durability barrier (fsync for the log
    /// backend). After `Ok(())`, every acknowledged mutation survives a
    /// crash.
    pub fn flush(&self) -> Result<(), StorageError> {
        self.backend.flush()
    }

    /// The storage backend this node runs on.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// IO counters snapshot.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    /// Number of objects stored (diagnostics).
    pub fn object_count(&self) -> usize {
        let mut n = 0;
        let _ = self.backend.scan(&mut |_, _| n += 1);
        n
    }

    /// Total payload bytes currently stored — the `D_used` of eqs. 14/15
    /// measured rather than predicted.
    pub fn stored_bytes(&self) -> usize {
        let mut total = 0;
        let _ = self.backend.scan(&mut |_, b| total += b.payload_len());
        total
    }

    fn op_lock(&self, id: BlockId) -> parking_lot::MutexGuard<'_, ()> {
        self.op_locks[storage::stripe_of(id) % OP_LOCK_STRIPES].lock()
    }

    /// A node whose disk *errors* is indistinguishable from a crashed
    /// node under the paper's fail-stop model — but a node whose disk
    /// served detectably corrupt bytes is something better: it is alive,
    /// knows which block is bad, and says so. Collapsing `Corrupt` into
    /// `Down` (the old behaviour) made readers mistake one rotten block
    /// for a crashed node and denied scrub its repair target.
    fn storage_fail(&self, e: StorageError) -> NodeError {
        self.stats.record_rejected();
        match e {
            StorageError::Corrupt { .. } => NodeError::Corrupt,
            StorageError::Io { .. } => NodeError::Down,
        }
    }

    /// Reads a block for a byte-serving or byte-folding operation: with
    /// [`NodeBuilder::verify_reads`] on (the default), the payload is
    /// re-checked against the self-checksum stamped at install time, and
    /// a mismatch surfaces as [`NodeError::Corrupt`] instead of handing
    /// rotten bytes to the caller (or folding them into fresh parity).
    fn load_verified(&self, id: BlockId) -> Result<Option<StoredBlock>, NodeError> {
        let block = self.backend.get(id).map_err(|e| self.storage_fail(e))?;
        if self.verify_reads {
            if let Some(b) = &block {
                if !b.self_check_ok() {
                    return Err(self.storage_fail(StorageError::Corrupt {
                        detail: "stored block fails its self-checksum",
                    }));
                }
            }
        }
        Ok(block)
    }

    /// Installs a mutation and, under durable acks (the default), forces
    /// the durability barrier before the caller sees the acknowledgement
    /// — so a crash-restart can only ever lose mutations whose acks were
    /// never sent. The quorum layers count a write committed once a
    /// quorum acked it; without this barrier a lazy backend could revert
    /// an acked version and hand a read-one protocol a stale version to
    /// build on (the exact violation the DST storage-fault axis finds).
    fn put_acked(&self, id: BlockId, block: StoredBlock) -> Result<(), NodeError> {
        self.backend
            .put(id, block)
            .map_err(|e| self.storage_fail(e))?;
        if self.durable_acks {
            self.backend.flush().map_err(|e| self.storage_fail(e))?;
        }
        Ok(())
    }

    /// Handles one bare request, honouring the fail-stop switch.
    ///
    /// This is the payload-level entry point ([`NodeApi::execute`] wraps
    /// it with the applied-op window): all the monotone conditional
    /// semantics live here, so even envelope-less callers get
    /// idempotent, never-regressing mutations.
    pub fn handle(&self, req: Request) -> Result<Response, NodeError> {
        if !self.is_up() {
            self.stats.record_rejected();
            return Err(NodeError::Down);
        }
        match req {
            Request::Ping => Ok(Response::Pong),
            Request::InitData { id, bytes } => {
                let _guard = self.op_lock(id);
                match self.backend.get(id).map_err(|e| self.storage_fail(e))? {
                    // First-wins: a redelivered create must not reset a
                    // block that has been written since.
                    Some(StoredBlock::Data { .. }) => Ok(Response::Ack),
                    Some(StoredBlock::Parity { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_write(bytes.len());
                        // Zero-copy install: the request payload becomes
                        // the stored block (the self-checksum stamp reads
                        // it once, copies nothing).
                        self.put_acked(id, StoredBlock::new_data(0, bytes))?;
                        Ok(Response::Ack)
                    }
                }
            }
            Request::InitParity {
                id,
                bytes,
                k,
                checks,
            } => {
                let _guard = self.op_lock(id);
                match self.backend.get(id).map_err(|e| self.storage_fail(e))? {
                    Some(StoredBlock::Parity { .. }) => Ok(Response::Ack),
                    Some(StoredBlock::Data { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_write(bytes.len());
                        // A malformed vector is stored as "unknown"
                        // rather than rejected: the block itself is fine,
                        // only the integrity metadata is missing.
                        let checks = if checks.len() == k {
                            checks
                        } else {
                            Vec::new()
                        };
                        self.put_acked(id, StoredBlock::new_parity(vec![0; k], bytes, checks))?;
                        Ok(Response::Ack)
                    }
                }
            }
            Request::ReadData { id } => {
                let _guard = self.op_lock(id);
                match self.load_verified(id)? {
                    Some(StoredBlock::Data {
                        version,
                        bytes,
                        check,
                    }) => {
                        self.stats.record_read(bytes.len());
                        // Refcounted clone of the stored allocation; the
                        // reply shares the block instead of copying it.
                        Ok(Response::Data {
                            bytes,
                            version,
                            check,
                        })
                    }
                    Some(StoredBlock::Parity { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
            Request::WriteData { id, bytes, version } => {
                let _guard = self.op_lock(id);
                match self.backend.get(id).map_err(|e| self.storage_fail(e))? {
                    Some(StoredBlock::Data {
                        version: stored_version,
                        bytes: stored,
                        ..
                    }) => {
                        if stored.len() != bytes.len() {
                            self.stats.record_rejected();
                            return Err(NodeError::SizeMismatch {
                                stored: stored.len(),
                                got: bytes.len(),
                            });
                        }
                        // Compare-and-advance: the version never
                        // regresses. A stale delivery acks idempotently —
                        // its write is durably superseded by what the
                        // node already holds.
                        if version < stored_version {
                            return Ok(Response::Ack);
                        }
                        self.stats.record_write(bytes.len());
                        // Zero-copy: the request payload replaces the
                        // stored allocation outright.
                        self.put_acked(id, StoredBlock::new_data(version, bytes))?;
                        Ok(Response::Ack)
                    }
                    Some(StoredBlock::Parity { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
            Request::VersionData { id } => {
                let _guard = self.op_lock(id);
                match self.backend.get(id).map_err(|e| self.storage_fail(e))? {
                    Some(StoredBlock::Data { version, .. }) => {
                        self.stats.record_version_query();
                        Ok(Response::Version(version))
                    }
                    Some(StoredBlock::Parity { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
            Request::VersionVector { id } => {
                let _guard = self.op_lock(id);
                match self.backend.get(id).map_err(|e| self.storage_fail(e))? {
                    Some(StoredBlock::Parity { versions, .. }) => {
                        self.stats.record_version_query();
                        Ok(Response::Versions(versions))
                    }
                    Some(StoredBlock::Data { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
            Request::ReadParity { id } => {
                let _guard = self.op_lock(id);
                match self.load_verified(id)? {
                    Some(StoredBlock::Parity {
                        versions,
                        bytes,
                        checks,
                        ..
                    }) => {
                        self.stats.record_read(bytes.len());
                        Ok(Response::Parity {
                            bytes,
                            versions,
                            checks,
                        })
                    }
                    Some(StoredBlock::Data { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
            Request::WriteParity {
                id,
                bytes,
                versions,
                checks,
            } => {
                let _guard = self.op_lock(id);
                match self.backend.get(id).map_err(|e| self.storage_fail(e))? {
                    Some(StoredBlock::Parity {
                        versions: stored_versions,
                        bytes: stored,
                        ..
                    }) => {
                        if stored.len() != bytes.len() {
                            self.stats.record_rejected();
                            return Err(NodeError::SizeMismatch {
                                stored: stored.len(),
                                got: bytes.len(),
                            });
                        }
                        if stored_versions.len() != versions.len() {
                            self.stats.record_rejected();
                            return Err(NodeError::BadBlockIndex {
                                index: versions.len(),
                                k: stored_versions.len(),
                            });
                        }
                        // Monotone vector rule: apply iff the request
                        // dominates-or-equals the stored vector. A
                        // strictly dominated (stale) delivery acks
                        // without touching state; an incomparable one is
                        // a conflict — applying it would regress the
                        // entries where the node is newer.
                        let request_newer_somewhere = versions
                            .iter()
                            .zip(stored_versions.iter())
                            .any(|(got, stored)| got > stored);
                        // Capture the conflicting entries during the scan:
                        // the serve path stays free of slice indexing.
                        let node_newer_at = versions
                            .iter()
                            .zip(stored_versions.iter())
                            .enumerate()
                            .find(|(_, (got, stored))| got < stored)
                            .map(|(index, (got, stored))| (index, *got, *stored));
                        match (request_newer_somewhere, node_newer_at) {
                            (true, Some((index, got, stored))) => {
                                self.stats.record_rejected();
                                return Err(NodeError::VectorConflict { index, got, stored });
                            }
                            (false, Some(_)) => return Ok(Response::Ack),
                            // Equal vectors re-apply: the bytes are the
                            // same reconstruction, and re-applying heals
                            // any byte divergence at matching versions.
                            _ => {}
                        }
                        self.stats.record_write(bytes.len());
                        let checks = if checks.len() == versions.len() {
                            checks
                        } else {
                            Vec::new()
                        };
                        self.put_acked(id, StoredBlock::new_parity(versions, bytes, checks))?;
                        Ok(Response::Ack)
                    }
                    Some(StoredBlock::Data { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
            Request::AddParity {
                id,
                block_index,
                delta,
                coeff,
                expected_version,
                new_version,
                new_check,
            } => {
                let _guard = self.op_lock(id);
                // Verified load: folding a rotten parity block would
                // launder transient read corruption into durable state.
                match self.load_verified(id)? {
                    Some(StoredBlock::Parity {
                        mut versions,
                        bytes,
                        mut checks,
                        ..
                    }) => {
                        // Bounds check and entry read in one step; the
                        // serve path never indexes.
                        let Some(&current_version) = versions.get(block_index) else {
                            self.stats.record_rejected();
                            return Err(NodeError::BadBlockIndex {
                                index: block_index,
                                k: versions.len(),
                            });
                        };
                        if bytes.len() != delta.len() {
                            self.stats.record_rejected();
                            return Err(NodeError::SizeMismatch {
                                stored: bytes.len(),
                                got: delta.len(),
                            });
                        }
                        // Algorithm 1's guard: fold the delta only if this
                        // node's V entry matches the version the writer
                        // read — otherwise this parity missed an earlier
                        // update of the block (or already folded a
                        // competing one) and must stay put rather than
                        // corrupt. Exact redeliveries never reach this
                        // point: the applied-op window absorbs them.
                        if current_version != expected_version {
                            self.stats.record_rejected();
                            return Err(NodeError::VersionConflict {
                                expected: expected_version,
                                actual: current_version,
                            });
                        }
                        self.stats.record_parity_add(delta.len());
                        // The fold produces a new value, so this is the
                        // one mutation that materialises a fresh block —
                        // exactly one buffer, built by a single pass of
                        // the dispatched kernel: plain XOR for a
                        // pre-scaled delta (coeff 1), fused scale-and-add
                        // otherwise. The writer sends the *raw* delta
                        // once and lets each parity node scale by its own
                        // α_{j,i} in place, instead of materialising a
                        // scaled copy per parity member.
                        let mut folded = bytes.to_vec();
                        if coeff == 1 {
                            tq_gf256::slice_ops::add_assign(&mut folded, &delta);
                        } else {
                            tq_gf256::slice_ops::mul_add_slice(
                                tq_gf256::Gf256(coeff),
                                &delta,
                                &mut folded,
                            );
                        }
                        if let Some(slot) = versions.get_mut(block_index) {
                            *slot = new_version;
                        }
                        // Carry the cross-checksum vector forward: the
                        // folded block's entry becomes the writer's
                        // post-write checksum. An unchecksummed delta
                        // invalidates the vector — better unknown than
                        // stale.
                        match new_check {
                            Some(nc) if checks.len() == versions.len() => {
                                if let Some(slot) = checks.get_mut(block_index) {
                                    *slot = nc;
                                }
                            }
                            _ => checks = Vec::new(),
                        }
                        self.put_acked(
                            id,
                            StoredBlock::new_parity(versions, Bytes::from(folded), checks),
                        )?;
                        Ok(Response::Ack)
                    }
                    Some(StoredBlock::Data { .. }) => {
                        self.stats.record_rejected();
                        Err(NodeError::WrongKind)
                    }
                    None => {
                        self.stats.record_rejected();
                        Err(NodeError::NotFound)
                    }
                }
            }
        }
    }
}

impl NodeApi for StorageNode {
    /// Executes one enveloped command with exact-duplicate absorption:
    /// a mutation whose [`OpId`] was already applied acknowledges from
    /// the window without re-executing (vital for the non-idempotent
    /// parity fold), everything else runs through [`StorageNode::handle`].
    fn execute(&self, env: Envelope) -> Reply {
        let Envelope {
            op_id,
            round_epoch,
            lane: _,
            payload,
        } = env;
        let reply = |result| Reply {
            op_id,
            round_epoch,
            result,
        };
        if !self.is_up() {
            self.stats.record_rejected();
            return reply(Err(NodeError::Down));
        }
        let mutation = payload.is_mutation();
        if mutation && self.applied.lock().contains(op_id) {
            return reply(Ok(Response::Ack));
        }
        let result = self.handle(payload);
        if mutation && result.is_ok() {
            self.applied.lock().remember(op_id);
        }
        reply(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryBackend;

    fn node() -> StorageNode {
        // Pin the memory backend: these tests assert exact IO counters
        // and must not vary under TQ_NODE_BACKEND.
        StorageNode::builder(NodeId(0))
            .backend(Arc::new(MemoryBackend::new()))
            .build()
    }

    #[test]
    fn ping_and_fail_stop() {
        let n = node();
        assert_eq!(n.handle(Request::Ping), Ok(Response::Pong));
        n.set_up(false);
        assert_eq!(n.handle(Request::Ping), Err(NodeError::Down));
        n.set_up(true);
        assert_eq!(n.handle(Request::Ping), Ok(Response::Pong));
    }

    #[test]
    fn data_block_lifecycle() {
        let n = node();
        n.handle(Request::InitData {
            id: 7,
            bytes: Bytes::from_static(b"hello world!"),
        })
        .unwrap();
        // Fresh block: version 0.
        assert_eq!(
            n.handle(Request::VersionData { id: 7 }),
            Ok(Response::Version(0))
        );
        // Overwrite with version 1.
        n.handle(Request::WriteData {
            id: 7,
            bytes: Bytes::from_static(b"HELLO WORLD!"),
            version: 1,
        })
        .unwrap();
        match n.handle(Request::ReadData { id: 7 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"HELLO WORLD!");
                assert_eq!(version, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn init_is_first_wins() {
        let n = node();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"orig"),
        })
        .unwrap();
        n.handle(Request::WriteData {
            id: 1,
            bytes: Bytes::from_static(b"newb"),
            version: 3,
        })
        .unwrap();
        // A redelivered create acks but must not reset the block.
        assert_eq!(
            n.handle(Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"orig"),
            }),
            Ok(Response::Ack)
        );
        match n.handle(Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"newb");
                assert_eq!(version, 3, "create must not clobber a written block");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Same for parity.
        n.handle(Request::InitParity {
            id: 2,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 2,
            checks: vec![],
        })
        .unwrap();
        n.handle(Request::AddParity {
            id: 2,
            block_index: 0,
            delta: Bytes::from(vec![1u8; 4]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: None,
        })
        .unwrap();
        assert_eq!(
            n.handle(Request::InitParity {
                id: 2,
                bytes: Bytes::from(vec![0u8; 4]),
                k: 2,
                checks: vec![],
            }),
            Ok(Response::Ack)
        );
        match n.handle(Request::ReadParity { id: 2 }).unwrap() {
            Response::Parity { versions, .. } => assert_eq!(versions, vec![1, 0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_write_acks_without_clobbering() {
        let n = node();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"v0.."),
        })
        .unwrap();
        n.handle(Request::WriteData {
            id: 1,
            bytes: Bytes::from_static(b"v5.."),
            version: 5,
        })
        .unwrap();
        // A stale delivery (redelivered old write) acks idempotently.
        assert_eq!(
            n.handle(Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"v2.."),
                version: 2,
            }),
            Ok(Response::Ack)
        );
        match n.handle(Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"v5..", "stale write must not clobber");
                assert_eq!(version, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Equal-version delivery re-applies (a redelivery carries the
        // same bytes, so this is a no-op; a competing same-version write
        // converges on the last applied — and residue makes that legal).
        n.handle(Request::WriteData {
            id: 1,
            bytes: Bytes::from_static(b"V5!."),
            version: 5,
        })
        .unwrap();
        match n.handle(Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"V5!.");
                assert_eq!(version, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_rejects_size_change() {
        let n = node();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"abcd"),
        })
        .unwrap();
        assert_eq!(
            n.handle(Request::WriteData {
                id: 1,
                bytes: Bytes::from_static(b"toolong"),
                version: 1
            }),
            Err(NodeError::SizeMismatch { stored: 4, got: 7 })
        );
    }

    #[test]
    fn missing_block_not_found() {
        let n = node();
        assert_eq!(
            n.handle(Request::ReadData { id: 9 }),
            Err(NodeError::NotFound)
        );
        assert_eq!(
            n.handle(Request::VersionData { id: 9 }),
            Err(NodeError::NotFound)
        );
    }

    #[test]
    fn kind_mismatch_rejected() {
        let n = node();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"data"),
        })
        .unwrap();
        n.handle(Request::InitParity {
            id: 2,
            bytes: Bytes::from_static(b"par!"),
            k: 3,
            checks: vec![],
        })
        .unwrap();
        assert_eq!(
            n.handle(Request::VersionVector { id: 1 }),
            Err(NodeError::WrongKind)
        );
        assert_eq!(
            n.handle(Request::ReadData { id: 2 }),
            Err(NodeError::WrongKind)
        );
        assert_eq!(
            n.handle(Request::WriteData {
                id: 2,
                bytes: Bytes::from_static(b"xxxx"),
                version: 1
            }),
            Err(NodeError::WrongKind)
        );
        assert_eq!(
            n.handle(Request::InitData {
                id: 2,
                bytes: Bytes::from_static(b"data"),
            }),
            Err(NodeError::WrongKind)
        );
        assert_eq!(
            n.handle(Request::InitParity {
                id: 1,
                bytes: Bytes::from_static(b"par!"),
                k: 3,
                checks: vec![],
            }),
            Err(NodeError::WrongKind)
        );
    }

    #[test]
    fn parity_add_guarded_by_version() {
        let n = node();
        n.handle(Request::InitParity {
            id: 3,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 2,
            checks: vec![],
        })
        .unwrap();
        // Fold a delta for block 1 at expected version 0.
        n.handle(Request::AddParity {
            id: 3,
            block_index: 1,
            delta: Bytes::from(vec![0xFF, 0x00, 0xFF, 0x00]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: None,
        })
        .unwrap();
        match n.handle(Request::ReadParity { id: 3 }).unwrap() {
            Response::Parity {
                bytes, versions, ..
            } => {
                assert_eq!(&bytes[..], &[0xFF, 0x00, 0xFF, 0x00]);
                assert_eq!(versions, vec![0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Replaying the same delta through the *bare* payload path must
        // hit the guard (the enveloped path absorbs it — see
        // `execute_absorbs_exact_duplicates`).
        assert_eq!(
            n.handle(Request::AddParity {
                id: 3,
                block_index: 1,
                delta: Bytes::from(vec![0xFF, 0x00, 0xFF, 0x00]),
                expected_version: 0,
                new_version: 1,
                coeff: 1,
                new_check: None,
            }),
            Err(NodeError::VersionConflict {
                expected: 0,
                actual: 1
            })
        );
        // Bad index and bad size.
        assert_eq!(
            n.handle(Request::AddParity {
                id: 3,
                block_index: 5,
                delta: Bytes::from(vec![0; 4]),
                expected_version: 0,
                new_version: 1,
                coeff: 1,
                new_check: None,
            }),
            Err(NodeError::BadBlockIndex { index: 5, k: 2 })
        );
        assert_eq!(
            n.handle(Request::AddParity {
                id: 3,
                block_index: 0,
                delta: Bytes::from(vec![0; 2]),
                expected_version: 0,
                new_version: 1,
                coeff: 1,
                new_check: None,
            }),
            Err(NodeError::SizeMismatch { stored: 4, got: 2 })
        );
    }

    #[test]
    fn write_parity_replaces_state_monotonically() {
        let n = node();
        n.handle(Request::InitParity {
            id: 4,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 3,
            checks: vec![],
        })
        .unwrap();
        n.handle(Request::WriteParity {
            id: 4,
            bytes: Bytes::from(vec![9u8; 4]),
            versions: vec![5, 6, 7],
            checks: vec![],
        })
        .unwrap();
        match n.handle(Request::ReadParity { id: 4 }).unwrap() {
            Response::Parity {
                bytes, versions, ..
            } => {
                assert_eq!(&bytes[..], &[9, 9, 9, 9]);
                assert_eq!(versions, vec![5, 6, 7]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A strictly dominated (stale) repair acks without regressing.
        assert_eq!(
            n.handle(Request::WriteParity {
                id: 4,
                bytes: Bytes::from(vec![1u8; 4]),
                versions: vec![4, 6, 7],
                checks: vec![],
            }),
            Ok(Response::Ack)
        );
        match n.handle(Request::ReadParity { id: 4 }).unwrap() {
            Response::Parity {
                bytes, versions, ..
            } => {
                assert_eq!(&bytes[..], &[9, 9, 9, 9], "stale repair must not apply");
                assert_eq!(versions, vec![5, 6, 7]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // An incomparable vector is a conflict, not a partial regression.
        assert_eq!(
            n.handle(Request::WriteParity {
                id: 4,
                bytes: Bytes::from(vec![2u8; 4]),
                versions: vec![6, 5, 7],
                checks: vec![],
            }),
            Err(NodeError::VectorConflict {
                index: 1,
                got: 5,
                stored: 6
            })
        );
        // A dominating repair applies.
        n.handle(Request::WriteParity {
            id: 4,
            bytes: Bytes::from(vec![3u8; 4]),
            versions: vec![6, 6, 8],
            checks: vec![],
        })
        .unwrap();
        match n.handle(Request::ReadParity { id: 4 }).unwrap() {
            Response::Parity {
                bytes, versions, ..
            } => {
                assert_eq!(&bytes[..], &[3, 3, 3, 3]);
                assert_eq!(versions, vec![6, 6, 8]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Size and vector-length guards.
        assert_eq!(
            n.handle(Request::WriteParity {
                id: 4,
                bytes: Bytes::from(vec![0u8; 2]),
                versions: vec![9, 9, 9],
                checks: vec![],
            }),
            Err(NodeError::SizeMismatch { stored: 4, got: 2 })
        );
        assert_eq!(
            n.handle(Request::WriteParity {
                id: 4,
                bytes: Bytes::from(vec![0u8; 4]),
                versions: vec![9, 9],
                checks: vec![],
            }),
            Err(NodeError::BadBlockIndex { index: 2, k: 3 })
        );
        // Wrong kind.
        n.handle(Request::InitData {
            id: 5,
            bytes: Bytes::from_static(b"data"),
        })
        .unwrap();
        assert_eq!(
            n.handle(Request::WriteParity {
                id: 5,
                bytes: Bytes::from(vec![0u8; 4]),
                versions: vec![0],
                checks: vec![],
            }),
            Err(NodeError::WrongKind)
        );
    }

    #[test]
    fn execute_absorbs_exact_duplicates() {
        let n = node();
        n.execute(Envelope::new(Request::InitParity {
            id: 1,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 2,
            checks: vec![],
        }));
        let fold = Envelope::new(Request::AddParity {
            id: 1,
            block_index: 0,
            delta: Bytes::from(vec![0xFFu8; 4]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: None,
        });
        assert_eq!(n.execute(fold.clone()).result, Ok(Response::Ack));
        // Redelivering the same envelope: recorded ack, no second fold
        // (a second XOR would cancel the first).
        assert_eq!(n.execute(fold.clone()).result, Ok(Response::Ack));
        assert_eq!(n.execute(fold).result, Ok(Response::Ack));
        match n
            .execute(Envelope::new(Request::ReadParity { id: 1 }))
            .result
        {
            Ok(Response::Parity {
                bytes, versions, ..
            }) => {
                assert_eq!(&bytes[..], &[0xFF; 4], "the fold applied exactly once");
                assert_eq!(versions, vec![1, 0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A *distinct* envelope with the same transition hits the guard.
        let competing = Envelope::new(Request::AddParity {
            id: 1,
            block_index: 0,
            delta: Bytes::from(vec![0x0Fu8; 4]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: None,
        });
        assert_eq!(
            n.execute(competing).result,
            Err(NodeError::VersionConflict {
                expected: 0,
                actual: 1
            })
        );
    }

    #[test]
    fn execute_rejects_when_down_even_for_applied_ops() {
        let n = node();
        n.execute(Envelope::new(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"x"),
        }));
        let write = Envelope::new(Request::WriteData {
            id: 1,
            bytes: Bytes::from_static(b"y"),
            version: 1,
        });
        assert_eq!(n.execute(write.clone()).result, Ok(Response::Ack));
        n.set_up(false);
        assert_eq!(n.execute(write).result, Err(NodeError::Down));
    }

    #[test]
    fn wipe_clears_the_applied_window() {
        let n = node();
        let init = Envelope::new(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"x"),
        });
        assert_eq!(n.execute(init.clone()).result, Ok(Response::Ack));
        n.wipe();
        // After the disk is gone the op id is forgotten with it: the
        // redelivered create re-installs (first-wins on an empty disk).
        assert_eq!(n.execute(init).result, Ok(Response::Ack));
        assert_eq!(n.object_count(), 1);
    }

    #[test]
    fn down_node_keeps_state() {
        let n = node();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"persist"),
        })
        .unwrap();
        n.set_up(false);
        assert_eq!(n.handle(Request::ReadData { id: 1 }), Err(NodeError::Down));
        n.set_up(true);
        match n.handle(Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, version, .. } => {
                assert_eq!(&bytes[..], b"persist");
                assert_eq!(version, 0, "state survives fail-stop");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_and_storage_accounting() {
        let n = node();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from(vec![0u8; 100]),
        })
        .unwrap();
        n.handle(Request::InitParity {
            id: 2,
            bytes: Bytes::from(vec![0u8; 25]),
            k: 4,
            checks: vec![],
        })
        .unwrap();
        assert_eq!(n.object_count(), 2);
        assert_eq!(n.stored_bytes(), 125);
        n.handle(Request::ReadData { id: 1 }).unwrap();
        let snap = n.io_snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.bytes_out, 100);
    }

    #[test]
    fn durable_acks_survive_crash_reverts_and_lazy_acks_do_not() {
        use crate::storage::{FaultingBackend, StorageFaults};
        // A disk that never reaches an automatic fsync barrier: only the
        // node's own flush-before-ack can make anything durable.
        let lazy_disk = StorageFaults {
            sync_every: u64::MAX,
            fsync_fail_p: 0,
            slow_read_p: 0,
            slow_read_max_ticks: 0,
            corrupt_read_p: 0,
            misdirect_read_p: 0,
        };
        let build = |durable| {
            StorageNode::builder(NodeId(0))
                .backend(Arc::new(FaultingBackend::new(
                    Arc::new(MemoryBackend::new()),
                    lazy_disk,
                    11,
                )))
                .durable_acks(durable)
                .build()
        };
        let write = |n: &StorageNode| {
            n.handle(Request::InitData {
                id: 1,
                bytes: Bytes::from_static(b"acked"),
            })
            .unwrap();
        };

        // Default discipline: the ack implies durability, so the
        // crash-revert recovers exactly what was acknowledged.
        let durable = build(true);
        write(&durable);
        durable.crash_restart();
        assert!(
            matches!(
                durable.handle(Request::ReadData { id: 1 }),
                Ok(Response::Data { .. })
            ),
            "a durable-ack node must not lose an acknowledged write"
        );

        // Lazy acks: the same acknowledged write silently vanishes — the
        // failure mode the DST storage-fault axis exists to catch (a
        // reverted replica serves stale state and read-one protocols
        // build on it).
        let lazy = build(false);
        write(&lazy);
        lazy.crash_restart();
        assert_eq!(
            lazy.handle(Request::ReadData { id: 1 }),
            Err(NodeError::NotFound),
            "without durable acks the acked write is lost to the revert"
        );
    }

    #[test]
    fn crash_restart_on_memory_backend_keeps_state_but_drops_window() {
        let n = node();
        let fold_setup = Envelope::new(Request::InitParity {
            id: 1,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 1,
            checks: vec![],
        });
        n.execute(fold_setup);
        let fold = Envelope::new(Request::AddParity {
            id: 1,
            block_index: 0,
            delta: Bytes::from(vec![0xFFu8; 4]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: None,
        });
        assert_eq!(n.execute(fold.clone()).result, Ok(Response::Ack));
        n.crash_restart();
        // The memory backend "recovers" everything; the volatile applied
        // window is gone, so the redelivered fold falls through to the
        // version guard — rejected, not double-applied.
        assert_eq!(
            n.execute(fold).result,
            Err(NodeError::VersionConflict {
                expected: 0,
                actual: 1
            })
        );
    }

    /// Installs a data block whose stored bytes were tampered with after
    /// the self-checksum was stamped, bypassing the node's write path.
    fn tampered_node(verify: bool) -> StorageNode {
        let n = StorageNode::builder(NodeId(0))
            .backend(Arc::new(MemoryBackend::new()))
            .verify_reads(verify)
            .build();
        n.handle(Request::InitData {
            id: 1,
            bytes: Bytes::from_static(b"good bytes"),
        })
        .unwrap();
        let block = match n.backend().get(1).unwrap().unwrap() {
            StoredBlock::Data { version, check, .. } => StoredBlock::Data {
                version,
                bytes: Bytes::from_static(b"evil bytes"),
                check,
            },
            other => panic!("{other:?}"),
        };
        n.backend().put(1, block).unwrap();
        n
    }

    #[test]
    fn verifying_node_reports_tampered_blocks_as_corrupt() {
        let n = tampered_node(true);
        assert_eq!(
            n.handle(Request::ReadData { id: 1 }),
            Err(NodeError::Corrupt)
        );
        // Version queries don't touch the payload and still serve.
        assert_eq!(
            n.handle(Request::VersionData { id: 1 }),
            Ok(Response::Version(0))
        );
        // A full overwrite re-stamps the checksum and heals the block.
        n.handle(Request::WriteData {
            id: 1,
            bytes: Bytes::from_static(b"laundered!"),
            version: 1,
        })
        .unwrap();
        match n.handle(Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, check, .. } => {
                assert_eq!(&bytes[..], b"laundered!");
                assert_eq!(check, tq_gf256::check::block_check(b"laundered!"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unverifying_node_serves_tampered_bytes_with_mismatched_check() {
        // With verification off the node stays fast and dumb — but the
        // served self-check still lets the *client* catch the mismatch.
        let n = tampered_node(false);
        match n.handle(Request::ReadData { id: 1 }).unwrap() {
            Response::Data { bytes, check, .. } => {
                assert_eq!(&bytes[..], b"evil bytes");
                assert_ne!(check, tq_gf256::check::block_check(&bytes));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_parity_refuses_delta_folds() {
        let n = StorageNode::builder(NodeId(0))
            .backend(Arc::new(MemoryBackend::new()))
            .verify_reads(true)
            .build();
        n.handle(Request::InitParity {
            id: 2,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 1,
            checks: vec![],
        })
        .unwrap();
        let block = match n.backend().get(2).unwrap().unwrap() {
            StoredBlock::Parity {
                versions,
                check,
                checks,
                ..
            } => StoredBlock::Parity {
                versions,
                bytes: Bytes::from(vec![9u8; 4]),
                check,
                checks,
            },
            other => panic!("{other:?}"),
        };
        n.backend().put(2, block).unwrap();
        // Folding into rotted parity would persist garbage forever;
        // the verify gate turns it into a typed refusal instead.
        assert_eq!(
            n.handle(Request::AddParity {
                id: 2,
                block_index: 0,
                delta: Bytes::from(vec![1u8; 4]),
                expected_version: 0,
                new_version: 1,
                coeff: 1,
                new_check: None,
            }),
            Err(NodeError::Corrupt)
        );
    }

    #[test]
    fn fused_coefficient_fold_matches_prescaled_fold() {
        let raw = [0x13u8, 0x55, 0x00, 0xFE];
        let coeff = 0x47u8;
        let mut prescaled = vec![0u8; 4];
        tq_gf256::slice_ops::mul_add_slice(tq_gf256::Gf256(coeff), &raw, &mut prescaled);

        let run = |delta: Bytes, coeff: u8| {
            let n = node();
            n.handle(Request::InitParity {
                id: 3,
                bytes: Bytes::from(vec![0u8; 4]),
                k: 2,
                checks: vec![],
            })
            .unwrap();
            n.handle(Request::AddParity {
                id: 3,
                block_index: 1,
                delta,
                expected_version: 0,
                new_version: 1,
                coeff,
                new_check: None,
            })
            .unwrap();
            match n.handle(Request::ReadParity { id: 3 }).unwrap() {
                Response::Parity { bytes, .. } => bytes,
                other => panic!("{other:?}"),
            }
        };

        let legacy = run(Bytes::from(prescaled), 1);
        let fused = run(Bytes::copy_from_slice(&raw), coeff);
        assert_eq!(legacy, fused, "node-side scaling must equal client-side");
    }

    #[test]
    fn add_parity_with_check_maintains_the_stored_vector() {
        let n = node();
        n.handle(Request::InitParity {
            id: 4,
            bytes: Bytes::from(vec![0u8; 4]),
            k: 2,
            checks: vec![11, 22],
        })
        .unwrap();
        n.handle(Request::AddParity {
            id: 4,
            block_index: 1,
            delta: Bytes::from(vec![1u8; 4]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: Some(99),
        })
        .unwrap();
        match n.handle(Request::ReadParity { id: 4 }).unwrap() {
            Response::Parity { checks, .. } => assert_eq!(checks, vec![11, 99]),
            other => panic!("{other:?}"),
        }
        // An unchecksummed writer invalidates the vector rather than
        // letting it go silently stale.
        n.handle(Request::AddParity {
            id: 4,
            block_index: 0,
            delta: Bytes::from(vec![2u8; 4]),
            expected_version: 0,
            new_version: 1,
            coeff: 1,
            new_check: None,
        })
        .unwrap();
        match n.handle(Request::ReadParity { id: 4 }).unwrap() {
            Response::Parity { checks, .. } => assert!(checks.is_empty()),
            other => panic!("{other:?}"),
        }
    }
}
