//! Pluggable node storage: the [`StorageBackend`] seam under
//! [`StorageNode`](crate::node::StorageNode).
//!
//! The node's command semantics (monotone guards, applied-op window,
//! fail-stop switch) live in `node.rs` and are backend-agnostic; this
//! module supplies what they sit on:
//!
//! * [`MemoryBackend`] — the original 16-way-striped in-memory block
//!   map. Zero durability, maximum speed; the default, and what the
//!   simulation uses.
//! * [`AppendLogBackend`] — a crash-safe append-only log. Every put and
//!   delete is one checksummed record; recovery replays the log and
//!   truncates a torn tail; an [`FsyncPolicy`] knob trades latency for
//!   the durability horizon; compaction rewrites the log once dead
//!   records dominate.
//! * [`FaultingBackend`] — a deterministic fault-injection wrapper for
//!   the DST storage-fault axis: it models the *recovery-visible* state
//!   space of a real disk (an fsync barrier that may silently be
//!   delayed, crash-restart reverting to the last barrier, seeded slow
//!   reads surfacing as virtual-time stall ticks).
//!
//! Backends are selected per node via
//! [`StorageNode::builder`](crate::node::StorageNode::builder); the
//! `TQ_NODE_BACKEND` environment variable switches the *default* for
//! nodes built without an explicit choice (`memory` | `applog`), which
//! is how CI runs the whole integration suite against both.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::detmap::DetHashMap;
use crate::rpc::BlockId;
use crate::wire::crc32;

/// What one node stores for one object.
///
/// Blocks are held as refcounted [`Bytes`]: an install *moves* the
/// request's payload into the store (no copy), and a read hands out a
/// clone of the stored allocation (an `Arc` bump). The only place block
/// bytes are materialised anew is the parity fold, which must produce a
/// different value anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredBlock {
    /// A full data block `b_i` with its version (the paper's data nodes).
    Data {
        /// Current version of the block.
        version: u64,
        /// Block contents.
        bytes: Bytes,
        /// Node-computed self-checksum of `bytes`
        /// ([`tq_gf256::check::block_check`]), stamped at install time.
        /// A serving-time mismatch means the stored bytes rotted under
        /// the node — surfaced as [`StorageError::Corrupt`].
        check: u64,
    },
    /// A parity block `b_j = Σ α_{j,i}·b_i` with its column of the
    /// version matrix V: `versions[i]` is the version of block `i`'s
    /// contribution currently folded into `bytes`.
    Parity {
        /// Version per tracked data block.
        versions: Vec<u64>,
        /// Parity contents.
        bytes: Bytes,
        /// Node-computed self-checksum of `bytes`, as for `Data`.
        check: u64,
        /// Writer-supplied cross-checksum vector: entry `i` is the
        /// checksum of data block `i`'s contribution currently folded
        /// into `bytes`. Empty means unknown (legacy record or an
        /// uncheckummed delta landed) — readers skip cross-verification
        /// for this replica, the self-`check` still applies.
        checks: Vec<u64>,
    },
}

impl StoredBlock {
    /// Builds a data block, stamping the self-checksum from `bytes`.
    pub fn new_data(version: u64, bytes: Bytes) -> Self {
        let check = tq_gf256::check::block_check(&bytes);
        StoredBlock::Data {
            version,
            bytes,
            check,
        }
    }

    /// Builds a parity block, stamping the self-checksum from `bytes`.
    pub fn new_parity(versions: Vec<u64>, bytes: Bytes, checks: Vec<u64>) -> Self {
        let check = tq_gf256::check::block_check(&bytes);
        StoredBlock::Parity {
            versions,
            bytes,
            check,
            checks,
        }
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        match self {
            StoredBlock::Data { bytes, .. } | StoredBlock::Parity { bytes, .. } => bytes.len(),
        }
    }

    /// The stamped self-checksum.
    pub fn self_check(&self) -> u64 {
        match self {
            StoredBlock::Data { check, .. } | StoredBlock::Parity { check, .. } => *check,
        }
    }

    /// Recomputes the payload checksum and compares it to the stamp.
    /// `false` means the bytes no longer match what was installed.
    pub fn self_check_ok(&self) -> bool {
        match self {
            StoredBlock::Data { bytes, check, .. } | StoredBlock::Parity { bytes, check, .. } => {
                tq_gf256::check::block_check(bytes) == *check
            }
        }
    }
}

/// Why a storage operation failed.
///
/// The node maps `Io` failures to fail-stop behaviour
/// ([`NodeError::Down`](crate::rpc::NodeError::Down)): a node whose disk
/// errors is indistinguishable from a crashed node under the paper's
/// model. `Corrupt` is different — the node *knows* it holds rotten
/// bytes, and says so
/// ([`NodeError::Corrupt`](crate::rpc::NodeError::Corrupt)) so readers
/// treat the reply as an erasure and scrub can target the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// Which backend operation was in flight.
        op: &'static str,
        /// The OS error category.
        kind: std::io::ErrorKind,
    },
    /// Stored data failed validation (checksum or structure).
    Corrupt {
        /// What was wrong.
        detail: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, kind } => write!(f, "storage {op} failed: {kind:?}"),
            StorageError::Corrupt { detail } => write!(f, "storage corrupt: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

fn io_err(op: &'static str, e: std::io::Error) -> StorageError {
    StorageError::Io { op, kind: e.kind() }
}

/// The persistence seam under a storage node: a keyed block store with
/// an explicit durability barrier.
///
/// Implementations must be thread-safe; the node serialises operations
/// *per block* above this trait, so concurrent calls only ever target
/// distinct blocks (plus whole-store `scan`/`clear` from maintenance
/// paths).
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Reads a block. `Ok(None)` means "not stored".
    fn get(&self, id: BlockId) -> Result<Option<StoredBlock>, StorageError>;

    /// Inserts or replaces a block.
    fn put(&self, id: BlockId, block: StoredBlock) -> Result<(), StorageError>;

    /// Removes a block (absent is fine — the delete is idempotent).
    fn delete(&self, id: BlockId) -> Result<(), StorageError>;

    /// Visits every stored block. Iteration order is unspecified.
    fn scan(&self, visit: &mut dyn FnMut(BlockId, &StoredBlock)) -> Result<(), StorageError>;

    /// Durability barrier: on return, every preceding `put`/`delete`
    /// survives crash-restart (for backends that persist at all).
    fn flush(&self) -> Result<(), StorageError>;

    /// Drops every block — models replacing the disk with a blank one.
    fn clear(&self) -> Result<(), StorageError>;

    /// Simulated crash-restart hook: revert to the state a real process
    /// restart would recover. The default is a no-op (an in-memory
    /// backend that survived in-process "recovers" everything; a real
    /// log backend recovers by construction when reopened).
    fn crash_restart(&self) {}

    /// Drains the virtual-time penalty (in abstract ticks) accumulated
    /// by slow operations since the last call. The simulation transport
    /// folds this into reply latency; backends without a slow-IO fault
    /// axis return 0.
    fn take_stall_ticks(&self) -> u64 {
        0
    }

    /// Short backend label for diagnostics.
    fn label(&self) -> &'static str;
}

// ---------------------------------------------------------------------
// Memory backend.
// ---------------------------------------------------------------------

/// How many independent mutex-guarded slices the memory backend splits
/// the block map into. A hot block serialises only its own slice. Power
/// of two so the hash reduction is a mask.
const MEMORY_STRIPES: usize = 16;

/// SplitMix64 finalizer, masked onto a stripe: neighbouring block ids
/// (one stripe's data + parity objects) spread over slices.
pub(crate) fn stripe_of(id: BlockId) -> usize {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as usize) & (MEMORY_STRIPES - 1)
}

/// The original striped in-memory block map, now behind the
/// [`StorageBackend`] seam. Never fails and never persists.
#[derive(Debug)]
pub struct MemoryBackend {
    stripes: Vec<Mutex<DetHashMap<BlockId, StoredBlock>>>,
}

impl MemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        MemoryBackend {
            stripes: (0..MEMORY_STRIPES)
                .map(|_| Mutex::new(DetHashMap::default()))
                .collect(),
        }
    }
}

impl Default for MemoryBackend {
    fn default() -> Self {
        MemoryBackend::new()
    }
}

impl StorageBackend for MemoryBackend {
    fn get(&self, id: BlockId) -> Result<Option<StoredBlock>, StorageError> {
        Ok(self.stripes[stripe_of(id)].lock().get(&id).cloned())
    }

    fn put(&self, id: BlockId, block: StoredBlock) -> Result<(), StorageError> {
        self.stripes[stripe_of(id)].lock().insert(id, block);
        Ok(())
    }

    fn delete(&self, id: BlockId) -> Result<(), StorageError> {
        self.stripes[stripe_of(id)].lock().remove(&id);
        Ok(())
    }

    fn scan(&self, visit: &mut dyn FnMut(BlockId, &StoredBlock)) -> Result<(), StorageError> {
        for stripe in &self.stripes {
            for (id, block) in stripe.lock().iter() {
                visit(*id, block);
            }
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), StorageError> {
        Ok(())
    }

    fn clear(&self) -> Result<(), StorageError> {
        for stripe in &self.stripes {
            stripe.lock().clear();
        }
        Ok(())
    }

    fn label(&self) -> &'static str {
        "memory"
    }
}

// ---------------------------------------------------------------------
// Append-only log backend.
// ---------------------------------------------------------------------

/// When the append-only log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — every acknowledged mutation is
    /// durable before the ack (slowest, tightest horizon).
    Always,
    /// `fsync` once per `n` records — bounded loss horizon of at most
    /// `n − 1` acknowledged mutations on crash.
    EveryN(u64),
    /// Only [`StorageBackend::flush`] syncs — the OS decides otherwise.
    Manual,
}

/// Record kinds in the log. `REC_PUT_PARITY` is the legacy parity
/// layout without a cross-checksum vector; new appends write
/// `REC_PUT_PARITY_V2`, old records still replay (with `checks` empty,
/// meaning "vector unknown"). Self-checksums are never persisted — they
/// are recomputed from the payload at parse time, under the same CRC
/// that guards the payload itself.
const REC_PUT_DATA: u8 = 1;
const REC_PUT_PARITY: u8 = 2;
const REC_DELETE: u8 = 3;
const REC_PUT_PARITY_V2: u8 = 4;

/// Per-record framing overhead: body length (u32) + body CRC-32 (u32).
const REC_HEADER: usize = 8;

/// Compaction triggers when the log exceeds this many bytes *and* is
/// mostly dead records (see `COMPACT_RATIO`).
const COMPACT_MIN_BYTES: u64 = 64 * 1024;

/// Compaction triggers when the log is this many times the live size.
const COMPACT_RATIO: u64 = 3;

fn encode_record(id: BlockId, block: Option<&StoredBlock>) -> Vec<u8> {
    let mut body = Vec::new();
    match block {
        None => {
            body.push(REC_DELETE);
            body.extend_from_slice(&id.to_le_bytes());
        }
        Some(StoredBlock::Data { version, bytes, .. }) => {
            body.push(REC_PUT_DATA);
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(&version.to_le_bytes());
            body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            body.extend_from_slice(bytes);
        }
        Some(StoredBlock::Parity {
            versions,
            bytes,
            checks,
            ..
        }) => {
            body.push(REC_PUT_PARITY_V2);
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(&(versions.len() as u32).to_le_bytes());
            for v in versions {
                body.extend_from_slice(&v.to_le_bytes());
            }
            body.extend_from_slice(&(checks.len() as u32).to_le_bytes());
            for c in checks {
                body.extend_from_slice(&c.to_le_bytes());
            }
            body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            body.extend_from_slice(bytes);
        }
    }
    let mut rec = Vec::with_capacity(REC_HEADER + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

/// Parses one record body. Returns `None` on any structural problem —
/// recovery treats that exactly like a checksum failure (truncate here).
fn parse_record(body: &[u8]) -> Option<(BlockId, Option<StoredBlock>)> {
    let (&kind, rest) = body.split_first()?;
    if rest.len() < 8 {
        return None;
    }
    let id = u64::from_le_bytes(rest[0..8].try_into().ok()?);
    let rest = &rest[8..];
    match kind {
        REC_DELETE => rest.is_empty().then_some((id, None)),
        REC_PUT_DATA => {
            if rest.len() < 12 {
                return None;
            }
            let version = u64::from_le_bytes(rest[0..8].try_into().ok()?);
            let len = u32::from_le_bytes(rest[8..12].try_into().ok()?) as usize;
            let payload = &rest[12..];
            (payload.len() == len).then(|| {
                (
                    id,
                    Some(StoredBlock::new_data(
                        version,
                        Bytes::copy_from_slice(payload),
                    )),
                )
            })
        }
        REC_PUT_PARITY | REC_PUT_PARITY_V2 => {
            if rest.len() < 4 {
                return None;
            }
            let count = u32::from_le_bytes(rest[0..4].try_into().ok()?) as usize;
            let mut rest = &rest[4..];
            if rest.len() < count.checked_mul(8)? {
                return None;
            }
            let versions: Vec<u64> = (0..count)
                .map(|i| u64::from_le_bytes(rest[i * 8..i * 8 + 8].try_into().unwrap()))
                .collect();
            rest = &rest[count * 8..];
            // V2 carries the cross-checksum vector; V1 replays with it
            // empty (= unknown).
            let checks: Vec<u64> = if kind == REC_PUT_PARITY_V2 {
                if rest.len() < 4 {
                    return None;
                }
                let ccount = u32::from_le_bytes(rest[0..4].try_into().ok()?) as usize;
                rest = &rest[4..];
                if rest.len() < ccount.checked_mul(8)? {
                    return None;
                }
                let checks = (0..ccount)
                    .map(|i| u64::from_le_bytes(rest[i * 8..i * 8 + 8].try_into().unwrap()))
                    .collect();
                rest = &rest[ccount * 8..];
                checks
            } else {
                Vec::new()
            };
            if rest.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().ok()?) as usize;
            let payload = &rest[4..];
            (payload.len() == len).then(|| {
                (
                    id,
                    Some(StoredBlock::new_parity(
                        versions,
                        Bytes::copy_from_slice(payload),
                        checks,
                    )),
                )
            })
        }
        _ => None,
    }
}

#[derive(Debug)]
struct LogInner {
    file: File,
    index: DetHashMap<BlockId, StoredBlock>,
    /// Current log file length.
    log_bytes: u64,
    /// Encoded size of the live records (what compaction would shrink to).
    live_bytes: u64,
    /// Records appended since the last fsync.
    dirty: u64,
    /// Log length at the last successful fsync — everything before this
    /// offset survives a crash.
    synced_len: u64,
}

/// Crash-safe append-only log storage.
///
/// Layout: back-to-back records, each `body_len(u32) · crc32(u32) ·
/// body`; the body is a tagged put (data or parity, full payload) or
/// delete. Every mutation appends; the in-memory index holds the fold
/// of the log. On open, the log is replayed and the first torn or
/// corrupt record truncates the tail — recovered state is exactly the
/// longest valid prefix, which the [`FsyncPolicy`] bounds below by the
/// last barrier. When dead records dominate
/// (log > 3× live and > 64 KiB), the log is compacted by atomically
/// replacing it with a snapshot.
pub struct AppendLogBackend {
    path: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<LogInner>,
    /// Delete the log file on drop (used by the `TQ_NODE_BACKEND`
    /// ephemeral default so test runs don't litter the temp dir).
    ephemeral: bool,
}

impl fmt::Debug for AppendLogBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppendLogBackend")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl AppendLogBackend {
    /// Opens (or creates) the log at `path`, replaying it into memory
    /// and truncating any torn tail.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self, StorageError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err("create-dir", e))?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open", e))?;

        // Replay. A torn or corrupt record ends the valid prefix; the
        // file is truncated there so the next append starts clean.
        let mut raw = Vec::new();
        file.read_to_end(&mut raw).map_err(|e| io_err("read", e))?;
        let mut index = DetHashMap::default();
        let mut live_bytes = 0u64;
        let mut valid = 0usize;
        while raw.len() - valid >= REC_HEADER {
            let body_len =
                u32::from_le_bytes(raw[valid..valid + 4].try_into().expect("4 bytes")) as usize;
            let Some(total) = body_len.checked_add(REC_HEADER) else {
                break;
            };
            if raw.len() - valid < total {
                break; // torn tail: the final append did not land fully
            }
            let stored_crc =
                u32::from_le_bytes(raw[valid + 4..valid + 8].try_into().expect("4 bytes"));
            let body = &raw[valid + REC_HEADER..valid + total];
            if crc32(body) != stored_crc {
                break; // corrupt record: nothing after it can be trusted
            }
            let Some((id, block)) = parse_record(body) else {
                break;
            };
            match block {
                Some(b) => {
                    // Account the *canonical* (current-layout) record
                    // length, not the on-disk one: a legacy V1 record is
                    // shorter than its re-encoding, and live_bytes must
                    // match what later overwrites subtract (and what
                    // compaction would write).
                    let canonical = encode_record(id, Some(&b)).len() as u64;
                    if let Some(old) = index.insert(id, b) {
                        live_bytes -= (encode_record(id, Some(&old)).len()) as u64;
                    }
                    live_bytes += canonical;
                }
                None => {
                    if let Some(old) = index.remove(&id) {
                        live_bytes -= (encode_record(id, Some(&old)).len()) as u64;
                    }
                }
            }
            valid += total;
        }
        if valid < raw.len() {
            file.set_len(valid as u64)
                .map_err(|e| io_err("truncate", e))?;
            file.sync_data().map_err(|e| io_err("fsync", e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;

        Ok(AppendLogBackend {
            path,
            policy,
            inner: Mutex::new(LogInner {
                file,
                index,
                log_bytes: valid as u64,
                live_bytes,
                dirty: 0,
                synced_len: valid as u64,
            }),
            ephemeral: false,
        })
    }

    /// Like [`open`](Self::open), but the log file is deleted when the
    /// backend drops — for env-selected throwaway backends in tests.
    pub fn open_ephemeral(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<Self, StorageError> {
        let mut backend = Self::open(path, policy)?;
        backend.ephemeral = true;
        Ok(backend)
    }

    /// The log file path.
    pub fn log_path(&self) -> &Path {
        &self.path
    }

    /// Bytes of log guaranteed durable (length at the last fsync).
    /// Crash-restart tests truncate the file to this offset to model
    /// the worst legal crash.
    pub fn synced_len(&self) -> u64 {
        self.inner.lock().synced_len
    }

    /// Current log file length (diagnostics; compaction shrinks it).
    pub fn log_len(&self) -> u64 {
        self.inner.lock().log_bytes
    }

    fn append_locked(
        &self,
        inner: &mut LogInner,
        id: BlockId,
        block: Option<&StoredBlock>,
    ) -> Result<(), StorageError> {
        let rec = encode_record(id, block);
        inner
            .file
            .write_all(&rec)
            .map_err(|e| io_err("append", e))?;
        inner.log_bytes += rec.len() as u64;
        inner.dirty += 1;

        // Index + live-size accounting.
        match block {
            Some(b) => {
                if let Some(old) = inner.index.insert(id, b.clone()) {
                    inner.live_bytes -= encode_record(id, Some(&old)).len() as u64;
                }
                inner.live_bytes += rec.len() as u64;
            }
            None => {
                if let Some(old) = inner.index.remove(&id) {
                    inner.live_bytes -= encode_record(id, Some(&old)).len() as u64;
                }
            }
        }

        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.dirty >= n.max(1),
            FsyncPolicy::Manual => false,
        };
        if due {
            self.sync_locked(inner)?;
        }
        if inner.log_bytes > COMPACT_MIN_BYTES
            && inner.log_bytes > COMPACT_RATIO * inner.live_bytes.max(1)
        {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    fn sync_locked(&self, inner: &mut LogInner) -> Result<(), StorageError> {
        inner.file.sync_data().map_err(|e| io_err("fsync", e))?;
        inner.dirty = 0;
        inner.synced_len = inner.log_bytes;
        Ok(())
    }

    /// Rewrites the log as a snapshot of the live index, atomically
    /// replacing the old file (write temp → fsync → rename → fsync dir).
    fn compact_locked(&self, inner: &mut LogInner) -> Result<(), StorageError> {
        let tmp_path = self.path.with_extension("compact");
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("compact-create", e))?;
        let mut new_len = 0u64;
        for (id, block) in &inner.index {
            let rec = encode_record(*id, Some(block));
            tmp.write_all(&rec)
                .map_err(|e| io_err("compact-write", e))?;
            new_len += rec.len() as u64;
        }
        tmp.sync_data().map_err(|e| io_err("compact-fsync", e))?;
        std::fs::rename(&tmp_path, &self.path).map_err(|e| io_err("compact-rename", e))?;
        // Make the rename itself durable. Swallowing this error would
        // let an acknowledged-durable log vanish with the directory
        // entry on power loss, so it propagates like any other fsync.
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                let dir = File::open(parent).map_err(|e| io_err("compact-dir-open", e))?;
                dir.sync_all().map_err(|e| io_err("compact-dir-fsync", e))?;
            }
        }
        tmp.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;
        inner.file = tmp;
        inner.log_bytes = new_len;
        inner.live_bytes = new_len;
        inner.dirty = 0;
        inner.synced_len = new_len;
        Ok(())
    }
}

impl Drop for AppendLogBackend {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl StorageBackend for AppendLogBackend {
    fn get(&self, id: BlockId) -> Result<Option<StoredBlock>, StorageError> {
        Ok(self.inner.lock().index.get(&id).cloned())
    }

    fn put(&self, id: BlockId, block: StoredBlock) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        self.append_locked(&mut inner, id, Some(&block))
    }

    fn delete(&self, id: BlockId) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        if !inner.index.contains_key(&id) {
            return Ok(()); // idempotent: no tombstone for a never-stored id
        }
        self.append_locked(&mut inner, id, None)
    }

    fn scan(&self, visit: &mut dyn FnMut(BlockId, &StoredBlock)) -> Result<(), StorageError> {
        for (id, block) in &self.inner.lock().index {
            visit(*id, block);
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)
    }

    fn clear(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        inner.file.set_len(0).map_err(|e| io_err("truncate", e))?;
        inner
            .file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("seek", e))?;
        inner.file.sync_data().map_err(|e| io_err("fsync", e))?;
        inner.index.clear();
        inner.log_bytes = 0;
        inner.live_bytes = 0;
        inner.dirty = 0;
        inner.synced_len = 0;
        Ok(())
    }

    fn label(&self) -> &'static str {
        "applog"
    }
}

// ---------------------------------------------------------------------
// Faulting wrapper (DST storage-fault axis).
// ---------------------------------------------------------------------

/// Knobs of the DST storage-fault axis. Probabilities are in parts per
/// 256 (sampled from a seeded SplitMix64 stream, so every case replays
/// bit-for-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFaults {
    /// Simulated fsync barrier cadence: a barrier is *attempted* every
    /// `sync_every` mutations (1 = after each).
    pub sync_every: u64,
    /// Probability (0–255 of 256) that an attempted barrier silently
    /// does nothing — the delayed/failed-fsync fault. The data still
    /// reads back fine until a crash reverts past it.
    pub fsync_fail_p: u8,
    /// Probability (0–255 of 256) that a read is slow, charging
    /// [`take_stall_ticks`](FaultingBackend::take_stall_ticks) virtual
    /// time the simulation adds to the reply's delivery delay.
    pub slow_read_p: u8,
    /// Virtual ticks one slow read costs (1..=max, sampled).
    pub slow_read_max_ticks: u64,
    /// Probability (0–255 of 256) that a read serves a bit-flipped copy
    /// of the stored payload — the silent media-rot fault. Transient:
    /// the stored block itself is untouched, only the served copy lies.
    pub corrupt_read_p: u8,
    /// Probability (0–255 of 256) that a read serves *another* stored
    /// block's payload under the requested block's metadata (version
    /// stamps and self-checksum kept) — the misdirected-read fault of a
    /// real disk. Skipped when no other block exists.
    pub misdirect_read_p: u8,
}

impl StorageFaults {
    /// The default adversarial mix the DST matrices run with: barriers
    /// every 2 mutations, 1-in-4 of them silently delayed, 1-in-8 reads
    /// slow by up to 3 ticks. No read corruption — that is its own axis
    /// ([`corrupting`](Self::corrupting)).
    pub fn aggressive() -> Self {
        StorageFaults {
            sync_every: 2,
            fsync_fail_p: 64,
            slow_read_p: 32,
            slow_read_max_ticks: 3,
            corrupt_read_p: 0,
            misdirect_read_p: 0,
        }
    }

    /// The corrupting-node mix of the DST integrity axis: fsync behaves,
    /// but roughly 1 read in 26 serves a bit-flipped payload and 1 in 51
    /// a misdirected one. Probabilities are kept low so workloads still
    /// clear the matrices' non-vacuity floors.
    pub fn corrupting() -> Self {
        StorageFaults {
            sync_every: 1,
            fsync_fail_p: 0,
            slow_read_p: 0,
            slow_read_max_ticks: 1,
            corrupt_read_p: 10,
            misdirect_read_p: 5,
        }
    }
}

#[derive(Debug)]
struct FaultState {
    /// The last successfully "fsync'd" snapshot — what a crash reverts to.
    durable: DetHashMap<BlockId, StoredBlock>,
    mutations_since_sync: u64,
    rng: u64,
    /// Counters for non-vacuity assertions in tests.
    dropped_syncs: u64,
    crashes_reverted: u64,
    corrupted_reads: u64,
}

/// Deterministic fault-injection wrapper implementing the DST
/// storage-fault axis over any inner backend.
///
/// The wrapper models the *recovery-visible* behaviour of a faulty
/// disk rather than its byte-level failure detail: a torn final record
/// and lost unflushed appends both recover to the last fsync barrier
/// (that is precisely what [`AppendLogBackend`]'s truncating replay
/// produces, proven separately by its unit tests), so
/// [`crash_restart`](StorageBackend::crash_restart) reverts the inner
/// backend to the last barrier snapshot. Barriers themselves can
/// silently fail (delayed fsync), widening what a crash loses; reads
/// can be slow, surfacing as virtual-time stall ticks the simulation
/// folds into reply latency.
#[derive(Debug)]
pub struct FaultingBackend {
    inner: Arc<dyn StorageBackend>,
    faults: StorageFaults,
    state: Mutex<FaultState>,
    stall_ticks: AtomicU64,
}

impl FaultingBackend {
    /// Wraps `inner`, seeding the fault stream with `seed`.
    pub fn new(inner: Arc<dyn StorageBackend>, faults: StorageFaults, seed: u64) -> Self {
        FaultingBackend {
            inner,
            faults,
            state: Mutex::new(FaultState {
                durable: DetHashMap::default(),
                mutations_since_sync: 0,
                rng: seed ^ 0xA076_1D64_78BD_642F,
                dropped_syncs: 0,
                crashes_reverted: 0,
                corrupted_reads: 0,
            }),
            stall_ticks: AtomicU64::new(0),
        }
    }

    fn next_rand(state: &mut FaultState) -> u64 {
        // SplitMix64: deterministic, seed-replayable.
        state.rng = state.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(state: &mut FaultState, p: u8) -> bool {
        (Self::next_rand(state) & 0xFF) < p as u64
    }

    fn snapshot_inner(&self) -> Result<DetHashMap<BlockId, StoredBlock>, StorageError> {
        let mut snap = DetHashMap::default();
        self.inner.scan(&mut |id, block| {
            snap.insert(id, block.clone());
        })?;
        Ok(snap)
    }

    fn after_mutation(&self) -> Result<(), StorageError> {
        let due = {
            let mut state = self.state.lock();
            state.mutations_since_sync += 1;
            state.mutations_since_sync >= self.faults.sync_every.max(1)
        };
        if due {
            self.barrier(false)?;
        }
        Ok(())
    }

    /// Attempts a durability barrier; `forced` barriers (explicit
    /// `flush`) never fail — a returned `flush` means durable, matching
    /// the contract callers rely on.
    fn barrier(&self, forced: bool) -> Result<(), StorageError> {
        let drop_it = {
            let mut state = self.state.lock();
            state.mutations_since_sync = 0;
            if !forced && Self::chance(&mut state, self.faults.fsync_fail_p) {
                state.dropped_syncs += 1;
                true
            } else {
                false
            }
        };
        if drop_it {
            return Ok(()); // the lying disk: "done", but nothing moved
        }
        let snap = self.snapshot_inner()?;
        self.state.lock().durable = snap;
        Ok(())
    }

    /// How many barriers were silently dropped (fault non-vacuity).
    pub fn dropped_syncs(&self) -> u64 {
        self.state.lock().dropped_syncs
    }

    /// How many crash-restarts actually reverted state (non-vacuity).
    pub fn crashes_reverted(&self) -> u64 {
        self.state.lock().crashes_reverted
    }

    /// How many reads served corrupted payloads (non-vacuity for the
    /// DST corruption axis).
    pub fn corrupted_reads(&self) -> u64 {
        self.state.lock().corrupted_reads
    }

    /// Clones a block with its payload replaced and every piece of
    /// metadata kept (version stamps and self-checksum) — the shape both
    /// corruption faults share. Keeping the metadata is the point: the
    /// served reply *claims* to be the requested block at its recorded
    /// version, only the bytes lie.
    fn with_bytes(block: &StoredBlock, bytes: Bytes) -> StoredBlock {
        match block {
            StoredBlock::Data { version, check, .. } => StoredBlock::Data {
                version: *version,
                bytes,
                check: *check,
            },
            StoredBlock::Parity {
                versions,
                check,
                checks,
                ..
            } => StoredBlock::Parity {
                versions: versions.clone(),
                bytes,
                check: *check,
                checks: checks.clone(),
            },
        }
    }
}

impl StorageBackend for FaultingBackend {
    fn get(&self, id: BlockId) -> Result<Option<StoredBlock>, StorageError> {
        {
            let mut state = self.state.lock();
            if Self::chance(&mut state, self.faults.slow_read_p) {
                let max = self.faults.slow_read_max_ticks.max(1);
                let ticks = 1 + Self::next_rand(&mut state) % max;
                drop(state);
                self.stall_ticks.fetch_add(ticks, Ordering::Relaxed);
            }
        }
        let Some(block) = self.inner.get(id)? else {
            return Ok(None);
        };
        if block.payload_len() > 0 {
            let mut state = self.state.lock();
            if Self::chance(&mut state, self.faults.corrupt_read_p) {
                // Media rot: serve a copy with one bit flipped. The
                // stored block is untouched — the next read may be clean.
                let bit = Self::next_rand(&mut state) % (block.payload_len() as u64 * 8);
                state.corrupted_reads += 1;
                drop(state);
                let mut bytes = match &block {
                    StoredBlock::Data { bytes, .. } | StoredBlock::Parity { bytes, .. } => {
                        bytes.to_vec()
                    }
                };
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                return Ok(Some(Self::with_bytes(&block, Bytes::from(bytes))));
            }
            if Self::chance(&mut state, self.faults.misdirect_read_p) {
                let pick = Self::next_rand(&mut state);
                drop(state);
                // Misdirected read: the disk returns some *other* stored
                // block's payload. Deterministic despite unspecified scan
                // order: candidates are sorted by id before picking.
                let mut others: Vec<(BlockId, Bytes)> = Vec::new();
                self.inner.scan(&mut |oid, ob| {
                    if oid != id {
                        match ob {
                            StoredBlock::Data { bytes, .. } | StoredBlock::Parity { bytes, .. } => {
                                others.push((oid, bytes.clone()));
                            }
                        }
                    }
                })?;
                if !others.is_empty() {
                    others.sort_by_key(|(oid, _)| *oid);
                    let (_, bytes) = &others[(pick % others.len() as u64) as usize];
                    self.state.lock().corrupted_reads += 1;
                    return Ok(Some(Self::with_bytes(&block, bytes.clone())));
                }
            }
        }
        Ok(Some(block))
    }

    fn put(&self, id: BlockId, block: StoredBlock) -> Result<(), StorageError> {
        self.inner.put(id, block)?;
        self.after_mutation()
    }

    fn delete(&self, id: BlockId) -> Result<(), StorageError> {
        self.inner.delete(id)?;
        self.after_mutation()
    }

    fn scan(&self, visit: &mut dyn FnMut(BlockId, &StoredBlock)) -> Result<(), StorageError> {
        self.inner.scan(visit)
    }

    fn flush(&self) -> Result<(), StorageError> {
        self.barrier(true)?;
        self.inner.flush()
    }

    fn clear(&self) -> Result<(), StorageError> {
        self.inner.clear()?;
        let mut state = self.state.lock();
        state.durable.clear();
        state.mutations_since_sync = 0;
        Ok(())
    }

    fn crash_restart(&self) {
        // Revert the inner backend to the last barrier snapshot: the
        // unflushed suffix (including any torn final record) is gone.
        let snap = self.state.lock().durable.clone();
        if self.inner.clear().is_err() {
            return;
        }
        let mut restore_failed = false;
        for (id, block) in &snap {
            if self.inner.put(*id, block.clone()).is_err() {
                restore_failed = true;
            }
        }
        let mut state = self.state.lock();
        state.mutations_since_sync = 0;
        if !restore_failed {
            state.crashes_reverted += 1;
        }
    }

    fn take_stall_ticks(&self) -> u64 {
        self.stall_ticks.swap(0, Ordering::Relaxed)
    }

    fn label(&self) -> &'static str {
        "faulting"
    }
}

// ---------------------------------------------------------------------
// Environment-driven default selection.
// ---------------------------------------------------------------------

/// Builds the default backend for a node, honouring `TQ_NODE_BACKEND`:
///
/// * unset or `memory` — [`MemoryBackend`];
/// * `applog` — an ephemeral [`AppendLogBackend`] under the system temp
///   dir (deleted when the node drops), with an `Always` fsync policy
///   so the whole integration suite exercises the durable path.
///
/// Any other value panics loudly: silently falling back to memory would
/// make CI's `backend-matrix` job report green without testing anything.
pub fn default_backend(node_index: usize) -> Arc<dyn StorageBackend> {
    match std::env::var("TQ_NODE_BACKEND") {
        Err(_) => Arc::new(MemoryBackend::new()),
        Ok(v) if v == "memory" => Arc::new(MemoryBackend::new()),
        Ok(v) if v == "applog" => {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "tq-node-{}-{}-{}.log",
                std::process::id(),
                seq,
                node_index
            ));
            let backend = AppendLogBackend::open_ephemeral(path, FsyncPolicy::Always)
                .expect("create ephemeral applog backend in temp dir");
            Arc::new(backend)
        }
        Ok(other) => panic!("TQ_NODE_BACKEND={other:?} is not one of: memory, applog"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(version: u64, payload: &[u8]) -> StoredBlock {
        StoredBlock::new_data(version, Bytes::copy_from_slice(payload))
    }

    fn temp_log(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tq-storage-test-{}-{name}.log", std::process::id()))
    }

    #[test]
    fn memory_backend_roundtrip() {
        let b = MemoryBackend::new();
        assert_eq!(b.get(1), Ok(None));
        b.put(1, data(0, b"abc")).unwrap();
        assert_eq!(b.get(1), Ok(Some(data(0, b"abc"))));
        b.put(1, data(1, b"xyz")).unwrap();
        assert_eq!(b.get(1), Ok(Some(data(1, b"xyz"))));
        let mut seen = 0;
        b.scan(&mut |_, _| seen += 1).unwrap();
        assert_eq!(seen, 1);
        b.delete(1).unwrap();
        assert_eq!(b.get(1), Ok(None));
    }

    #[test]
    fn applog_roundtrip_and_reopen() {
        let path = temp_log("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
            b.put(1, data(0, b"one")).unwrap();
            b.put(
                2,
                StoredBlock::new_parity(
                    vec![1, 2, 3],
                    Bytes::copy_from_slice(b"par"),
                    vec![0xAB, 0xCD, 0xEF],
                ),
            )
            .unwrap();
            b.put(1, data(5, b"ONE")).unwrap();
            b.delete(2).unwrap();
            b.delete(99).unwrap(); // idempotent, writes no tombstone
        }
        let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(b.get(1), Ok(Some(data(5, b"ONE"))));
        assert_eq!(b.get(2), Ok(None));
        let mut count = 0;
        b.scan(&mut |_, _| count += 1).unwrap();
        assert_eq!(count, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn applog_truncates_torn_tail() {
        let path = temp_log("torn");
        let _ = std::fs::remove_file(&path);
        {
            let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
            b.put(1, data(0, b"keep")).unwrap();
            b.put(2, data(0, b"also")).unwrap();
        }
        // Tear the final record: chop a few bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(b.get(1), Ok(Some(data(0, b"keep"))), "prefix survives");
        assert_eq!(b.get(2), Ok(None), "torn record is truncated");
        // The file itself was truncated to the valid prefix, so appends
        // resume from a clean boundary.
        b.put(3, data(0, b"next")).unwrap();
        drop(b);
        let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(b.get(3), Ok(Some(data(0, b"next"))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn applog_rejects_corrupt_record_and_everything_after() {
        let path = temp_log("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
            b.put(1, data(0, b"first")).unwrap();
            b.put(2, data(0, b"second")).unwrap();
            b.put(3, data(0, b"third")).unwrap();
        }
        // Flip one payload byte inside the *second* record.
        let mut raw = std::fs::read(&path).unwrap();
        let first_len = {
            let body_len = u32::from_le_bytes(raw[0..4].try_into().unwrap()) as usize;
            REC_HEADER + body_len
        };
        raw[first_len + REC_HEADER + 5] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(b.get(1), Ok(Some(data(0, b"first"))));
        assert_eq!(b.get(2), Ok(None), "corrupt record dropped");
        assert_eq!(b.get(3), Ok(None), "records after corruption untrusted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn applog_synced_len_tracks_fsync_policy() {
        let path = temp_log("synced-len");
        let _ = std::fs::remove_file(&path);
        let b = AppendLogBackend::open(&path, FsyncPolicy::Manual).unwrap();
        b.put(1, data(0, b"aaaa")).unwrap();
        b.put(2, data(0, b"bbbb")).unwrap();
        assert_eq!(b.synced_len(), 0, "manual policy: nothing synced yet");
        b.flush().unwrap();
        assert_eq!(b.synced_len(), b.log_len());
        b.put(3, data(0, b"cccc")).unwrap();
        assert!(b.synced_len() < b.log_len());
        drop(b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn applog_compaction_shrinks_and_preserves_state() {
        let path = temp_log("compact");
        let _ = std::fs::remove_file(&path);
        let b = AppendLogBackend::open(&path, FsyncPolicy::Manual).unwrap();
        // Rewrite one hot block until the log is dominated by dead
        // records and crosses the compaction floor.
        let payload = vec![7u8; 2048];
        for v in 0..200u64 {
            b.put(1, StoredBlock::new_data(v, Bytes::from(payload.clone())))
                .unwrap();
        }
        b.put(2, data(9, b"other")).unwrap();
        assert!(
            b.log_len() < 200 * 2048,
            "log should have compacted, len={}",
            b.log_len()
        );
        // State is intact, on disk too.
        drop(b);
        let b = AppendLogBackend::open(&path, FsyncPolicy::Manual).unwrap();
        match b.get(1).unwrap() {
            Some(StoredBlock::Data { version, bytes, .. }) => {
                assert_eq!(version, 199);
                assert_eq!(bytes.len(), 2048);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(b.get(2), Ok(Some(data(9, b"other"))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulting_backend_reverts_to_last_barrier_on_crash() {
        let inner = Arc::new(MemoryBackend::new());
        let faults = StorageFaults {
            sync_every: u64::MAX, // only explicit flushes create barriers
            fsync_fail_p: 0,
            slow_read_p: 0,
            slow_read_max_ticks: 1,
            corrupt_read_p: 0,
            misdirect_read_p: 0,
        };
        let b = FaultingBackend::new(inner, faults, 42);
        b.put(1, data(0, b"durable")).unwrap();
        b.flush().unwrap();
        b.put(1, data(1, b"lost-on-crash")).unwrap();
        b.put(2, data(0, b"also-lost")).unwrap();
        assert_eq!(b.get(1), Ok(Some(data(1, b"lost-on-crash"))));
        b.crash_restart();
        assert_eq!(b.get(1), Ok(Some(data(0, b"durable"))));
        assert_eq!(b.get(2), Ok(None));
        assert_eq!(b.crashes_reverted(), 1);
    }

    #[test]
    fn faulting_backend_dropped_fsync_widens_the_loss() {
        let inner = Arc::new(MemoryBackend::new());
        let faults = StorageFaults {
            sync_every: 1,
            fsync_fail_p: 255, // every automatic barrier silently fails
            slow_read_p: 0,
            slow_read_max_ticks: 1,
            corrupt_read_p: 0,
            misdirect_read_p: 0,
        };
        let b = FaultingBackend::new(inner, faults, 7);
        b.put(1, data(0, b"x")).unwrap();
        b.put(2, data(0, b"y")).unwrap();
        assert!(b.dropped_syncs() >= 2);
        b.crash_restart();
        assert_eq!(b.get(1), Ok(None), "no barrier ever landed");
        // An explicit flush is forced — it always lands.
        b.put(3, data(0, b"z")).unwrap();
        b.flush().unwrap();
        b.crash_restart();
        assert_eq!(b.get(3), Ok(Some(data(0, b"z"))));
    }

    #[test]
    fn faulting_backend_slow_reads_charge_ticks_deterministically() {
        let mk = || {
            let faults = StorageFaults {
                sync_every: 1,
                fsync_fail_p: 0,
                slow_read_p: 255,
                slow_read_max_ticks: 3,
                corrupt_read_p: 0,
                misdirect_read_p: 0,
            };
            FaultingBackend::new(Arc::new(MemoryBackend::new()), faults, 99)
        };
        let a = mk();
        let b = mk();
        a.put(1, data(0, b"p")).unwrap();
        b.put(1, data(0, b"p")).unwrap();
        let mut ticks_a = Vec::new();
        let mut ticks_b = Vec::new();
        for _ in 0..16 {
            a.get(1).unwrap();
            ticks_a.push(a.take_stall_ticks());
            b.get(1).unwrap();
            ticks_b.push(b.take_stall_ticks());
        }
        assert_eq!(ticks_a, ticks_b, "same seed, same stall stream");
        assert!(ticks_a.iter().all(|&t| (1..=3).contains(&t)));
        assert_eq!(a.take_stall_ticks(), 0, "drained");
    }

    #[test]
    fn legacy_v1_parity_records_replay_with_empty_checks() {
        let path = temp_log("v1-parity");
        let _ = std::fs::remove_file(&path);
        // Hand-craft a V1 parity record (the pre-checksum layout):
        // kind · id · count · versions · len · payload.
        let mut body = vec![REC_PUT_PARITY];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&4u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(&(3u32).to_le_bytes());
        body.extend_from_slice(b"old");
        let mut rec = Vec::new();
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&body).to_le_bytes());
        rec.extend_from_slice(&body);
        std::fs::write(&path, &rec).unwrap();

        let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
        match b.get(7).unwrap() {
            Some(StoredBlock::Parity {
                versions,
                bytes,
                check,
                checks,
            }) => {
                assert_eq!(versions, vec![4, 9]);
                assert_eq!(&bytes[..], b"old");
                assert_eq!(check, tq_gf256::check::block_check(b"old"));
                assert!(checks.is_empty(), "V1 record: vector unknown");
            }
            other => panic!("{other:?}"),
        }
        // Rewriting it persists the vector in the V2 layout.
        b.put(
            7,
            StoredBlock::new_parity(vec![5, 9], Bytes::copy_from_slice(b"new"), vec![1, 2]),
        )
        .unwrap();
        drop(b);
        let b = AppendLogBackend::open(&path, FsyncPolicy::Always).unwrap();
        match b.get(7).unwrap() {
            Some(StoredBlock::Parity { checks, .. }) => assert_eq!(checks, vec![1, 2]),
            other => panic!("{other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulting_backend_bit_flips_are_detectable_and_transient() {
        let faults = StorageFaults {
            sync_every: 1,
            fsync_fail_p: 0,
            slow_read_p: 0,
            slow_read_max_ticks: 1,
            corrupt_read_p: 255, // every read lies
            misdirect_read_p: 0,
        };
        let b = FaultingBackend::new(Arc::new(MemoryBackend::new()), faults, 3);
        let clean = data(1, b"payload-bytes");
        b.put(1, clean.clone()).unwrap();
        let served = b.get(1).unwrap().unwrap();
        assert_ne!(served, clean, "served copy is corrupted");
        assert!(
            !served.self_check_ok(),
            "metadata kept: the self-checksum convicts the bytes"
        );
        assert!(b.corrupted_reads() >= 1);
        // Transient: the stored block itself never rotted.
        let mut ok = FaultingBackend::new(Arc::new(MemoryBackend::new()), faults, 3);
        ok.faults.corrupt_read_p = 0;
        ok.put(1, clean.clone()).unwrap();
        assert_eq!(ok.get(1).unwrap().unwrap(), clean);
    }

    #[test]
    fn faulting_backend_misdirected_reads_keep_requested_metadata() {
        let faults = StorageFaults {
            sync_every: 1,
            fsync_fail_p: 0,
            slow_read_p: 0,
            slow_read_max_ticks: 1,
            corrupt_read_p: 0,
            misdirect_read_p: 255, // every read (with another block) misdirects
        };
        let b = FaultingBackend::new(Arc::new(MemoryBackend::new()), faults, 11);
        b.put(1, data(3, b"mine")).unwrap();
        b.put(2, data(8, b"theirs")).unwrap();
        match b.get(1).unwrap().unwrap() {
            StoredBlock::Data {
                version,
                bytes,
                check,
            } => {
                assert_eq!(version, 3, "requested block's version stamp");
                assert_eq!(&bytes[..], b"theirs", "another block's payload");
                assert_eq!(
                    check,
                    tq_gf256::check::block_check(b"mine"),
                    "requested block's self-checksum — which convicts the bytes"
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(b.corrupted_reads() >= 1);
    }

    #[test]
    fn default_backend_honours_env() {
        // Can't set the env var here without racing other tests; just
        // check the unset default.
        if std::env::var("TQ_NODE_BACKEND").is_err() {
            assert_eq!(default_backend(0).label(), "memory");
        } else {
            // Under the CI backend matrix, whatever is selected must build.
            let b = default_backend(0);
            assert!(["memory", "applog"].contains(&b.label()));
        }
    }
}
