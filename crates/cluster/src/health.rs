//! Per-node health tracking: latency estimation, circuit breaking, and
//! retry budgets for the adaptive straggler-tolerance layer.
//!
//! The paper's availability analysis assumes fail-stop nodes; real
//! deployments are dominated by *gray* failures — nodes that stay up but
//! run 10–100× slow. This module is the client-side defense:
//!
//! * [`NodeHealth`] — a registry keeping, per node, an RFC-6298-style
//!   integer EWMA of round-trip latency plus variance, error/timeout
//!   rates, and a consecutive-failure circuit state
//!   ([`CircuitState`]). Quorum rounds feed it completion outcomes;
//!   transports read back per-node deadlines ([`NodeHealth::timeout_for`])
//!   and hedge delays ([`NodeHealth::hedge_delay`]).
//! * [`RetryBudget`] — a token bucket that caps all client-side
//!   re-issue traffic (hedges, integrity route-around refetches, TCP
//!   reconnects) to a fraction of observed successes, so a sick cluster
//!   cannot amplify its own load into a retry storm.
//! * [`HedgePolicy`] — the knob (`TQ_HEDGE=off|p90|p99`) selecting how
//!   aggressively outstanding sends are speculatively re-issued.
//!
//! Everything here is deterministic under simulation: time is an opaque
//! `u64` supplied by the caller (virtual nanoseconds under
//! [`crate::sim::SimTransport`], monotonic wall nanoseconds under the
//! real transports), state lives in [`DetHashMap`]s, and no wall clock or
//! OS entropy is read — the `sim-determinism` lint covers this file.

use crate::detmap::DetHashMap;
use crate::rpc::{Lane, NodeError};
use std::sync::Mutex;

/// Per-node circuit-breaker state.
///
/// `Closed` is the healthy steady state. After
/// [`HealthConfig::circuit_threshold`] consecutive failures the circuit
/// opens: the node is deprioritized by [`NodeHealth::rank_nodes`] and
/// [`NodeHealth::allow`] refuses discretionary traffic until
/// [`HealthConfig::circuit_cooldown`] has elapsed, after which a single
/// canary request probes the node (`HalfOpen`). A canary success closes
/// the circuit; a canary failure re-opens it for another cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: discretionary requests are refused until cooldown.
    Open,
    /// Cooling down: exactly one canary probe may be in flight.
    HalfOpen,
}

/// How aggressively to hedge outstanding sends.
///
/// Selected via the `TQ_HEDGE` environment knob in benches and via
/// [`NodeHealth::set_policy`] programmatically. `Off` is the default and
/// keeps every transport's behavior bit-identical to the pre-hedging
/// code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HedgePolicy {
    /// No hedging; fixed per-round deadlines. The default.
    #[default]
    Off,
    /// Hedge after `srtt + 2·rttvar` (roughly the p90 of the estimate).
    P90,
    /// Hedge after `srtt + 4·rttvar` (roughly the p99 of the estimate).
    P99,
}

impl HedgePolicy {
    /// Parse the `TQ_HEDGE` knob value (`off`/`p90`/`p99`,
    /// case-insensitive). Unknown values fall back to `Off`.
    pub fn from_knob(s: &str) -> HedgePolicy {
        match s.to_ascii_lowercase().as_str() {
            "p90" => HedgePolicy::P90,
            "p99" => HedgePolicy::P99,
            _ => HedgePolicy::Off,
        }
    }
}

/// Tuning for the health estimator. Two scales ship because virtual sim
/// time and real wall time differ by orders of magnitude; a single floor
/// would either never clamp in one domain or always clamp in the other.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Deviation multiplier in the timeout formula `srtt + k·rttvar`.
    pub k: u64,
    /// Lower clamp on adaptive per-node timeouts (cold-start floor).
    pub min_timeout: u64,
    /// Upper clamp on adaptive per-node timeouts.
    pub max_timeout: u64,
    /// Minimum hedge delay — never hedge faster than this.
    pub hedge_floor: u64,
    /// Consecutive failures that trip the circuit open.
    pub circuit_threshold: u32,
    /// Time the circuit stays open before a half-open canary probe.
    pub circuit_cooldown: u64,
    /// Samples required before the estimator is trusted for hedging.
    pub warmup_samples: u32,
}

impl HealthConfig {
    /// Magnitudes for the virtual-nanosecond clock of
    /// [`crate::sim::SimTransport`] (delays are tens to thousands of
    /// virtual ns, round timeouts a few thousand).
    pub fn sim_scale() -> HealthConfig {
        HealthConfig {
            k: 4,
            min_timeout: 100,
            max_timeout: 1_000_000,
            hedge_floor: 50,
            circuit_threshold: 8,
            circuit_cooldown: 20_000,
            warmup_samples: 3,
        }
    }

    /// Magnitudes for real wall-clock nanoseconds (channel/TCP
    /// transports): microseconds to seconds.
    pub fn real_scale() -> HealthConfig {
        HealthConfig {
            k: 4,
            min_timeout: 1_000_000,     // 1 ms
            max_timeout: 2_000_000_000, // 2 s
            hedge_floor: 200_000,       // 200 µs
            circuit_threshold: 8,
            circuit_cooldown: 1_000_000_000, // 1 s
            warmup_samples: 3,
        }
    }
}

/// A node whose warmed-up srtt is at least this many times the fleet's
/// median warmed-up srtt counts as a straggler for routing purposes
/// (see [`NodeHealth::straggler`]). Well clear of ordinary jitter, well
/// under the 10–100× degradation a failing disk or saturated peer
/// shows.
pub const STRAGGLER_MULT: u64 = 4;

/// What a completed call told us about a node. Derived from the
/// round outcome by [`outcome_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The node answered within its deadline (any application-level
    /// verdict — an honest rejection is still a healthy node).
    Ok,
    /// The node was unreachable, timed out, or shed load: it could not
    /// answer. Feeds the failure counters and the circuit breaker.
    Unavailable {
        /// True when the failure was a deadline expiry specifically —
        /// inflates the timeout estimate in addition to the circuit.
        timed_out: bool,
    },
}

/// Classify a [`NodeError`] into a health [`Outcome`].
///
/// Application-level refusals (version conflicts, not-found, bad
/// arguments) mean the node is alive and fast — they count as `Ok` for
/// health purposes. Only availability failures feed the circuit.
pub fn outcome_of(err: &NodeError) -> Outcome {
    match err {
        NodeError::Down | NodeError::TransportClosed | NodeError::Overloaded => {
            Outcome::Unavailable { timed_out: false }
        }
        NodeError::TimedOut => Outcome::Unavailable { timed_out: true },
        _ => Outcome::Ok,
    }
}

/// A point-in-time view of one node's health, for reports and debugging.
#[derive(Debug, Clone, Copy)]
pub struct NodeSnapshot {
    /// Node index.
    pub node: usize,
    /// Smoothed round-trip estimate (time units), 0 if never sampled.
    pub srtt: u64,
    /// Smoothed deviation (time units).
    pub rttvar: u64,
    /// Current adaptive timeout, if the estimator is warm.
    pub timeout: Option<u64>,
    /// Successful completions observed.
    pub ok: u64,
    /// Availability failures observed (includes timeouts).
    pub errors: u64,
    /// Deadline expiries observed.
    pub timeouts: u64,
    /// Circuit-breaker state.
    pub circuit: CircuitState,
}

#[derive(Debug, Clone, Copy)]
struct NodeStat {
    srtt: u64,
    rttvar: u64,
    samples: u32,
    ok: u64,
    errors: u64,
    timeouts: u64,
    consec_failures: u32,
    backoff_shift: u32,
    circuit: CircuitState,
    opened_at: u64,
    canary_inflight: bool,
}

impl NodeStat {
    fn fresh() -> NodeStat {
        NodeStat {
            srtt: 0,
            rttvar: 0,
            samples: 0,
            ok: 0,
            errors: 0,
            timeouts: 0,
            consec_failures: 0,
            backoff_shift: 0,
            circuit: CircuitState::Closed,
            opened_at: 0,
            canary_inflight: false,
        }
    }

    /// RFC 6298 integer update: `rttvar ← ¾·rttvar + ¼·|srtt − s|`,
    /// `srtt ← ⅞·srtt + ⅛·s`; first sample seeds `srtt = s`,
    /// `rttvar = s/2`.
    fn sample(&mut self, rtt: u64) {
        if self.samples == 0 {
            self.srtt = rtt;
            self.rttvar = rtt / 2;
        } else {
            let err = self.srtt.abs_diff(rtt);
            self.rttvar = self.rttvar - self.rttvar / 4 + err / 4;
            self.srtt = self.srtt - self.srtt / 8 + rtt / 8;
        }
        self.samples = self.samples.saturating_add(1);
    }

    fn raw_timeout(&self, cfg: &HealthConfig) -> u64 {
        let base = self.srtt.saturating_add(cfg.k.saturating_mul(self.rttvar));
        // The kill point sits a factor of two above the p99-style
        // estimate: a hedge fired at the quantile needs a window to win
        // before the deadline declares the call dead. Exponential
        // backoff after consecutive timeouts, capped so the shift
        // cannot overflow or exceed the max clamp.
        base.saturating_mul(2)
            .saturating_mul(1 << self.backoff_shift.min(6))
            .clamp(cfg.min_timeout, cfg.max_timeout)
    }
}

#[derive(Debug)]
struct HealthInner {
    cfg: HealthConfig,
    policy: HedgePolicy,
    now: u64,
    nodes: DetHashMap<usize, NodeStat>,
    budget: BudgetInner,
    hedges_fired: u64,
    hedges_won: u64,
    hedge_dups: u64,
    retries_spent: u64,
}

/// Running totals of hedge activity, for `OpReport`/`SimStats` plumbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HedgeCounters {
    /// Speculative re-issues sent.
    pub fired: u64,
    /// Hedges whose reply completed the slot first.
    pub won: u64,
    /// Late duplicate replies absorbed after the slot completed.
    pub dups: u64,
    /// Retry-budget tokens spent across all re-issue paths.
    pub retries: u64,
}

impl HedgeCounters {
    /// Component-wise difference (`self - earlier`), saturating.
    pub fn since(&self, earlier: &HedgeCounters) -> HedgeCounters {
        HedgeCounters {
            fired: self.fired.saturating_sub(earlier.fired),
            won: self.won.saturating_sub(earlier.won),
            dups: self.dups.saturating_sub(earlier.dups),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }
}

/// The per-node health registry. Shared (behind `Arc`) between a
/// transport, the quorum engine that feeds it outcomes, and the routing
/// code that ranks members by health.
///
/// All methods take `&self`; state is guarded by a single internal
/// mutex that is never held across a transport call.
#[derive(Debug)]
pub struct NodeHealth {
    inner: Mutex<HealthInner>,
}

impl NodeHealth {
    /// New registry with the given tuning and hedging off.
    pub fn new(cfg: HealthConfig) -> NodeHealth {
        NodeHealth {
            inner: Mutex::new(HealthInner {
                cfg,
                policy: HedgePolicy::Off,
                now: 0,
                nodes: DetHashMap::default(),
                budget: BudgetInner::new(100, 16),
                hedges_fired: 0,
                hedges_won: 0,
                hedge_dups: 0,
                retries_spent: 0,
            }),
        }
    }

    /// Registry tuned for the sim's virtual clock, hedging off.
    pub fn sim_scale() -> NodeHealth {
        NodeHealth::new(HealthConfig::sim_scale())
    }

    /// Registry tuned for wall-clock nanoseconds, hedging off.
    pub fn real_scale() -> NodeHealth {
        NodeHealth::new(HealthConfig::real_scale())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthInner> {
        // A poisoned health mutex only means a panicking thread died while
        // updating counters; the data is still internally consistent.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Select the hedging policy. `Off` (the default) disables hedging
    /// and adaptive deadlines entirely, keeping transports on their
    /// fixed-deadline paths.
    pub fn set_policy(&self, policy: HedgePolicy) {
        self.lock().policy = policy;
    }

    /// The current hedging policy.
    pub fn policy(&self) -> HedgePolicy {
        self.lock().policy
    }

    /// True when hedging (and with it, adaptive deadlines and
    /// first-quorum write completion) is enabled.
    pub fn hedging_enabled(&self) -> bool {
        self.lock().policy != HedgePolicy::Off
    }

    /// Advance the registry's clock (monotone: earlier values are
    /// ignored). The sim calls this with virtual time; real transports
    /// with monotonic wall nanoseconds.
    pub fn advance_now(&self, now: u64) {
        let mut g = self.lock();
        if now > g.now {
            g.now = now;
        }
    }

    /// Record a successful round-trip sample for `node`.
    pub fn record_sample(&self, node: usize, rtt: u64) {
        let mut g = self.lock();
        g.nodes
            .entry(node)
            .or_insert_with(NodeStat::fresh)
            .sample(rtt);
    }

    /// Record a call outcome for `node`, driving the failure counters,
    /// the circuit breaker, and the retry budget (successes earn
    /// budget).
    pub fn record_outcome(&self, node: usize, outcome: Outcome) {
        let mut g = self.lock();
        let now = g.now;
        let threshold = g.cfg.circuit_threshold;
        match outcome {
            Outcome::Ok => {
                g.budget.earn();
                let st = g.nodes.entry(node).or_insert_with(NodeStat::fresh);
                st.ok += 1;
                st.consec_failures = 0;
                st.backoff_shift = 0;
                st.canary_inflight = false;
                st.circuit = CircuitState::Closed;
            }
            Outcome::Unavailable { timed_out } => {
                let st = g.nodes.entry(node).or_insert_with(NodeStat::fresh);
                st.errors += 1;
                if timed_out {
                    st.timeouts += 1;
                    st.backoff_shift = st.backoff_shift.saturating_add(1);
                }
                st.consec_failures = st.consec_failures.saturating_add(1);
                match st.circuit {
                    CircuitState::HalfOpen => {
                        // Canary failed: back to a full cooldown.
                        st.circuit = CircuitState::Open;
                        st.opened_at = now;
                        st.canary_inflight = false;
                    }
                    CircuitState::Closed if st.consec_failures >= threshold => {
                        st.circuit = CircuitState::Open;
                        st.opened_at = now;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Feed the outcome of an erred call, classifying the error first.
    pub fn record_error(&self, node: usize, err: &NodeError) {
        self.record_outcome(node, outcome_of(err));
    }

    /// The adaptive per-node deadline (`2·(srtt + k·rttvar)`, backoff-
    /// inflated after timeouts, clamped), or `None` while the estimator
    /// is cold — callers fall back to their fixed deadline. The factor
    /// of two keeps the kill point above every hedge quantile, so a
    /// hedge always has a window to win before the call is abandoned.
    pub fn timeout_for(&self, node: usize) -> Option<u64> {
        let g = self.lock();
        let st = g.nodes.get(&node)?;
        if st.samples < g.cfg.warmup_samples {
            return None;
        }
        Some(st.raw_timeout(&g.cfg))
    }

    /// How long to wait before speculatively re-issuing a send to
    /// `node`: a quantile of the latency estimate selected by the
    /// policy, floored at [`HealthConfig::hedge_floor`]. `None` when
    /// hedging is off or the estimator is cold.
    pub fn hedge_delay(&self, node: usize) -> Option<u64> {
        let g = self.lock();
        let mult = match g.policy {
            HedgePolicy::Off => return None,
            HedgePolicy::P90 => 2,
            HedgePolicy::P99 => 4,
        };
        let st = g.nodes.get(&node)?;
        if st.samples < g.cfg.warmup_samples {
            return None;
        }
        // Clamp to 2·srtt: on a stable node rttvar decays toward zero and
        // `srtt + k·rttvar` degenerates to ≈srtt, which would hedge every
        // queueing blip. A request that has waited less than twice the
        // node's typical latency is not yet a straggler.
        let d = st.srtt.saturating_add(mult * st.rttvar);
        Some(d.max(2 * st.srtt).max(g.cfg.hedge_floor))
    }

    /// Circuit gate for discretionary traffic (maintenance routing,
    /// replacement fetches). `Closed` nodes always pass; `Open` nodes
    /// refuse until the cooldown elapses, then admit exactly one canary
    /// probe at a time (`HalfOpen`). Quorum-critical sends should *not*
    /// consult this — a required member must always be tried.
    pub fn allow(&self, node: usize) -> bool {
        let mut g = self.lock();
        let (now, cooldown) = (g.now, g.cfg.circuit_cooldown);
        let st = g.nodes.entry(node).or_insert_with(NodeStat::fresh);
        match st.circuit {
            CircuitState::Closed => true,
            CircuitState::Open => {
                if now >= st.opened_at.saturating_add(cooldown) {
                    st.circuit = CircuitState::HalfOpen;
                    st.canary_inflight = true;
                    true
                } else {
                    false
                }
            }
            CircuitState::HalfOpen => {
                if st.canary_inflight {
                    false
                } else {
                    st.canary_inflight = true;
                    true
                }
            }
        }
    }

    /// True when the estimator marks `node` as one the router should
    /// read *around*: its circuit is not closed, or its warmed-up
    /// latency estimate sits at least [`STRAGGLER_MULT`]× above the
    /// fleet's median warmed-up estimate. The test is relative, not
    /// absolute — a uniformly slow fleet has no stragglers — and a cold
    /// node is never a straggler (no evidence, no demotion).
    pub fn straggler(&self, node: usize) -> bool {
        let g = self.lock();
        let Some(st) = g.nodes.get(&node) else {
            return false;
        };
        if !matches!(st.circuit, CircuitState::Closed) {
            return true;
        }
        if st.samples < g.cfg.warmup_samples {
            return false;
        }
        let mut warmed: Vec<u64> = g
            .nodes
            .values()
            .filter(|s| s.samples >= g.cfg.warmup_samples)
            .map(|s| s.srtt)
            .collect();
        warmed.sort_unstable();
        let median = warmed[warmed.len() / 2].max(1);
        st.srtt / median >= STRAGGLER_MULT
    }

    /// Order `nodes` healthiest-first: closed circuits before half-open
    /// before open, then by latency estimate, then by node id for
    /// determinism. Unknown nodes rank as healthy-but-unmeasured.
    pub fn rank_nodes(&self, nodes: &mut [usize]) {
        let g = self.lock();
        nodes.sort_by_key(|&n| {
            let st = g.nodes.get(&n);
            let circuit_rank = match st.map_or(CircuitState::Closed, |s| s.circuit) {
                CircuitState::Closed => 0u8,
                CircuitState::HalfOpen => 1,
                CircuitState::Open => 2,
            };
            (circuit_rank, st.map_or(0, |s| s.srtt), n)
        });
    }

    /// Spend one retry token for a discretionary re-issue (hedge,
    /// refetch, reconnect). Background-lane callers must leave a
    /// foreground reserve. Returns false when the budget is exhausted —
    /// the caller skips the re-issue rather than queueing.
    pub fn try_spend(&self, lane: Lane) -> bool {
        let mut g = self.lock();
        if g.budget.try_spend(lane) {
            g.retries_spent += 1;
            true
        } else {
            false
        }
    }

    /// Count a speculative re-issue actually sent.
    pub fn note_hedge_fired(&self) {
        self.lock().hedges_fired += 1;
    }

    /// Count a hedged reply that completed its slot first.
    pub fn note_hedge_won(&self) {
        self.lock().hedges_won += 1;
    }

    /// Count a late duplicate reply absorbed after its slot completed.
    pub fn note_hedge_dup(&self) {
        self.lock().hedge_dups += 1;
    }

    /// Snapshot the running hedge/retry totals. `QuorumRound` diffs this
    /// across a `multicall` to attribute hedge activity to the round.
    pub fn hedge_counters(&self) -> HedgeCounters {
        let g = self.lock();
        HedgeCounters {
            fired: g.hedges_fired,
            won: g.hedges_won,
            dups: g.hedge_dups,
            retries: g.retries_spent,
        }
    }

    /// Per-node snapshots, ordered by node id.
    pub fn snapshot(&self) -> Vec<NodeSnapshot> {
        let g = self.lock();
        let mut ids: Vec<usize> = g.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|&node| {
                let st = &g.nodes[&node];
                NodeSnapshot {
                    node,
                    srtt: st.srtt,
                    rttvar: st.rttvar,
                    timeout: (st.samples >= g.cfg.warmup_samples).then(|| st.raw_timeout(&g.cfg)),
                    ok: st.ok,
                    errors: st.errors,
                    timeouts: st.timeouts,
                    circuit: st.circuit,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Retry budget
// ---------------------------------------------------------------------------

/// Token-bucket retry budget: re-issues are capped at a fraction of
/// observed successes, so retries can never multiply a cluster-wide
/// slowdown into a storm.
///
/// Accounting is in milli-tokens: each success earns `earn_permille`
/// (default 100 ⇒ retries ≤ 10% of successes in steady state), each
/// spend costs 1000. A small starting balance covers cold start;
/// background-lane spends must additionally leave a one-token foreground
/// reserve. Shareable (`&self` methods, internal mutex).
#[derive(Debug)]
pub struct RetryBudget {
    inner: Mutex<BudgetInner>,
}

#[derive(Debug, Clone, Copy)]
struct BudgetInner {
    millitokens: u64,
    earn_permille: u64,
    cap: u64,
}

const SPEND_COST: u64 = 1000;
const BACKGROUND_RESERVE: u64 = 1000;
const INITIAL_TOKENS: u64 = 3;

impl BudgetInner {
    fn new(earn_permille: u64, cap_tokens: u64) -> BudgetInner {
        BudgetInner {
            millitokens: INITIAL_TOKENS * SPEND_COST,
            earn_permille,
            cap: cap_tokens * SPEND_COST,
        }
    }

    fn earn(&mut self) {
        self.millitokens = (self.millitokens + self.earn_permille).min(self.cap);
    }

    fn try_spend(&mut self, lane: Lane) -> bool {
        let floor = match lane {
            Lane::Foreground => 0,
            Lane::Background => BACKGROUND_RESERVE,
        };
        if self.millitokens >= SPEND_COST + floor {
            self.millitokens -= SPEND_COST;
            true
        } else {
            false
        }
    }
}

impl RetryBudget {
    /// New budget earning `earn_permille`/1000 tokens per success,
    /// holding at most `cap_tokens`.
    pub fn new(earn_permille: u64, cap_tokens: u64) -> RetryBudget {
        RetryBudget {
            inner: Mutex::new(BudgetInner::new(earn_permille, cap_tokens)),
        }
    }

    /// Budget with the default 10% ratio and a 16-token cap.
    pub fn default_ratio() -> RetryBudget {
        RetryBudget::new(100, 16)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BudgetInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Credit one observed success.
    pub fn earn(&self) {
        self.lock().earn();
    }

    /// Try to spend one retry token. See [`NodeHealth::try_spend`].
    pub fn try_spend(&self, lane: Lane) -> bool {
        self.lock().try_spend(lane)
    }

    /// Current whole-token balance (for tests and reports).
    pub fn balance(&self) -> u64 {
        self.lock().millitokens / SPEND_COST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_converges_on_steady_rtt() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        for _ in 0..64 {
            h.record_sample(3, 800);
        }
        let snap = &h.snapshot()[0];
        // srtt converges to the true value; rttvar decays toward zero.
        assert!(snap.srtt.abs_diff(800) <= 8, "srtt={}", snap.srtt);
        assert!(snap.rttvar <= 16, "rttvar={}", snap.rttvar);
        let t = h.timeout_for(3).unwrap();
        assert!((100..2400).contains(&t), "timeout={t}");
    }

    #[test]
    fn estimator_tracks_a_step_change() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        for _ in 0..32 {
            h.record_sample(0, 200);
        }
        for _ in 0..64 {
            h.record_sample(0, 2000);
        }
        let snap = &h.snapshot()[0];
        assert!(snap.srtt > 1800, "srtt={}", snap.srtt);
    }

    #[test]
    fn cold_estimator_reports_none() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        assert_eq!(h.timeout_for(0), None);
        h.record_sample(0, 500);
        // Below warmup_samples: still cold.
        assert_eq!(h.timeout_for(0), None);
        h.record_sample(0, 500);
        h.record_sample(0, 500);
        assert!(h.timeout_for(0).is_some());
    }

    #[test]
    fn timeouts_inflate_the_deadline_and_success_resets_it() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        for _ in 0..8 {
            h.record_sample(1, 400);
        }
        let base = h.timeout_for(1).unwrap();
        h.record_outcome(1, Outcome::Unavailable { timed_out: true });
        h.record_outcome(1, Outcome::Unavailable { timed_out: true });
        let backed_off = h.timeout_for(1).unwrap();
        assert!(backed_off >= base * 2, "{backed_off} vs {base}");
        h.record_outcome(1, Outcome::Ok);
        assert_eq!(h.timeout_for(1).unwrap(), base);
    }

    #[test]
    fn circuit_opens_half_opens_and_closes() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        let cooldown = HealthConfig::sim_scale().circuit_cooldown;
        // Trip the circuit.
        for _ in 0..8 {
            h.record_outcome(5, Outcome::Unavailable { timed_out: false });
        }
        assert_eq!(h.snapshot()[0].circuit, CircuitState::Open);
        assert!(!h.allow(5), "open circuit must refuse before cooldown");
        // After the cooldown: exactly one canary is admitted.
        h.advance_now(cooldown + 1);
        assert!(h.allow(5), "first post-cooldown probe is the canary");
        assert_eq!(h.snapshot()[0].circuit, CircuitState::HalfOpen);
        assert!(!h.allow(5), "only one canary may be in flight");
        // Canary success closes the circuit.
        h.record_outcome(5, Outcome::Ok);
        assert_eq!(h.snapshot()[0].circuit, CircuitState::Closed);
        assert!(h.allow(5));
    }

    #[test]
    fn failed_canary_reopens_for_a_full_cooldown() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        let cooldown = HealthConfig::sim_scale().circuit_cooldown;
        for _ in 0..8 {
            h.record_outcome(2, Outcome::Unavailable { timed_out: false });
        }
        h.advance_now(cooldown + 1);
        assert!(h.allow(2));
        h.record_outcome(2, Outcome::Unavailable { timed_out: false });
        assert_eq!(h.snapshot()[0].circuit, CircuitState::Open);
        assert!(!h.allow(2), "re-opened circuit refuses again");
        h.advance_now(2 * cooldown + 2);
        assert!(h.allow(2), "second cooldown admits another canary");
    }

    #[test]
    fn app_level_rejections_do_not_trip_the_circuit() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        for _ in 0..32 {
            h.record_error(
                4,
                &NodeError::VersionConflict {
                    expected: 1,
                    actual: 2,
                },
            );
        }
        assert_eq!(h.snapshot()[0].circuit, CircuitState::Closed);
        assert_eq!(h.snapshot()[0].errors, 0);
    }

    #[test]
    fn hedge_delay_follows_policy() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        assert_eq!(h.hedge_delay(0), None, "off by default");
        h.set_policy(HedgePolicy::P99);
        assert_eq!(h.hedge_delay(0), None, "cold estimator");
        // Wide alternation keeps rttvar large enough that the variance
        // term dominates the 2·srtt clamp and the two policies separate.
        for i in 0..32 {
            h.record_sample(0, if i % 2 == 0 { 200 } else { 1000 });
        }
        let p99 = h.hedge_delay(0).unwrap();
        h.set_policy(HedgePolicy::P90);
        let p90 = h.hedge_delay(0).unwrap();
        assert!(p99 > p90, "p99 delay {p99} must exceed p90 {p90}");
        assert!(p90 >= 50, "floored at hedge_floor");

        // Stable node: rttvar collapses, so the delay is pinned at 2·srtt
        // rather than degenerating to ≈srtt (which would hedge every blip).
        for _ in 0..64 {
            h.record_sample(1, 500);
        }
        let stable = h.hedge_delay(1).unwrap();
        assert!(
            stable >= 900,
            "stable-node delay {stable} must be clamped to ~2x srtt"
        );
    }

    #[test]
    fn rank_nodes_orders_by_circuit_then_latency() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        for _ in 0..8 {
            h.record_sample(0, 5000); // slow but healthy
            h.record_sample(1, 100); // fast
            h.record_outcome(2, Outcome::Unavailable { timed_out: false });
        }
        let mut nodes = vec![0, 1, 2, 3];
        h.rank_nodes(&mut nodes);
        // 2 has an open circuit → last; 3 unknown (srtt 0) → first;
        // 1 beats 0 on latency.
        assert_eq!(nodes, vec![3, 1, 0, 2]);
    }

    #[test]
    fn straggler_is_relative_to_the_fleet_median() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        assert!(!h.straggler(0), "unknown node is not a straggler");
        for _ in 0..8 {
            h.record_sample(0, 30_000); // gray: ~30x the fleet
            for node in 1..9 {
                h.record_sample(node, 1_000);
            }
        }
        assert!(h.straggler(0), "30x the median srtt");
        assert!(!h.straggler(1), "a typical node is not");
        // Uniform slowness is not straggling: everyone at 30k.
        let u = NodeHealth::new(HealthConfig::sim_scale());
        for _ in 0..8 {
            for node in 0..9 {
                u.record_sample(node, 30_000);
            }
        }
        assert!(!u.straggler(0), "a uniformly slow fleet has no stragglers");
        // An open circuit is a straggler regardless of latency.
        for _ in 0..32 {
            u.record_outcome(3, Outcome::Unavailable { timed_out: false });
        }
        assert!(u.straggler(3), "open circuit routes around");
    }

    #[test]
    fn retry_budget_starvation_bound() {
        // With zero successes the budget allows at most its initial
        // balance, then refuses forever.
        let b = RetryBudget::new(100, 16);
        let mut spends = 0;
        for _ in 0..100 {
            if b.try_spend(Lane::Foreground) {
                spends += 1;
            }
        }
        assert_eq!(spends, 3, "cold-start allowance only");
        assert!(!b.try_spend(Lane::Foreground));
    }

    #[test]
    fn retry_budget_tracks_success_fraction() {
        let b = RetryBudget::new(100, 1000);
        for _ in 0..200 {
            b.earn();
        }
        // 200 successes at 10% ⇒ 20 tokens + 3 initial.
        let mut spends = 0;
        while b.try_spend(Lane::Foreground) {
            spends += 1;
        }
        assert_eq!(spends, 23);
    }

    #[test]
    fn background_lane_leaves_a_foreground_reserve() {
        let b = RetryBudget::new(100, 16);
        // Drain to exactly one token via background spends: the last
        // token is reserved for foreground.
        let mut bg = 0;
        while b.try_spend(Lane::Background) {
            bg += 1;
        }
        assert_eq!(bg, 2, "background stops above the reserve");
        assert!(b.try_spend(Lane::Foreground), "reserve is spendable by fg");
        assert!(!b.try_spend(Lane::Foreground));
    }

    #[test]
    fn hedge_counters_diff() {
        let h = NodeHealth::new(HealthConfig::sim_scale());
        h.note_hedge_fired();
        h.note_hedge_fired();
        h.note_hedge_won();
        let before = h.hedge_counters();
        h.note_hedge_fired();
        h.note_hedge_dup();
        let d = h.hedge_counters().since(&before);
        assert_eq!(
            d,
            HedgeCounters {
                fired: 1,
                won: 0,
                dups: 1,
                retries: 0
            }
        );
    }

    #[test]
    fn policy_knob_parses() {
        assert_eq!(HedgePolicy::from_knob("off"), HedgePolicy::Off);
        assert_eq!(HedgePolicy::from_knob("P90"), HedgePolicy::P90);
        assert_eq!(HedgePolicy::from_knob("p99"), HedgePolicy::P99);
        assert_eq!(HedgePolicy::from_knob("bogus"), HedgePolicy::Off);
    }
}
