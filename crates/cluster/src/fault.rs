//! Seeded fault injection — the paper's failure model, replayable.
//!
//! §IV assumes: (1) every node has the same availability `p`, (2) nodes
//! fail independently, (3) failures are fail-stop, (4) links are perfect.
//! [`FaultInjector`] realises (1)–(3) with a seeded RNG: each call to
//! [`FaultInjector::sample_bernoulli`] draws a fresh i.i.d. availability
//! pattern — the "state of the system at the moment an operation arrives"
//! that the closed forms integrate over. [`FaultSchedule`] supports
//! deterministic kill/revive scripts for failure-injection tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Cluster;

/// Seeded source of availability patterns for a cluster.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector with a fixed seed (same seed ⇒ same pattern
    /// sequence ⇒ bit-for-bit reproducible experiments).
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws an i.i.d. Bernoulli(`p`) availability pattern for `n` nodes.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli_pattern(&mut self, n: usize, p: f64) -> Vec<bool> {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        (0..n).map(|_| self.rng.random_bool(p)).collect()
    }

    /// Samples a pattern and applies it to the cluster; returns the
    /// pattern for bookkeeping.
    pub fn sample_bernoulli(&mut self, cluster: &Cluster, p: f64) -> Vec<bool> {
        let pattern = self.bernoulli_pattern(cluster.len(), p);
        cluster.apply_availability(&pattern);
        pattern
    }

    /// Draws a uniformly random set of exactly `failures` distinct nodes
    /// to kill (the "exactly f failures" experiments); the rest revive.
    pub fn kill_exactly(&mut self, cluster: &Cluster, failures: usize) -> Vec<usize> {
        let n = cluster.len();
        assert!(failures <= n, "cannot fail {failures} of {n} nodes");
        // Partial Fisher-Yates over the index vector.
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..failures {
            let j = self.rng.random_range(i..n);
            indices.swap(i, j);
        }
        let killed: Vec<usize> = indices[..failures].to_vec();
        let mut up = vec![true; n];
        for &i in &killed {
            up[i] = false;
        }
        cluster.apply_availability(&up);
        killed
    }
}

/// One step of a deterministic fault script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Mark a node failed.
    Kill(usize),
    /// Bring a node back (with its stale pre-failure state).
    Revive(usize),
}

/// An ordered fault script, applied step by step between protocol
/// operations — deterministic failure-injection for integration tests.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultSchedule {
    /// Builds a schedule from events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultSchedule { events, cursor: 0 }
    }

    /// Applies the next event, if any; returns it.
    pub fn step(&mut self, cluster: &Cluster) -> Option<FaultEvent> {
        let event = *self.events.get(self.cursor)?;
        self.cursor += 1;
        match event {
            FaultEvent::Kill(i) => cluster.kill(i),
            FaultEvent::Revive(i) => cluster.revive(i),
        }
        Some(event)
    }

    /// Applies every remaining event.
    pub fn run_to_end(&mut self, cluster: &Cluster) {
        while self.step(cluster).is_some() {}
    }

    /// Remaining event count.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_patterns() {
        let mut a = FaultInjector::new(42);
        let mut b = FaultInjector::new(42);
        for _ in 0..10 {
            assert_eq!(a.bernoulli_pattern(20, 0.7), b.bernoulli_pattern(20, 0.7));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(1);
        let mut b = FaultInjector::new(2);
        let pa: Vec<Vec<bool>> = (0..5).map(|_| a.bernoulli_pattern(30, 0.5)).collect();
        let pb: Vec<Vec<bool>> = (0..5).map(|_| b.bernoulli_pattern(30, 0.5)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut inj = FaultInjector::new(7);
        assert!(inj.bernoulli_pattern(50, 1.0).iter().all(|&b| b));
        assert!(inj.bernoulli_pattern(50, 0.0).iter().all(|&b| !b));
    }

    #[test]
    fn bernoulli_frequency_sane() {
        let mut inj = FaultInjector::new(99);
        let mut live = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            live += inj
                .bernoulli_pattern(10, 0.8)
                .iter()
                .filter(|&&b| b)
                .count();
        }
        let freq = live as f64 / (trials * 10) as f64;
        assert!((freq - 0.8).abs() < 0.02, "empirical p = {freq}");
    }

    #[test]
    fn sample_applies_to_cluster() {
        let c = Cluster::new(10);
        let mut inj = FaultInjector::new(3);
        let pattern = inj.sample_bernoulli(&c, 0.5);
        for (i, &up) in pattern.iter().enumerate() {
            assert_eq!(c.node(i).is_up(), up);
        }
    }

    #[test]
    fn kill_exactly_counts() {
        let c = Cluster::new(8);
        let mut inj = FaultInjector::new(11);
        for f in 0..=8 {
            let killed = inj.kill_exactly(&c, f);
            assert_eq!(killed.len(), f);
            assert_eq!(c.live_nodes().len(), 8 - f);
            // Killed indices are distinct.
            let mut sorted = killed.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), f);
        }
    }

    #[test]
    fn schedule_runs_in_order() {
        let c = Cluster::new(3);
        let mut sched = FaultSchedule::new(vec![
            FaultEvent::Kill(0),
            FaultEvent::Kill(2),
            FaultEvent::Revive(0),
        ]);
        assert_eq!(sched.remaining(), 3);
        assert_eq!(sched.step(&c), Some(FaultEvent::Kill(0)));
        assert_eq!(c.live_nodes(), vec![1, 2]);
        sched.run_to_end(&c);
        assert_eq!(c.live_nodes(), vec![0, 1]);
        assert_eq!(sched.step(&c), None);
        assert_eq!(sched.remaining(), 0);
    }
}
