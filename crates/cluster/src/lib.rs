//! # tq-cluster — a simulated distributed storage substrate
//!
//! The TRAP-ERC paper evaluates its protocol under a precise failure
//! model: nodes are independent, fail-stop, equally available with
//! probability `p`, and links never fail (§IV assumptions 1–4). This
//! crate *is* that model, made executable:
//!
//! * [`node::StorageNode`] — one storage server exposing exactly the
//!   primitive surface the paper's pseudocode calls:
//!   `write(x)`, `read(id)`, `version(id)` (a version *vector* on parity
//!   nodes — the columns of the paper's k×(n−k) matrix V) and
//!   `add(buf)` (the parity fold `b_j ← b_j + buf`, applied under a
//!   version guard). Every mutation is monotone conditional, so the node
//!   is safe under at-least-once delivery.
//! * [`rpc`] — the idempotent command vocabulary between protocol and
//!   node: [`rpc::Request`]/[`rpc::Response`] payloads wrapped in
//!   [`rpc::Envelope`]s (op identity + round epoch), answered by
//!   [`rpc::Reply`]s echoing that identity, executed through the
//!   [`rpc::NodeApi`] trait that decouples command handling from
//!   transport dispatch.
//! * [`cluster::Cluster`] — a set of nodes with fail-stop switches and
//!   per-node IO accounting.
//! * [`transport`] — how protocol code reaches nodes: [`transport::LocalTransport`]
//!   invokes nodes synchronously (deterministic, fast — the default for
//!   experiments), [`transport::ChannelTransport`] runs a thread per node behind
//!   crossbeam channels (the concurrent configuration integration tests
//!   exercise).
//! * [`quorum_round`] — the scatter-gather round engine: one trapezoid
//!   level's requests issued at once through [`transport::Transport::multicall`],
//!   completed on the paper's `w_l`/`r_l` quorum condition, stragglers
//!   and failures reported for accounting.
//! * [`fault`] — seeded Bernoulli availability sampling and fault
//!   schedules, so every experiment is replayable bit-for-bit.
//! * [`health`] — the adaptive straggler-tolerance layer: per-node
//!   latency/variance estimation ([`health::NodeHealth`]) driving
//!   adaptive timeouts and hedged sends, circuit breaking for gray
//!   nodes, and the token-bucket [`health::RetryBudget`] capping all
//!   client-side re-issue traffic.
//! * [`sim`] — the deterministic simulation transport
//!   ([`sim::SimTransport`]): a seeded virtual-time event scheduler that
//!   drives the same fan-outs through an adversarial [`sim::NetworkModel`]
//!   (delay, loss, duplication, asymmetric partitions, crash-restart with
//!   durable or volatile state, and an at-least-once mode with
//!   cross-round redelivery) — the substrate of the DST harness in
//!   `tq-sim`.
//! * [`wire`] — the versioned, length-prefixed binary frame format for
//!   [`rpc::Envelope`]/[`rpc::Reply`]: self-checking 32-byte header,
//!   zero-copy payload decode, typed [`wire::DecodeError`]s — never a
//!   panic, whatever the bytes.
//! * [`tcp`] — the same [`transport::Transport`] seam over real
//!   loopback/network sockets: [`tcp::TcpNodeServer`] hosts any
//!   [`rpc::NodeApi`], [`tcp::TcpTransport`] pools connections per node
//!   with inflight backpressure, reconnect-with-backoff, and timeouts.
//! * [`storage`] — the pluggable persistence seam *under* the node:
//!   [`storage::StorageBackend`] with a striped in-memory map, a
//!   crash-safe append-only log (checksummed records, fsync policy,
//!   torn-tail recovery, compaction), and a deterministic faulting
//!   wrapper for the DST's storage fault axis.
//!
//! Nothing here knows about trapezoids or erasure codes; `tq-trapezoid`
//! composes this substrate with `tq-erasure` and `tq-quorum` into the
//! paper's Algorithms 1 and 2.

// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub mod cluster;
pub mod detmap;
pub mod fault;
pub mod health;
pub mod node;
pub mod quorum_round;
pub mod rpc;
pub mod sim;
pub mod stats;
pub mod storage;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use cluster::Cluster;
pub use fault::FaultInjector;
pub use health::{
    CircuitState, HealthConfig, HedgeCounters, HedgePolicy, NodeHealth, NodeSnapshot, Outcome,
    RetryBudget,
};
pub use node::{NodeBuilder, NodeId, StorageNode};
pub use quorum_round::{
    Accepted, Completion, MultiRound, PlanOp, QuorumRound, Rejected, RoundOutcome,
};
pub use rpc::{BlockId, Envelope, Lane, NodeApi, NodeError, OpId, Reply, Request, Response};
pub use sim::{NetworkModel, SimFault, SimStats, SimTransport};
pub use stats::IoStats;
pub use storage::{
    AppendLogBackend, FaultingBackend, FsyncPolicy, MemoryBackend, StorageBackend, StorageError,
    StorageFaults, StoredBlock,
};
pub use tcp::{TcpConfig, TcpNodeServer, TcpTransport};
pub use transport::{ChannelTransport, LocalTransport, RoundReply, Transport};
pub use wire::{DecodeError, Frame, FrameKind, Header};
