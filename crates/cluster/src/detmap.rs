//! Deterministic hash containers for sim-reachable state.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds SipHash from
//! OS entropy, so iteration order differs between *runs* — which breaks
//! the DST reproducibility contract (PR 3): two replays of the same seed
//! must make identical scheduling decisions, and any code that iterates a
//! map (version sweeps, recovery scans, stats) feeds those decisions.
//!
//! [`DetHashMap`]/[`DetHashSet`] keep std's table implementation but swap
//! the hasher for fixed-key FNV-1a, making layout a pure function of the
//! insertion sequence. Integers hash via their little-endian bytes so the
//! layout is also platform-independent. This is an *internal* container:
//! keys are trusted protocol identifiers (`OpId`, `BlockId`, node ids),
//! not attacker-controlled strings, so HashDoS resistance is not required.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit. Deterministic: no per-process seed.
pub struct DetHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for DetHasher {
    fn default() -> Self {
        DetHasher { state: FNV_OFFSET }
    }
}

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    // Fix the byte order for integer keys so the table layout does not
    // depend on host endianness (the default impls hash native-endian
    // bytes).
    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }
    fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }
    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }
}

/// `HashMap` with run-to-run deterministic layout.
// tq-lint: allow(sim-determinism) -- the whole point of this alias: std's table with a fixed-key FNV hasher, layout is a pure function of insertion order.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// `HashSet` with run-to-run deterministic layout.
// tq-lint: allow(sim-determinism) -- same fixed-key hasher as DetHashMap; no OS entropy involved.
pub type DetHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<DetHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(write: impl Fn(&mut DetHasher)) -> u64 {
        let mut h = DetHasher::default();
        write(&mut h);
        h.finish()
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(hash_of(|h| h.write(b"")), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_of(|h| h.write(b"a")), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_of(|h| h.write(b"foobar")), 0x85944171f73967e8);
    }

    #[test]
    fn integer_writes_are_endian_fixed() {
        // write_u32 must equal hashing the little-endian bytes explicitly,
        // whatever the host endianness.
        assert_eq!(
            hash_of(|h| h.write_u32(0xdead_beef)),
            hash_of(|h| h.write(&0xdead_beef_u32.to_le_bytes())),
        );
        assert_eq!(
            hash_of(|h| h.write_u64(7)),
            hash_of(|h| h.write(&7u64.to_le_bytes())),
        );
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m = DetHashMap::default();
            for i in 0..1000u64 {
                m.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
