//! The request/response vocabulary between protocol and storage nodes.
//!
//! One variant exists per primitive the paper's pseudocode invokes on a
//! node, plus stripe-initialisation calls. Payloads travel as
//! [`bytes::Bytes`] so the channel transport forwards blocks without
//! copying.

use bytes::Bytes;
use core::fmt;

/// Identifier of a stored object (the `id` of the paper's pseudocode).
/// One `BlockId` names one stripe; each node holds its own component of
/// that stripe.
pub type BlockId = u64;

/// A request to a single storage node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Install a data block (stripe creation); resets its version to 0.
    InitData {
        /// Target object.
        id: BlockId,
        /// Initial contents.
        bytes: Bytes,
    },
    /// Install a parity block (stripe creation) tracking `k` data blocks;
    /// all version-vector entries reset to 0.
    InitParity {
        /// Target object.
        id: BlockId,
        /// Initial parity contents.
        bytes: Bytes,
        /// Number of data blocks the version vector tracks.
        k: usize,
    },
    /// `N_i.read(id)` — full data block with its version.
    ReadData {
        /// Target object.
        id: BlockId,
    },
    /// `u.write(x)` — overwrite a data block, stamping `version`.
    WriteData {
        /// Target object.
        id: BlockId,
        /// New contents.
        bytes: Bytes,
        /// Version stamp the write carries (protocol computed it as
        /// `old version + 1`).
        version: u64,
    },
    /// `u.version(id)` on a data node — current version of the block.
    VersionData {
        /// Target object.
        id: BlockId,
    },
    /// `u.version(id)` on a parity node — the node's column of the
    /// version matrix V: one entry per data block.
    VersionVector {
        /// Target object.
        id: BlockId,
    },
    /// Read a parity block with its version vector (decode path).
    ReadParity {
        /// Target object.
        id: BlockId,
    },
    /// Repair primitive (not in the paper's pseudocode — see the scrub
    /// extension in `tq-trapezoid`): unconditionally replace a parity
    /// block and its whole version vector with a reconstructed state.
    PutParity {
        /// Target object.
        id: BlockId,
        /// Recomputed parity contents.
        bytes: Bytes,
        /// Version vector matching the reconstructed stripe state.
        versions: Vec<u64>,
    },
    /// `u.add(αj,i·(x − chunk))` — fold a delta into the parity block,
    /// guarded: applies only if the node's version for `block_index`
    /// equals `expected_version`, then advances it to `new_version`
    /// (Algorithm 1 lines 26–28).
    AddParity {
        /// Target object.
        id: BlockId,
        /// Which data block this delta belongs to (`0 ≤ i < k`).
        block_index: usize,
        /// The delta bytes `α_{j,i}·(x − c)`.
        delta: Bytes,
        /// Version the node must currently hold for `block_index`.
        expected_version: u64,
        /// Version to advance to on success.
        new_version: u64,
    },
}

/// A successful response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Generic acknowledgement (init, write, add).
    Ack,
    /// Data block contents plus version.
    Data {
        /// Block contents.
        bytes: Bytes,
        /// Block version.
        version: u64,
    },
    /// Parity block contents plus its version vector.
    Parity {
        /// Parity contents.
        bytes: Bytes,
        /// Version per data block.
        versions: Vec<u64>,
    },
    /// A single version number.
    Version(u64),
    /// A parity node's version vector (column of V).
    Versions(Vec<u64>),
}

/// Errors a node (or the transport in front of it) can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The node is failed (fail-stop): every operation on it errors.
    Down,
    /// No block with that id on this node.
    NotFound,
    /// The request addressed the wrong kind of block (e.g. `AddParity`
    /// on a data node).
    WrongKind,
    /// An `AddParity` guard failed: the stored version for the block did
    /// not match.
    VersionConflict {
        /// Version the request expected.
        expected: u64,
        /// Version actually stored.
        actual: u64,
    },
    /// Payload length disagreed with the stored block.
    SizeMismatch {
        /// Stored block length.
        stored: usize,
        /// Request payload length.
        got: usize,
    },
    /// `block_index` outside the version vector.
    BadBlockIndex {
        /// Requested index.
        index: usize,
        /// Vector length (k).
        k: usize,
    },
    /// The transport lost the node (channel closed).
    TransportClosed,
    /// The round-trip budget elapsed without an answer (simulated
    /// networks only: the request or its reply was lost, delayed past
    /// the deadline, or stranded behind a partition). The request *may
    /// still have executed* on the node — a timed-out write is a
    /// partial write, not a no-op.
    TimedOut,
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Down => write!(f, "node is down (fail-stop)"),
            NodeError::NotFound => write!(f, "block not found on node"),
            NodeError::WrongKind => write!(f, "operation does not match stored block kind"),
            NodeError::VersionConflict { expected, actual } => {
                write!(
                    f,
                    "version guard failed: expected {expected}, node holds {actual}"
                )
            }
            NodeError::SizeMismatch { stored, got } => {
                write!(f, "payload of {got} bytes against stored block of {stored}")
            }
            NodeError::BadBlockIndex { index, k } => {
                write!(
                    f,
                    "block index {index} outside version vector of length {k}"
                )
            }
            NodeError::TransportClosed => write!(f, "transport to node closed"),
            NodeError::TimedOut => write!(f, "no reply within the round-trip budget"),
        }
    }
}

impl std::error::Error for NodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(NodeError::Down.to_string(), "node is down (fail-stop)");
        assert!(NodeError::VersionConflict {
            expected: 3,
            actual: 5
        }
        .to_string()
        .contains("expected 3"));
    }

    #[test]
    fn request_clone_is_cheap_for_payloads() {
        // Bytes clones share the buffer; this is why payloads are Bytes.
        let payload = Bytes::from(vec![7u8; 1024]);
        let r = Request::InitData {
            id: 1,
            bytes: payload.clone(),
        };
        let r2 = r.clone();
        match (&r, &r2) {
            (Request::InitData { bytes: a, .. }, Request::InitData { bytes: b, .. }) => {
                assert_eq!(a.as_ptr(), b.as_ptr(), "buffer must be shared");
            }
            _ => unreachable!(),
        }
    }
}
