//! The idempotent command vocabulary between protocol and storage nodes.
//!
//! Three layers compose the node-facing API:
//!
//! * [`Request`] / [`Response`] — the *payload* vocabulary: one variant
//!   per primitive the paper's pseudocode invokes on a node, plus
//!   stripe-initialisation and repair calls. Payloads travel as
//!   [`bytes::Bytes`] so the channel transport forwards blocks without
//!   copying.
//! * [`Envelope`] / [`Reply`] — the *delivery* vocabulary: every command
//!   is wrapped in an envelope carrying a globally unique [`OpId`] and
//!   the issuing round's epoch, and every reply echoes both. Fan-out
//!   engines match replies to requests **by identity**, never by arrival
//!   order, so duplicated, reordered and cross-round-stale deliveries
//!   are recognised instead of miscounted.
//! * [`NodeApi`] — the executable surface of a storage node. Transports
//!   dispatch envelopes to a `dyn NodeApi` and never inspect payloads,
//!   which is what lets the same node serve the in-process, threaded and
//!   simulated transports interchangeably.
//!
//! # At-least-once semantics
//!
//! The API is designed for fabrics that may deliver a command **more
//! than once, arbitrarily late**. Every mutation is *monotone
//! conditional* on version state (see each variant's documentation):
//! applying the same command twice, or applying a stale command after a
//! newer one, leaves the node in the state exactly-once delivery would
//! have produced — stale deliveries are acknowledged idempotently
//! instead of clobbering newer state. Nodes additionally remember a
//! window of recently applied [`OpId`]s, so an exact redelivery of a
//! non-idempotent primitive (the parity fold) short-circuits to its
//! recorded acknowledgement rather than re-executing.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use core::fmt;

/// Identifier of a stored object (the `id` of the paper's pseudocode).
/// One `BlockId` names one stripe; each node holds its own component of
/// that stripe.
pub type BlockId = u64;

/// Globally unique identity of one logical node command.
///
/// Allocated once per command via [`OpId::fresh`] and carried end to end:
/// the node's idempotency window is keyed by it, and the reply echoes it
/// so the issuing round can match answers by identity. Redelivering an
/// envelope **reuses** its op id (that is the point); two distinct
/// commands never share one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

impl OpId {
    /// Allocates a fresh, process-unique op id.
    pub fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        OpId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// Allocates the next round epoch. Every fan-out round
/// ([`QuorumRound`](crate::quorum_round::QuorumRound) /
/// [`MultiRound`](crate::quorum_round::MultiRound)) stamps its envelopes
/// with one epoch, so a reply surfacing in a *later* round is
/// recognisable as a straggler at a glance (epoch 0 is reserved for
/// single [`Transport::call`](crate::transport::Transport::call)s).
pub fn next_round_epoch() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Priority lane a command travels in.
///
/// Foreground is client-visible work; Background is maintenance (scrub,
/// rebuild, replacement fetches). Transports and the retry budget use
/// the lane to make maintenance traffic yield to foreground ops: hedges
/// are only fired for foreground sends, and background retries must
/// leave a foreground token reserve (see
/// [`RetryBudget`](crate::health::RetryBudget)). On the wire the lane
/// travels as header flag bit `0x0001`; foreground (the default)
/// encodes as 0, so frames from pre-lane peers decode as foreground and
/// foreground frames are byte-identical to pre-lane encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Client-visible request path. The default.
    #[default]
    Foreground,
    /// Maintenance traffic: yields hedge/retry budget to foreground.
    Background,
}

/// The self-describing wrapper every node command travels in.
///
/// Redelivering the *same* envelope is always safe; the node absorbs it
/// idempotently:
///
/// ```
/// use tq_cluster::rpc::{Envelope, NodeApi, Request, Response};
/// use tq_cluster::{NodeId, StorageNode};
/// use bytes::Bytes;
///
/// let node = StorageNode::new(NodeId(0));
/// node.execute(Envelope::new(Request::InitData {
///     id: 7,
///     bytes: Bytes::from_static(b"v0"),
/// }));
/// let write = Envelope::new(Request::WriteData {
///     id: 7,
///     bytes: Bytes::from_static(b"v1"),
///     version: 1,
/// });
/// let first = node.execute(write.clone());
/// let replay = node.execute(write); // an at-least-once fabric did this
/// assert_eq!(first.result, Ok(Response::Ack));
/// assert_eq!(replay.result, Ok(Response::Ack), "absorbed, not re-applied");
/// assert_eq!(first.op_id, replay.op_id, "replies echo the command identity");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Identity of the logical command (stable across redeliveries).
    pub op_id: OpId,
    /// Epoch of the round that issued the command (0 = no round).
    pub round_epoch: u64,
    /// Priority lane (foreground by default; maintenance traffic marks
    /// itself background so it yields hedge/retry budget).
    pub lane: Lane,
    /// The command itself.
    pub payload: Request,
}

impl Envelope {
    /// Wraps a payload with a fresh op id, outside any round.
    pub fn new(payload: Request) -> Self {
        Envelope::in_epoch(payload, 0)
    }

    /// Wraps a payload with a fresh op id, tagged with a round epoch.
    pub fn in_epoch(payload: Request, round_epoch: u64) -> Self {
        Envelope {
            op_id: OpId::fresh(),
            round_epoch,
            lane: Lane::Foreground,
            payload,
        }
    }

    /// Marks the command as background/maintenance traffic.
    pub fn background(mut self) -> Self {
        self.lane = Lane::Background;
        self
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@e{} {}", self.op_id, self.round_epoch, self.payload)
    }
}

/// A node's answer to one [`Envelope`], echoing the command's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The command this reply answers.
    pub op_id: OpId,
    /// The round epoch the command carried.
    pub round_epoch: u64,
    /// What the node (or the transport in front of it) answered.
    pub result: Result<Response, NodeError>,
}

impl Reply {
    /// Builds the reply to `env` carrying `result`.
    pub fn to(env: &Envelope, result: Result<Response, NodeError>) -> Self {
        Reply {
            op_id: env.op_id,
            round_epoch: env.round_epoch,
            result,
        }
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@e{} -> ", self.op_id, self.round_epoch)?;
        match &self.result {
            Ok(resp) => write!(f, "{resp}"),
            Err(e) => write!(f, "error: {e}"),
        }
    }
}

/// The executable command surface of a storage node.
///
/// Decouples node command handling from transport dispatch: a transport
/// routes [`Envelope`]s to a `dyn NodeApi` and forwards the [`Reply`],
/// with no knowledge of the payload vocabulary. Implementations must be
/// safe under **at-least-once delivery**: executing the same envelope
/// any number of times, interleaved arbitrarily with other commands,
/// must leave state as if it executed exactly once.
///
/// ```
/// use tq_cluster::rpc::{Envelope, NodeApi, Request, Response};
/// use tq_cluster::{NodeId, StorageNode};
///
/// // Transports only ever see the trait: envelope in, reply out.
/// fn probe(node: &dyn NodeApi) -> bool {
///     let env = Envelope::new(Request::Ping);
///     let op = env.op_id;
///     let reply = node.execute(env);
///     reply.op_id == op && reply.result == Ok(Response::Pong)
/// }
///
/// assert!(probe(&StorageNode::new(NodeId(0))));
/// ```
pub trait NodeApi: Send + Sync {
    /// Executes one enveloped command.
    fn execute(&self, env: Envelope) -> Reply;
}

/// A request to a single storage node.
///
/// Every mutating variant is **idempotent by construction** — its
/// effect is conditional on version state, so a duplicated or stale
/// delivery acknowledges without clobbering. See each variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Install a data block (stripe creation) at version 0.
    ///
    /// First-wins: if the node already holds a data block under `id`,
    /// the request acknowledges **without resetting it** — a redelivered
    /// create must not roll a written block back to version 0. Use a
    /// fresh `BlockId` to create a genuinely new object.
    InitData {
        /// Target object.
        id: BlockId,
        /// Initial contents.
        bytes: Bytes,
    },
    /// Install a parity block (stripe creation) tracking `k` data blocks,
    /// all version-vector entries 0. First-wins, like [`Request::InitData`].
    InitParity {
        /// Target object.
        id: BlockId,
        /// Initial parity contents.
        bytes: Bytes,
        /// Number of data blocks the version vector tracks.
        k: usize,
        /// Cross-checksum vector of the stripe's data blocks at creation
        /// (one entry per data block; empty = writer did not supply one).
        /// Stored alongside the version vector and served back on reads
        /// so clients can verify any fetched shard before decoding.
        checks: Vec<u64>,
    },
    /// `N_i.read(id)` — full data block with its version.
    ReadData {
        /// Target object.
        id: BlockId,
    },
    /// `u.write(x)` — **compare-and-advance** write of a data block.
    ///
    /// Applies iff `version >= ` the stored version (the node's version
    /// never regresses); a stale delivery (`version <` stored)
    /// acknowledges idempotently without touching the block — the write
    /// it carries was superseded, which linearises it before the newer
    /// one.
    WriteData {
        /// Target object.
        id: BlockId,
        /// New contents.
        bytes: Bytes,
        /// Version stamp the write carries (protocol computed it as
        /// `old version + 1`).
        version: u64,
    },
    /// `u.version(id)` on a data node — current version of the block.
    VersionData {
        /// Target object.
        id: BlockId,
    },
    /// `u.version(id)` on a parity node — the node's column of the
    /// version matrix V: one entry per data block.
    VersionVector {
        /// Target object.
        id: BlockId,
    },
    /// Read a parity block with its version vector (decode path).
    ReadParity {
        /// Target object.
        id: BlockId,
    },
    /// Repair primitive (not in the paper's pseudocode — see the scrub
    /// extension in `tq-trapezoid`): **monotone conditional** replace of
    /// a parity block and its whole version vector with a reconstructed
    /// state.
    ///
    /// Applies iff `versions` dominates-or-equals the stored vector
    /// componentwise (anti-entropy only moves parity state forward). A
    /// strictly dominated (stale) delivery acknowledges idempotently; an
    /// *incomparable* vector — the node folded a delta the
    /// reconstruction missed — is rejected with
    /// [`NodeError::VectorConflict`] rather than silently regressing
    /// entries.
    WriteParity {
        /// Target object.
        id: BlockId,
        /// Recomputed parity contents.
        bytes: Bytes,
        /// Version vector matching the reconstructed stripe state.
        versions: Vec<u64>,
        /// Cross-checksum vector matching the reconstructed stripe state
        /// (empty = unknown; replaces the stored vector on apply).
        checks: Vec<u64>,
    },
    /// `u.add(αj,i·(x − chunk))` — fold a delta into the parity block,
    /// guarded: applies only if the node's version for `block_index`
    /// equals `expected_version`, then advances it to `new_version`
    /// (Algorithm 1 lines 26–28). The fold is the one non-idempotent
    /// primitive (XOR twice cancels), so exact redeliveries are absorbed
    /// by the node's applied-op window instead of a version rule.
    AddParity {
        /// Target object.
        id: BlockId,
        /// Which data block this delta belongs to (`0 ≤ i < k`).
        block_index: usize,
        /// The delta bytes: the raw `(x − c)` when `coeff != 1` (the node
        /// folds `coeff·delta` in place), or a pre-scaled
        /// `α_{j,i}·(x − c)` with `coeff == 1` (the legacy form old peers
        /// send). Either way the fold is
        /// `parity ← parity + coeff·delta`.
        delta: Bytes,
        /// The coefficient `α_{j,i}` to scale `delta` by during the fold.
        /// `1` means "delta is already scaled" — the backward-compatible
        /// default, and what pre-coefficient peers decode to.
        coeff: u8,
        /// Version the node must currently hold for `block_index`.
        expected_version: u64,
        /// Version to advance to on success.
        new_version: u64,
        /// The data block's cross-checksum after the write this delta
        /// belongs to. `None` (an unchecksummed writer) invalidates the
        /// stored vector — better no vector than a stale one.
        new_check: Option<u64>,
    },
}

impl Request {
    /// `true` for requests that (conditionally) mutate node state — the
    /// ones the node's applied-op idempotency window tracks.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Request::InitData { .. }
                | Request::InitParity { .. }
                | Request::WriteData { .. }
                | Request::WriteParity { .. }
                | Request::AddParity { .. }
        )
    }

    /// Short kind label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::InitData { .. } => "init-data",
            Request::InitParity { .. } => "init-parity",
            Request::ReadData { .. } => "read-data",
            Request::WriteData { .. } => "write-data",
            Request::VersionData { .. } => "version-data",
            Request::VersionVector { .. } => "version-vector",
            Request::ReadParity { .. } => "read-parity",
            Request::WriteParity { .. } => "write-parity",
            Request::AddParity { .. } => "add-parity",
        }
    }
}

impl fmt::Display for Request {
    /// Compact one-line rendering (ids and versions, never payload
    /// bytes) — what DST failure minimisation prints per message.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Ping => write!(f, "ping"),
            Request::InitData { id, bytes } => {
                write!(f, "init-data(id={id}, {} bytes)", bytes.len())
            }
            Request::InitParity { id, bytes, k, .. } => {
                write!(f, "init-parity(id={id}, {} bytes, k={k})", bytes.len())
            }
            Request::ReadData { id } => write!(f, "read-data(id={id})"),
            Request::WriteData { id, bytes, version } => {
                write!(f, "write-data(id={id}, v={version}, {} bytes)", bytes.len())
            }
            Request::VersionData { id } => write!(f, "version-data(id={id})"),
            Request::VersionVector { id } => write!(f, "version-vector(id={id})"),
            Request::ReadParity { id } => write!(f, "read-parity(id={id})"),
            Request::WriteParity {
                id,
                bytes,
                versions,
                ..
            } => write!(
                f,
                "write-parity(id={id}, v={versions:?}, {} bytes)",
                bytes.len()
            ),
            Request::AddParity {
                id,
                block_index,
                coeff,
                expected_version,
                new_version,
                ..
            } => write!(
                f,
                "add-parity(id={id}, block={block_index}, coeff={coeff}, v{expected_version}->v{new_version})"
            ),
        }
    }
}

/// A successful response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Generic acknowledgement (init, write, add) — also returned for
    /// idempotently absorbed stale/duplicate mutations, whose effect is
    /// durable at a version at least as new as the one they carried.
    Ack,
    /// Data block contents plus version.
    Data {
        /// Block contents.
        bytes: Bytes,
        /// Block version.
        version: u64,
        /// The self-checksum the node stamped at install time
        /// ([`tq_gf256::check::block_check`] of the installed payload).
        /// A client recomputing the checksum of `bytes` and getting
        /// something else is holding corrupted bytes.
        check: u64,
    },
    /// Parity block contents plus its version vector.
    Parity {
        /// Parity contents.
        bytes: Bytes,
        /// Version per data block.
        versions: Vec<u64>,
        /// The stripe's cross-checksum vector as this replica knows it
        /// (one entry per data block; empty = unknown). Lets the client
        /// verify `bytes` against `Σ combine(α_{j,i}, checks[i])` and
        /// verify fetched data shards against their entries.
        checks: Vec<u64>,
    },
    /// A single version number.
    Version(u64),
    /// A parity node's version vector (column of V).
    Versions(Vec<u64>),
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Pong => write!(f, "pong"),
            Response::Ack => write!(f, "ack"),
            Response::Data { bytes, version, .. } => {
                write!(f, "data(v={version}, {} bytes)", bytes.len())
            }
            Response::Parity {
                bytes, versions, ..
            } => {
                write!(f, "parity(v={versions:?}, {} bytes)", bytes.len())
            }
            Response::Version(v) => write!(f, "version({v})"),
            Response::Versions(v) => write!(f, "versions({v:?})"),
        }
    }
}

/// Errors a node (or the transport in front of it) can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The node is failed (fail-stop): every operation on it errors.
    Down,
    /// No block with that id on this node.
    NotFound,
    /// The request addressed the wrong kind of block (e.g. `AddParity`
    /// on a data node).
    WrongKind,
    /// An `AddParity` guard failed: the stored version for the block did
    /// not match.
    VersionConflict {
        /// Version the request expected.
        expected: u64,
        /// Version actually stored.
        actual: u64,
    },
    /// A `WriteParity` carried a version vector *incomparable* with the
    /// stored one: some entry is newer on the node, some in the request.
    /// Applying either way would regress one side, so the node keeps its
    /// state.
    VectorConflict {
        /// First vector index where the node is strictly newer.
        index: usize,
        /// The request's entry at that index.
        got: u64,
        /// The stored entry at that index.
        stored: u64,
    },
    /// Payload length disagreed with the stored block.
    SizeMismatch {
        /// Stored block length.
        stored: usize,
        /// Request payload length.
        got: usize,
    },
    /// `block_index` outside the version vector.
    BadBlockIndex {
        /// Requested index.
        index: usize,
        /// Vector length (k).
        k: usize,
    },
    /// The node detected that the block it holds (or was served by its
    /// disk) is corrupt — the stored bytes no longer match the
    /// self-checksum stamped at install time. Unlike [`Down`](Self::Down)
    /// the node is alive and its *other* blocks are fine; readers treat
    /// the reply as an erasure of this one shard and scrub targets the
    /// node for repair.
    Corrupt,
    /// The transport lost the node (channel closed).
    TransportClosed,
    /// The transport (or node) shed the request under load: its inflight
    /// cap was exhausted and did not drain within the overload wait.
    /// Unlike [`TimedOut`](Self::TimedOut) the request was **never
    /// sent**, so retrying elsewhere is always safe.
    Overloaded,
    /// The round-trip budget elapsed without an answer (simulated
    /// networks only: the request or its reply was lost, delayed past
    /// the deadline, or stranded behind a partition). The request *may
    /// still have executed* on the node — a timed-out write is a
    /// partial write, not a no-op.
    TimedOut,
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Down => write!(f, "node is down (fail-stop)"),
            NodeError::NotFound => write!(f, "block not found on node"),
            NodeError::WrongKind => write!(f, "operation does not match stored block kind"),
            NodeError::VersionConflict { expected, actual } => {
                write!(
                    f,
                    "version guard failed: expected {expected}, node holds {actual}"
                )
            }
            NodeError::VectorConflict { index, got, stored } => write!(
                f,
                "version vector incomparable: entry {index} is {got} in the request but {stored} on the node"
            ),
            NodeError::SizeMismatch { stored, got } => {
                write!(f, "payload of {got} bytes against stored block of {stored}")
            }
            NodeError::BadBlockIndex { index, k } => {
                write!(
                    f,
                    "block index {index} outside version vector of length {k}"
                )
            }
            NodeError::Corrupt => {
                write!(f, "node detected a corrupt stored block (checksum mismatch)")
            }
            NodeError::TransportClosed => write!(f, "transport to node closed"),
            NodeError::Overloaded => {
                write!(f, "transport shed the request: inflight cap exhausted")
            }
            NodeError::TimedOut => write!(f, "no reply within the round-trip budget"),
        }
    }
}

impl std::error::Error for NodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(NodeError::Down.to_string(), "node is down (fail-stop)");
        assert!(NodeError::VersionConflict {
            expected: 3,
            actual: 5
        }
        .to_string()
        .contains("expected 3"));
        assert!(NodeError::VectorConflict {
            index: 2,
            got: 4,
            stored: 7
        }
        .to_string()
        .contains("entry 2"));
    }

    #[test]
    fn op_ids_are_unique_and_envelopes_echo() {
        let a = Envelope::new(Request::Ping);
        let b = Envelope::new(Request::Ping);
        assert_ne!(a.op_id, b.op_id);
        let reply = Reply::to(&a, Ok(Response::Pong));
        assert_eq!(reply.op_id, a.op_id);
        assert_eq!(reply.round_epoch, 0);
    }

    #[test]
    fn envelope_and_reply_display_compactly() {
        let env = Envelope::in_epoch(
            Request::WriteData {
                id: 5,
                bytes: Bytes::from_static(b"abcd"),
                version: 7,
            },
            3,
        );
        let rendered = env.to_string();
        assert!(rendered.contains("@e3"), "{rendered}");
        assert!(
            rendered.contains("write-data(id=5, v=7, 4 bytes)"),
            "{rendered}"
        );
        let reply = Reply::to(&env, Err(NodeError::NotFound));
        assert!(
            reply.to_string().contains("error: block not found"),
            "{reply}"
        );
        let reply = Reply::to(&env, Ok(Response::Ack));
        assert!(reply.to_string().ends_with("-> ack"), "{reply}");
    }

    #[test]
    fn mutation_classification() {
        assert!(Request::InitData {
            id: 1,
            bytes: Bytes::new()
        }
        .is_mutation());
        assert!(Request::WriteParity {
            id: 1,
            bytes: Bytes::new(),
            versions: vec![],
            checks: vec![]
        }
        .is_mutation());
        assert!(!Request::Ping.is_mutation());
        assert!(!Request::ReadData { id: 1 }.is_mutation());
        assert_eq!(Request::Ping.kind(), "ping");
        assert_eq!(
            Request::WriteParity {
                id: 1,
                bytes: Bytes::new(),
                versions: vec![],
                checks: vec![]
            }
            .kind(),
            "write-parity"
        );
    }

    #[test]
    fn request_clone_is_cheap_for_payloads() {
        // Bytes clones share the buffer; this is why payloads are Bytes.
        let payload = Bytes::from(vec![7u8; 1024]);
        let r = Request::InitData {
            id: 1,
            bytes: payload.clone(),
        };
        let r2 = r.clone();
        match (&r, &r2) {
            (Request::InitData { bytes: a, .. }, Request::InitData { bytes: b, .. }) => {
                assert_eq!(a.as_ptr(), b.as_ptr(), "buffer must be shared");
            }
            _ => unreachable!(),
        }
    }
}
