//! The paper's figures as executable experiment definitions.
//!
//! Parameter reconstruction (the paper gives n = 15 and prose anchors but
//! not the full configurations; DESIGN.md §5 documents the detective
//! work):
//!
//! * **Fig. 1** — layout illustration, `a = 2, b = 3, h = 2` (stated).
//! * **Fig. 2** — write availability for n = 15: we sweep the eq. 16
//!   parameter `w ∈ 1..=4` on the (15, 8) trapezoid `(a=0, b=4, h=1)`,
//!   plus the alternative shapes for k = 10, 12.
//! * **Fig. 3** — read availability FR vs ERC. The configuration
//!   `(n, k) = (15, 8)`, shape `(0, 4, 1)`, `w = 2` reproduces the prose
//!   anchors: FR ≈ 0.75 and ERC ≈ 0.63 at p = 0.5, curves merging for
//!   p ≥ 0.8 (our closed forms give 0.785 / 0.655).
//! * **Fig. 4** — ERC read availability improves with n − k: k ∈
//!   {12, 10, 8} at n = 15.
//! * **Fig. 5** — storage per block vs k (eqs. 14/15), cross-checked by
//!   *measuring* bytes on a provisioned cluster.

use tq_cluster::{Cluster, LocalTransport};
use tq_quorum::analysis::Series;
use tq_quorum::availability;
use tq_quorum::exact::exact_availability;
use tq_quorum::system::QuorumSystem;
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
use tq_trapezoid::{ProtocolConfig, QuorumStore, Store};

use crate::monte_carlo;

/// One regenerated figure: labelled series plus commentary.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Stable identifier (`fig2`, …) used for file names.
    pub id: &'static str,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// The curves.
    pub series: Vec<Series>,
    /// Shape checks and observations, ready for EXPERIMENTS.md.
    pub notes: Vec<String>,
}

/// The stripe width used throughout the paper's evaluation.
pub const PAPER_N: usize = 15;

/// The canonical Fig. 3 configuration reconstructed from the prose
/// anchors: (15, 8) stripe, trapezoid `a=0, b=4, h=1`, `w = 2`.
pub fn fig3_config() -> ProtocolConfig {
    ProtocolConfig::with_uniform_w(PAPER_N, 8, 0, 4, 1, 2).expect("static parameters are valid")
}

/// The (shape, thresholds, k) families used in Figs. 2 and 4: for each
/// `k` a trapezoid with `n − k + 1` nodes.
pub fn shape_for_k(k: usize) -> (TrapezoidShape, WriteThresholds) {
    let nbnode = PAPER_N - k + 1;
    // b ≥ 3 keeps r_0 = ⌈b/2⌉ ≥ 2, steering clear of eq. 11's broken
    // r_0 = 1 edge case (see `eq13_underestimates_when_r0_is_one`).
    let (a, b, h, w) = match nbnode {
        4 => (0, 4, 0, 1),
        6 => (0, 3, 1, 2),
        8 => (0, 4, 1, 2),
        _ => {
            // Fallback: flattest two-level split available for the count.
            let shapes = TrapezoidShape::with_node_count(nbnode);
            let s = *shapes
                .iter()
                .find(|s| s.h() == 1)
                .or_else(|| shapes.first())
                .expect("every count has a shape");
            let th = WriteThresholds::paper_default(&s, 1).expect("w = 1 is always legal");
            return (s, th);
        }
    };
    let shape = TrapezoidShape::new(a, b, h).expect("static shape");
    let th = WriteThresholds::paper_default(&shape, w).expect("static thresholds");
    (shape, th)
}

/// Figure 1: the trapezoid layout, rendered as ASCII. For the ERC variant
/// the stripe indices of block `b_i`'s trapezoid members are shown.
pub fn fig1_layout() -> FigureData {
    let shape = TrapezoidShape::new(2, 3, 2).expect("Fig. 1 shape");
    let mut notes = Vec::new();
    notes.push(format!(
        "Fig. 1 geometry: {shape}; Nbnode = {} (paper: 15).",
        shape.node_count()
    ));
    let mut art = String::new();
    art.push_str("level | nodes (level-major positions)\n");
    let width = shape.level_size(shape.h()) * 6;
    for l in 0..shape.num_levels() {
        let row: String = shape.level_range(l).map(|p| format!("[{p:>2}] ")).collect();
        let pad = (width.saturating_sub(row.len())) / 2;
        art.push_str(&format!("  {l}   |{}{}\n", " ".repeat(pad), row.trim_end()));
    }
    notes.push(art);
    notes.push(
        "TRAP-ERC placement for block b_0 of a (15, 8) stripe on shape (0, 4, 1):".to_string(),
    );
    let sys = fig3_config().system_for_block(0);
    for l in 0..sys.shape().num_levels() {
        notes.push(format!(
            "  level {l}: stripe nodes {:?}",
            sys.level_members(l)
        ));
    }
    FigureData {
        id: "fig1",
        title: "Trapezoid protocol layout (Nbnode = 15, s_l = 2l + 3)".to_string(),
        x_label: "level",
        series: vec![Series::over_ints("s_l = 2l + 3", 0..=2, |l| {
            shape.level_size(l) as f64
        })],
        notes,
    }
}

/// Figure 2: write availability of TRAP-ERC vs p, for the eq. 16
/// parameter `w ∈ 1..=4` on the (15, 8) trapezoid and the alternative
/// k = 10, 12 shapes. Monte-Carlo points from the *hinted* protocol
/// write (the eq. 9 predicate) validate each curve.
pub fn fig2_write_availability(steps: usize, trials: usize, seed: u64) -> FigureData {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let (shape8, _) = shape_for_k(8);
    for w in 1..=4usize {
        let th = WriteThresholds::paper_default(&shape8, w).expect("w within s_1 = 4");
        series.push(Series::sweep_p(format!("eq9 k=8 w={w}"), steps, |p| {
            availability::write_availability(&shape8, &th, p)
        }));
    }
    for k in [10usize, 12] {
        let (shape, th) = shape_for_k(k);
        series.push(Series::sweep_p(
            format!("eq9 k={k} w={:?}", th.as_slice()),
            steps,
            |p| availability::write_availability(&shape, &th, p),
        ));
    }
    // Simulated overlay for the canonical w = 2 curve.
    let config = fig3_config();
    let sim = Series {
        label: "protocol (hinted) k=8 w=2".to_string(),
        points: (0..=steps)
            .map(|i| {
                let p = i as f64 / steps as f64;
                let est = monte_carlo::protocol_write_availability(
                    &config,
                    p,
                    trials,
                    seed + i as u64,
                    true,
                );
                (p, est.mean())
            })
            .collect(),
    };
    series.push(sim);
    // Shape claims from §IV-D.
    let (s8, th8) = shape_for_k(8);
    let at_09: Vec<f64> = (1..=4)
        .map(|w| {
            let th = WriteThresholds::paper_default(&s8, w).unwrap();
            availability::write_availability(&s8, &th, 0.9)
        })
        .collect();
    notes.push(format!(
        "At p = 0.9 the w-family spans {:.3}..{:.3}; the spread collapses as p → 1 \
         (paper: availability 'not significantly impacted' for usual p).",
        at_09.iter().cloned().fold(f64::INFINITY, f64::min),
        at_09.iter().cloned().fold(0.0, f64::max),
    ));
    notes.push(format!(
        "eq. 8 ≡ eq. 9 identity: FR and ERC share one write formula (checked in code: \
         both call availability::write_availability; k=8 w=2 at p=0.5 gives {:.4}).",
        availability::write_availability(&s8, &th8, 0.5)
    ));
    FigureData {
        id: "fig2",
        title: "Write availability of TRAP-ERC as a function of node availability p (n = 15)"
            .to_string(),
        x_label: "p",
        series,
        notes,
    }
}

/// Figure 3: read availability of TRAP-ERC vs TRAP-FR. Four layers per
/// protocol: the paper's closed form, exact enumeration of the
/// structural predicate, and protocol-level Monte-Carlo.
pub fn fig3_read_availability(steps: usize, trials: usize, seed: u64) -> FigureData {
    let config = fig3_config();
    let (shape, th) = (*config.shape(), config.thresholds().clone());
    let (n, k) = (config.params().n(), config.params().k());

    let fr = Series::sweep_p("TRAP-FR eq10", steps, |p| {
        availability::read_availability_fr(&shape, &th, p)
    });
    let erc = Series::sweep_p("TRAP-ERC eq13", steps, |p| {
        availability::read_availability_erc(&shape, &th, n, k, p)
    });
    let sys = config.system_for_block(0);
    let erc_exact = Series::sweep_p("TRAP-ERC exact structural", steps, |p| {
        exact_availability(n, p, |up| sys.is_read_available(up))
    });
    let erc_sim = Series {
        label: "TRAP-ERC protocol (simulated)".to_string(),
        points: (0..=steps)
            .map(|i| {
                let p = i as f64 / steps as f64;
                (
                    p,
                    monte_carlo::protocol_read_availability(&config, p, trials, seed + i as u64)
                        .mean(),
                )
            })
            .collect(),
    };
    let fr_sim = Series {
        label: "TRAP-FR protocol (simulated)".to_string(),
        points: (0..=steps)
            .map(|i| {
                let p = i as f64 / steps as f64;
                (
                    p,
                    monte_carlo::protocol_fr_read_availability(
                        &shape,
                        &th,
                        p,
                        trials,
                        seed + 1000 + i as u64,
                    )
                    .mean(),
                )
            })
            .collect(),
    };

    let fr_05 = fr.at(0.5);
    let erc_05 = erc.at(0.5);
    let merge = fr.merge_point(&erc, 0.02);
    let (gap_x, gap) = fr.max_gap(&erc);
    let mut notes = vec![
        format!(
            "Anchor points at p = 0.5: FR = {fr_05:.3} (paper ≈ 0.75), ERC = {erc_05:.3} \
             (paper ≈ 0.63)."
        ),
        format!(
            "Curves merge (|Δ| ≤ 0.02) from p = {} (paper: 'no difference when p ≥ 0.8').",
            merge.map_or("never".to_string(), |p| format!("{p:.2}"))
        ),
        format!("Maximum FR−ERC gap: {gap:.3} at p = {gap_x:.2}."),
        format!(
            "eq. 13 vs exact structural predicate at p = 0.5: {:.4} vs {:.4} — the P2 term \
             drops the version check, so the closed form slightly overestimates.",
            erc.at(0.5),
            erc_exact.at(0.5)
        ),
    ];
    if gap < 0.0 {
        notes.push("WARNING: ERC exceeded FR somewhere — check parameters.".to_string());
    }
    FigureData {
        id: "fig3",
        title: "Read availability of TRAP-ERC and TRAP-FR as a function of p (n = 15, k = 8)"
            .to_string(),
        x_label: "p",
        series: vec![fr, erc, erc_exact, fr_sim, erc_sim],
        notes,
    }
}

/// Figure 4: TRAP-ERC read availability for n − k ∈ {3, 5, 7} at n = 15.
pub fn fig4_read_redundancy(steps: usize, trials: usize, seed: u64) -> FigureData {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let mut at_half = Vec::new();
    for (idx, k) in [12usize, 10, 8].into_iter().enumerate() {
        let (shape, th) = shape_for_k(k);
        let s = Series::sweep_p(format!("eq13 k={k} (n-k={})", PAPER_N - k), steps, |p| {
            availability::read_availability_erc(&shape, &th, PAPER_N, k, p)
        });
        at_half.push((k, s.at(0.5)));
        series.push(s);
        let config = ProtocolConfig::new(
            tq_erasure::CodeParams::new(PAPER_N, k).expect("valid"),
            shape,
            th,
        )
        .expect("valid");
        series.push(Series {
            label: format!("protocol k={k} (simulated)"),
            points: (0..=steps)
                .map(|i| {
                    let p = i as f64 / steps as f64;
                    (
                        p,
                        monte_carlo::protocol_read_availability(
                            &config,
                            p,
                            trials,
                            seed + (idx * 5000 + i) as u64,
                        )
                        .mean(),
                    )
                })
                .collect(),
        });
    }
    for w in at_half.windows(2) {
        let ((k1, v1), (k2, v2)) = (w[0], w[1]);
        notes.push(format!(
            "p = 0.5: k={k1} gives {v1:.3}, k={k2} gives {v2:.3} — more parity (larger n−k) \
             improves reads, as the paper claims."
        ));
        assert!(
            v2 >= v1 - 0.02,
            "Fig. 4 monotonicity violated: k={k2} ({v2}) < k={k1} ({v1})"
        );
    }
    FigureData {
        id: "fig4",
        title: "Read availability of TRAP-ERC vs p for several redundancy levels (n = 15)"
            .to_string(),
        x_label: "p",
        series,
        notes,
    }
}

/// Figure 5: storage used per data block (in block units) vs k, for both
/// schemes — eqs. 14/15 plus bytes *measured* on a provisioned cluster.
pub fn fig5_storage(block_len: usize) -> FigureData {
    let ks: Vec<usize> = (1..=PAPER_N).collect();
    let fr = Series::over_ints("TRAP-FR eq14 (n-k+1)", ks.iter().copied(), |k| {
        availability::storage_fr(PAPER_N, k)
    });
    let erc = Series::over_ints("TRAP-ERC eq15 (n/k)", ks.iter().copied(), |k| {
        availability::storage_erc(PAPER_N, k)
    });
    // Measured: provision a real stripe through the unified store facade
    // and count stored bytes.
    let measured = Series::over_ints("TRAP-ERC measured", ks.iter().copied(), |k| {
        let cluster = Cluster::new(PAPER_N);
        let config = match nearest_config(PAPER_N, k) {
            Some(c) => c,
            // k = n has no trapezoid (Nbnode = 1 needs b = 1, h = 0 — fine)
            None => return f64::NAN,
        };
        let store = Store::from_config(config)
            .transport(LocalTransport::new(cluster.clone()))
            .build()
            .expect("transport sized");
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; block_len]).collect();
        store.create(1, data).expect("all up");
        // The descriptor's prediction must match what the nodes hold.
        let stored = cluster.stored_bytes() as f64 / (k * block_len) as f64;
        assert!(
            (store.info().storage_overhead - stored).abs() < 1e-9,
            "StoreInfo disagrees with measured bytes at k={k}"
        );
        stored
    });
    let fr_measured = Series::over_ints("TRAP-FR measured", ks.iter().copied(), |k| {
        let nbnode = PAPER_N - k + 1;
        let shapes = TrapezoidShape::with_node_count(nbnode);
        let shape = *shapes.first().expect("some shape");
        let cluster = Cluster::new(nbnode);
        let store = Store::trap_fr(nbnode, 1)
            .shape(shape.a(), shape.b(), shape.h())
            .uniform_w(1)
            .transport(LocalTransport::new(cluster.clone()))
            .build()
            .expect("transport sized");
        store.create(1, vec![vec![0u8; block_len]]).expect("all up");
        cluster.stored_bytes() as f64 / block_len as f64
    });
    let mut notes = vec![
        format!(
            "n = 15, k = 8: FR stores {:.3} blocks per data block, ERC {:.3} — a {:.0}% saving \
             (the paper's prose says '8 blocks' vs '4 blocks'; eq. 15 actually gives n/k = 1.875. \
             We reproduce the equations and flag the prose discrepancy).",
            availability::storage_fr(PAPER_N, 8),
            availability::storage_erc(PAPER_N, 8),
            (1.0 - availability::storage_erc(PAPER_N, 8) / availability::storage_fr(PAPER_N, 8))
                * 100.0
        ),
        "Measured bytes on the provisioned cluster match eq. 14/15 exactly: data blocks \
         are stored verbatim and each parity block is one full block shared by k data \
         blocks."
            .to_string(),
    ];
    // Consistency assertion between measurement and closed form.
    for (i, &k) in ks.iter().enumerate() {
        let m = measured.points[i].1;
        if !m.is_nan() {
            let e = erc.points[i].1;
            assert!((m - e).abs() < 1e-9, "k={k}: measured {m} vs eq15 {e}");
        } else {
            notes.push(format!(
                "k={k}: no trapezoid with {} node(s) skipped.",
                PAPER_N - k + 1
            ));
        }
    }
    FigureData {
        id: "fig5",
        title: "Storage space used per data block divided by blocksize, as a function of k \
                (n = 15)"
            .to_string(),
        x_label: "k",
        series: vec![fr, erc, measured, fr_measured],
        notes,
    }
}

/// Builds *some* valid TRAP-ERC config for (n, k) by picking the first
/// enumerable trapezoid with `n − k + 1` nodes (w = 1).
fn nearest_config(n: usize, k: usize) -> Option<ProtocolConfig> {
    let shapes = TrapezoidShape::with_node_count(n - k + 1);
    let shape = *shapes.first()?;
    let th = WriteThresholds::paper_default(&shape, 1).ok()?;
    ProtocolConfig::new(tq_erasure::CodeParams::new(n, k).ok()?, shape, th).ok()
}

/// Extension figure: the trapezoid against the §II related-work quorum
/// systems (ROWA, Majority, Grid, Tree) on an equal-node-count basis
/// (8 nodes = the (15, 8) trapezoid). Closed forms, each validated
/// against exact enumeration at construction time.
pub fn baselines_comparison(steps: usize) -> FigureData {
    use tq_quorum::grid::GridQuorum;
    use tq_quorum::majority::MajorityQuorum;
    use tq_quorum::rowa::Rowa;
    use tq_quorum::tree::TreeQuorum;

    let (shape, th) = shape_for_k(8);
    let n = shape.node_count(); // 8
    let series = vec![
        Series::sweep_p("trapezoid write (eq9)", steps, |p| {
            availability::write_availability(&shape, &th, p)
        }),
        Series::sweep_p("trapezoid read (eq10)", steps, |p| {
            availability::read_availability_fr(&shape, &th, p)
        }),
        Series::sweep_p("majority r/w", steps, |p| {
            availability::majority_availability(n, p)
        }),
        Series::sweep_p("ROWA write", steps, |p| {
            availability::rowa_write_availability(n, p)
        }),
        Series::sweep_p("ROWA read", steps, |p| {
            availability::rowa_read_availability(n, p)
        }),
        Series::sweep_p("grid 2x4 write", steps, |p| {
            availability::grid_write_availability(2, 4, p)
        }),
        Series::sweep_p("grid 2x4 read", steps, |p| {
            availability::grid_read_availability(2, 4, p)
        }),
        Series::sweep_p("tree d=2 (7 nodes) r/w", steps, |p| {
            availability::tree_availability(2, p)
        }),
    ];
    // Spot-verify the closed forms against exact enumeration right here,
    // so a regenerated figure is self-checking.
    for &p in &[0.3, 0.6, 0.9] {
        let m = MajorityQuorum::new(n);
        assert!(
            (exact_availability(n, p, |up| m.is_write_available(up))
                - availability::majority_availability(n, p))
            .abs()
                < 1e-9
        );
        let r = Rowa::new(n);
        assert!(
            (exact_availability(n, p, |up| r.is_write_available(up))
                - availability::rowa_write_availability(n, p))
            .abs()
                < 1e-9
        );
        let g = GridQuorum::new(2, 4);
        assert!(
            (exact_availability(8, p, |up| g.is_write_available(up))
                - availability::grid_write_availability(2, 4, p))
            .abs()
                < 1e-9
        );
        let t = TreeQuorum::new(2);
        assert!(
            (exact_availability(7, p, |up| t.is_write_available(up))
                - availability::tree_availability(2, p))
            .abs()
                < 1e-9
        );
    }
    let notes = vec![
        "Equal-node-count framing: 8 replicas (the (15, 8) trapezoid's Nbnode); the tree \
         uses 7 (complete binary tree)."
            .to_string(),
        "ROWA bounds the spectrum (best reads, worst writes); majority balances; the \
         trapezoid with w tunes between them per level — the §II positioning, quantified."
            .to_string(),
        "All closed forms are asserted against exact 2^N enumeration when this figure is \
         generated."
            .to_string(),
    ];
    FigureData {
        id: "baselines",
        title: "Extension: trapezoid vs related-work quorum systems (8 replicas)".to_string(),
        x_label: "p",
        series,
        notes,
    }
}

/// The validation table: closed forms vs exact enumeration vs
/// protocol-level Monte-Carlo at a grid of p values (the quantified
/// version of §IV's claims, and the source for EXPERIMENTS.md).
pub fn validation_table(trials: usize, seed: u64) -> FigureData {
    let config = fig3_config();
    let (shape, th) = (*config.shape(), config.thresholds().clone());
    let (n, k) = (15, 8);
    let sys = config.system_for_block(0);
    let ps: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();

    let mk = |label: &str, f: &mut dyn FnMut(f64) -> f64| Series {
        label: label.to_string(),
        points: ps.iter().map(|&p| (p, f(p))).collect(),
    };
    let mut idx = 0u64;
    let series = vec![
        mk("eq9 write", &mut |p| {
            availability::write_availability(&shape, &th, p)
        }),
        mk("write exact", &mut |p| {
            exact_availability(n, p, |up| sys.is_write_available(up))
        }),
        mk("write protocol hinted", &mut |p| {
            idx += 1;
            monte_carlo::protocol_write_availability(&config, p, trials, seed + idx, true).mean()
        }),
        mk("write protocol faithful", &mut |p| {
            idx += 1;
            monte_carlo::protocol_write_availability(&config, p, trials, seed + idx, false).mean()
        }),
        mk("eq13 read", &mut |p| {
            availability::read_availability_erc(&shape, &th, n, k, p)
        }),
        mk("read exact structural", &mut |p| {
            exact_availability(n, p, |up| sys.is_read_available(up))
        }),
        mk("read protocol", &mut |p| {
            idx += 1;
            monte_carlo::protocol_read_availability(&config, p, trials, seed + idx).mean()
        }),
        mk("eq10 FR read", &mut |p| {
            availability::read_availability_fr(&shape, &th, p)
        }),
        mk("FR read protocol", &mut |p| {
            idx += 1;
            monte_carlo::protocol_fr_read_availability(&shape, &th, p, trials, seed + idx).mean()
        }),
    ];
    let notes = vec![
        "eq. 9 coincides with the exact/protocol write columns (hinted writes); the \
         faithful column shows Algorithm 1's embedded READBLOCK cost at low p."
            .to_string(),
        "eq. 13 upper-bounds the exact structural column (its P2 term skips the version \
         check); the protocol column tracks the exact one."
            .to_string(),
    ];
    FigureData {
        id: "validate",
        title: "Closed forms vs exact enumeration vs executed protocol (n = 15, k = 8, w = 2)"
            .to_string(),
        x_label: "p",
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_layout_renders() {
        let f = fig1_layout();
        assert_eq!(f.id, "fig1");
        let art = f.notes.join("\n");
        assert!(art.contains("level"));
        assert!(art.contains("[ 0]"));
        // ERC placement of block 0 on the (15, 8) stripe.
        assert!(art.contains("stripe nodes [0, 8, 9, 10]"));
    }

    #[test]
    fn fig2_shapes_hold() {
        let f = fig2_write_availability(10, 120, 7);
        assert!(f.series.len() >= 6);
        // Every analytic curve is monotone nondecreasing in p.
        for s in f.series.iter().filter(|s| s.label.starts_with("eq9")) {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{} not monotone", s.label);
            }
            assert!(s.points.last().unwrap().1 > 0.999);
        }
    }

    #[test]
    fn fig3_shapes_hold() {
        let f = fig3_read_availability(10, 150, 11);
        let fr = &f.series[0];
        let erc = &f.series[1];
        // ERC never exceeds FR by more than MC noise.
        for (a, b) in fr.points.iter().zip(&erc.points) {
            assert!(b.1 <= a.1 + 0.02, "p={}: erc {} > fr {}", a.0, b.1, a.1);
        }
        // Prose anchors.
        assert!((fr.at(0.5) - 0.75).abs() < 0.06);
        assert!((erc.at(0.5) - 0.63).abs() < 0.06);
    }

    #[test]
    fn fig4_monotone_in_redundancy() {
        // The constructor itself asserts monotonicity at p = 0.5.
        let f = fig4_read_redundancy(8, 100, 3);
        assert_eq!(f.series.len(), 6);
    }

    #[test]
    fn fig5_measured_matches_eq15() {
        // The constructor asserts measured == eq. 15 for every k.
        let f = fig5_storage(64);
        assert_eq!(f.series.len(), 4);
        // FR measured must match eq. 14 wherever defined.
        let fr = &f.series[0];
        let fr_measured = &f.series[3];
        for (a, b) in fr.points.iter().zip(&fr_measured.points) {
            assert!((a.1 - b.1).abs() < 1e-9, "k={}: {} vs {}", a.0, a.1, b.1);
        }
    }

    #[test]
    fn baselines_figure_self_checks() {
        // The generator asserts closed-form == exact internally.
        let f = baselines_comparison(10);
        assert_eq!(f.series.len(), 8);
        // ROWA brackets everything at p = 0.5: its read availability is
        // the maximum, its write availability the minimum.
        let at = |label: &str| {
            f.series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("missing {label}"))
                .at(0.5)
        };
        let rowa_read = at("ROWA read");
        let rowa_write = at("ROWA write");
        for s in &f.series {
            let v = s.at(0.5);
            assert!(v <= rowa_read + 1e-9, "{} above ROWA read", s.label);
            assert!(v >= rowa_write - 1e-9, "{} below ROWA write", s.label);
        }
    }

    #[test]
    fn validation_table_small() {
        let f = validation_table(100, 5);
        assert_eq!(f.series.len(), 9);
        // eq13 upper-bounds exact everywhere.
        let eq13 = f.series.iter().find(|s| s.label == "eq13 read").unwrap();
        let exact = f
            .series
            .iter()
            .find(|s| s.label == "read exact structural")
            .unwrap();
        for (a, b) in eq13.points.iter().zip(&exact.points) {
            assert!(a.1 >= b.1 - 1e-9, "p={}", a.0);
        }
    }
}
