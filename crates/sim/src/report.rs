//! Rendering figure data as markdown and CSV files.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use tq_quorum::analysis::markdown_table;

use crate::experiments::FigureData;

/// Renders one figure as a self-contained markdown section.
pub fn to_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} — {}\n\n", fig.id, fig.title));
    let refs: Vec<&tq_quorum::analysis::Series> = fig.series.iter().collect();
    if !refs.is_empty() && refs.iter().all(|s| s.points.len() == refs[0].points.len()) {
        out.push_str(&markdown_table(fig.x_label, &refs));
    } else {
        for s in &fig.series {
            out.push_str(&format!("### {}\n\n", s.label));
            out.push_str("| x | y |\n|---|---|\n");
            for &(x, y) in &s.points {
                out.push_str(&format!("| {x:.3} | {y:.4} |\n"));
            }
            out.push('\n');
        }
    }
    if !fig.notes.is_empty() {
        out.push_str("\nNotes:\n\n");
        for n in &fig.notes {
            out.push_str(&format!("- {n}\n"));
        }
    }
    out.push('\n');
    out
}

/// Writes `<id>.md` and one `<id>__<slug>.csv` per series under `dir`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_files(fig: &FigureData, dir: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let md_path = dir.join(format!("{}.md", fig.id));
    let mut f = fs::File::create(&md_path)?;
    f.write_all(to_markdown(fig).as_bytes())?;
    for s in &fig.series {
        let slug: String = s
            .label
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let csv_path = dir.join(format!("{}__{slug}.csv", fig.id));
        let mut f = fs::File::create(&csv_path)?;
        f.write_all(format!("{},{}\n", fig.x_label, s.label).as_bytes())?;
        f.write_all(s.to_csv().as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_quorum::analysis::Series;

    fn sample_fig() -> FigureData {
        FigureData {
            id: "figx",
            title: "test figure".to_string(),
            x_label: "p",
            series: vec![
                Series::sweep_p("a", 2, |p| p),
                Series::sweep_p("b", 2, |p| 1.0 - p),
            ],
            notes: vec!["note one".to_string()],
        }
    }

    #[test]
    fn markdown_contains_table_and_notes() {
        let md = to_markdown(&sample_fig());
        assert!(md.contains("## figx — test figure"));
        assert!(md.contains("| p | a | b |"));
        assert!(md.contains("- note one"));
    }

    #[test]
    fn markdown_handles_mismatched_grids() {
        let mut fig = sample_fig();
        fig.series.push(Series::over_ints("c", 1..=5, |x| x as f64));
        let md = to_markdown(&fig);
        assert!(md.contains("### a"));
        assert!(md.contains("### c"));
    }

    #[test]
    fn files_written() {
        let dir = std::env::temp_dir().join(format!("tq_report_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        write_files(&sample_fig(), &dir).unwrap();
        assert!(dir.join("figx.md").exists());
        assert!(dir.join("figx__a.csv").exists());
        assert!(dir.join("figx__b.csv").exists());
        let csv = fs::read_to_string(dir.join("figx__a.csv")).unwrap();
        assert!(csv.starts_with("p,a\n0.000000,0.000000"));
        let _ = fs::remove_dir_all(&dir);
    }
}
