//! Deterministic simulation testing (DST) for the store protocols.
//!
//! The Monte-Carlo layers of this crate measure *availability* under the
//! paper's i.i.d. fail-stop model. This module attacks *consistency*
//! under schedules that model never produces: message loss, duplication
//! and reordering, asymmetric partitions, crash-restart with durable or
//! volatile disks, and at-least-once fabrics that redeliver stale
//! messages across rounds — all driven through
//! [`tq_cluster::SimTransport`]'s seeded virtual-time scheduler, so any
//! failure replays bit-for-bit from its seed.
//!
//! Three pieces compose:
//!
//! * [`HistoryChecker`] — an online oracle holding every
//!   [`QuorumStore`] operation to regular-register semantics per block:
//!   successful reads must return a version at least that of the latest
//!   *completed* write, bytes must be values that were actually written
//!   (committed or the residue of a failed write — Algorithm 1 has no
//!   rollback), a version maps to one value while the block is residue-
//!   free, committed versions strictly increase, and anti-entropy never
//!   regresses the version floor.
//! * [`Scenario`] + [`generate_ops`] — seeded adversarial workloads:
//!   writes, reads, scheduled crashes (durable or volatile), restarts,
//!   one-directional partitions, heals, gray-node degrades (a node that
//!   stays up but answers 10–100× slower), quiesced scrubs and
//!   virtual-time jumps, with fault pressure bounded so the run stays
//!   non-vacuous. Every scenario's links draw heavy-tailed service
//!   times, and [`run_case`] pins hedging on ([`HedgePolicy::P99`]) —
//!   the matrices double as the adaptive-robustness soak, and the
//!   report's sim counters prove the hedges actually fired.
//! * [`run_case`] / [`minimize`] — the explorer: build a backend over a
//!   fresh simulation, drive the workload, settle with a final scrub,
//!   and on violation shrink the reproduction to the shortest op prefix
//!   that still fails. A [`CaseConfig`] *is* the repro: same config,
//!   same history, same violation.
//!
//! ```
//! use tq_sim::dst::{run_case, Backend, CaseConfig, Scenario};
//!
//! let cfg = CaseConfig {
//!     seed: 7,
//!     backend: Backend::TrapErc,
//!     scenario: Scenario::chaos(),
//!     ops: 24,
//! };
//! let report = run_case(&cfg);
//! assert!(report.violation.is_none(), "{:?}", report.violation);
//! assert_eq!(report, run_case(&cfg), "replay is bit-for-bit");
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tq_cluster::{
    Cluster, FaultingBackend, HedgePolicy, MemoryBackend, NetworkModel, SimFault, SimStats,
    SimTransport, StorageFaults,
};
use tq_trapezoid::{
    BatchWrite, BlockAddr, ProtocolError, QuorumStore, ShardMap, ShardedStore, Store,
};

/// The first stripe id; stripe group `g` lives on `STRIPE + g`.
pub const STRIPE: u64 = 1;
/// Blocks per stripe (the TRAP-ERC `k`; replication backends emulate).
pub const BLOCKS: usize = 6;
/// Payload length per block.
pub const BLOCK_LEN: usize = 32;
/// Cluster width every backend runs on (the TRAP-ERC `n`).
pub const CLUSTER_NODES: usize = 9;
/// Stripe groups (shards) the sharded DST data plane spans.
pub const SHARDS: usize = 2;
/// Logical blocks across all stripe groups: [`run_case`] drives a
/// [`ShardedStore`] whose address space is `SHARDS` stripes wide.
pub const TOTAL_BLOCKS: usize = BLOCKS * SHARDS;

/// Address of a logical DST block: group `block / BLOCKS` lives on
/// stripe `STRIPE + group` at in-stripe index `block % BLOCKS`.
pub fn addr_of(block: usize) -> BlockAddr {
    BlockAddr::new(STRIPE + (block / BLOCKS) as u64, block % BLOCKS)
}

// ---------------------------------------------------------------------
// Backends.
// ---------------------------------------------------------------------

/// The four [`QuorumStore`] implementations under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// TRAP-ERC (9, 6) on the (2, 1, 1) trapezoid, `w = 2`.
    TrapErc,
    /// TRAP-FR over the same trapezoid's 4 full replicas.
    TrapFr,
    /// Read-One-Write-All over 5 replicas.
    Rowa,
    /// Majority quorum over 5 replicas.
    Majority,
}

impl Backend {
    /// Every backend, in a stable order.
    pub const ALL: [Backend; 4] = [
        Backend::TrapErc,
        Backend::TrapFr,
        Backend::Rowa,
        Backend::Majority,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::TrapErc => "trap-erc",
            Backend::TrapFr => "trap-fr",
            Backend::Rowa => "rowa",
            Backend::Majority => "majority",
        }
    }

    /// Builds the backend over a shared simulation transport.
    ///
    /// # Panics
    /// Panics if the fixed DST configuration stops validating — that is
    /// a bug in this module, not an input error.
    pub fn build(&self, transport: Arc<SimTransport>) -> Box<dyn QuorumStore> {
        let built = match self {
            Backend::TrapErc => Store::trap_erc(CLUSTER_NODES, BLOCKS)
                .shape(2, 1, 1)
                .uniform_w(2)
                .transport(transport)
                .build(),
            Backend::TrapFr => Store::trap_fr(CLUSTER_NODES, BLOCKS)
                .shape(2, 1, 1)
                .uniform_w(2)
                .transport(transport)
                .build(),
            Backend::Rowa => Store::rowa(5).transport(transport).build(),
            Backend::Majority => Store::majority(5).transport(transport).build(),
        };
        built.expect("DST backend configuration is valid")
    }

    /// Builds the backend as a [`SHARDS`]-way [`ShardedStore`]: one
    /// instance per stripe group, all over the same simulated cluster,
    /// with batch fan-out walked sequentially so the single-threaded
    /// virtual-time scheduler stays deterministic. Stripe `STRIPE + g`
    /// routes to its own shard (the ranged map with one stripe per
    /// range), so every workload batch that spans groups crosses the
    /// router's shard boundary.
    ///
    /// # Panics
    /// Panics if the fixed shard configuration stops validating — a bug
    /// in this module, not an input error.
    pub fn build_sharded(&self, transport: Arc<SimTransport>) -> Box<dyn QuorumStore> {
        let shards: Vec<Box<dyn QuorumStore>> = (0..SHARDS)
            .map(|_| self.build(Arc::clone(&transport)))
            .collect();
        let map = ShardMap::ranged(SHARDS, 1).expect("shard count is positive");
        let sharded = ShardedStore::new(shards, map)
            .expect("shard vector matches the map")
            .sequential_batches();
        Box::new(sharded)
    }
}

// ---------------------------------------------------------------------
// Scenarios and workloads.
// ---------------------------------------------------------------------

/// Weights and bounds describing one adversarial regime.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Name for reports and CI artifacts.
    pub name: &'static str,
    /// Network model outside quiesced (create/scrub) windows.
    pub model: NetworkModel,
    /// Op-mix weights: write, read, crash, restart, partition, heal,
    /// scrub, advance, write-batch, read-batch, scrub-shard, degrade.
    pub weights: [u32; 12],
    /// Probability a crash is volatile (loses the disk).
    pub wipe_prob: f64,
    /// Max nodes simultaneously crashed or partitioned — stays within
    /// the protocols' tolerance so the run keeps making progress.
    pub max_down: usize,
    /// Max nodes with wiped disks between scrubs.
    pub max_wiped: usize,
    /// Storage fault axis: when set, every node's backend is wrapped in
    /// a seeded [`FaultingBackend`] — crashes revert the node to its
    /// last fsync barrier (the recovery-visible equivalent of a torn
    /// final log record), automatic fsyncs silently fail, and slow reads
    /// stretch reply latency. The matrices stay clean under this *only*
    /// because nodes acknowledge with durable acks (flush-before-ack),
    /// which pins every revert to an acknowledged state: the axis is the
    /// regression guard for that discipline. Drop
    /// `NodeBuilder::durable_acks` and a read-one protocol promptly
    /// reuses a committed version built on a reverted replica — a
    /// `CommitRegression` the checker catches within a few seeds.
    pub storage_faults: Option<StorageFaults>,
}

impl Scenario {
    /// Lossy, duplicating, non-FIFO links — reordering and partial
    /// writes, no node failures.
    pub fn loss_and_reorder() -> Self {
        Scenario {
            name: "loss-reorder",
            model: NetworkModel {
                heavy_tail: 0.1,
                ..NetworkModel::hostile(0.08, 0.06)
            },
            weights: [10, 10, 0, 0, 0, 0, 2, 4, 5, 5, 1, 2],
            wipe_prob: 0.0,
            max_down: 0,
            max_wiped: 0,
            storage_faults: None,
        }
    }

    /// One-directional partitions over mildly lossy links.
    pub fn partitions() -> Self {
        Scenario {
            name: "partitions",
            model: NetworkModel {
                heavy_tail: 0.1,
                ..NetworkModel::hostile(0.02, 0.0)
            },
            weights: [10, 10, 0, 0, 4, 3, 2, 4, 5, 5, 1, 2],
            wipe_prob: 0.0,
            max_down: 2,
            max_wiped: 0,
            storage_faults: None,
        }
    }

    /// Crash-restart churn, including volatile crashes that lose disks.
    pub fn crash_restart() -> Self {
        Scenario {
            name: "crash-restart",
            model: NetworkModel {
                loss: 0.01,
                heavy_tail: 0.1,
                ..NetworkModel::reliable()
            },
            weights: [10, 10, 5, 5, 0, 0, 3, 4, 5, 5, 1, 2],
            wipe_prob: 0.3,
            max_down: 2,
            max_wiped: 1,
            storage_faults: None,
        }
    }

    /// Everything at once.
    pub fn chaos() -> Self {
        Scenario {
            name: "chaos",
            model: NetworkModel {
                heavy_tail: 0.15,
                ..NetworkModel::hostile(0.05, 0.04)
            },
            weights: [10, 10, 4, 4, 3, 2, 3, 4, 5, 5, 2, 2],
            wipe_prob: 0.25,
            max_down: 2,
            max_wiped: 1,
            storage_faults: None,
        }
    }

    /// An at-least-once fabric: cross-round redelivery plus heavy
    /// duplication over lossy, reordering links, with crash-restart
    /// churn — stale writes land rounds after their caller gave up, and
    /// stale acks surface in rounds that never issued them. The
    /// idempotent command API (monotone node mutations, identity-matched
    /// gathering) is what keeps this history checker-clean.
    pub fn at_least_once() -> Self {
        Scenario {
            name: "at-least-once",
            model: NetworkModel {
                heavy_tail: 0.1,
                ..NetworkModel::at_least_once(0.05, 0.25)
            },
            weights: [10, 10, 3, 3, 2, 2, 3, 4, 5, 5, 1, 2],
            wipe_prob: 0.2,
            max_down: 2,
            max_wiped: 1,
            storage_faults: None,
        }
    }

    /// The standing scenario matrix.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::loss_and_reorder(),
            Scenario::partitions(),
            Scenario::crash_restart(),
            Scenario::chaos(),
            Scenario::at_least_once(),
        ]
    }

    /// Turns on the storage fault axis with the aggressive default mix
    /// (see [`StorageFaults::aggressive`]).
    pub fn with_storage_faults(mut self) -> Self {
        self.storage_faults = Some(StorageFaults::aggressive());
        self
    }

    /// Turns on the *corrupting* storage axis
    /// ([`StorageFaults::corrupting`]): nodes serve bit-flipped or
    /// misdirected copies of their stored blocks at high probability.
    /// The matrices stay clean under this only because every served
    /// shard is checksummed — the node's self-check answers
    /// `NodeError::Corrupt` and the client cross-checksum catches
    /// whatever slips past; any corruption *returned* to the workload
    /// would be a `ForeignValue` violation within a few ops.
    pub fn with_corruption(mut self) -> Self {
        self.storage_faults = Some(StorageFaults::corrupting());
        self
    }
}

/// One step of a generated workload. Node indices refer to the shared
/// cluster; fault steps carry a virtual-time offset so they can land in
/// the middle of a later operation's fan-out.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// Write `fill`-patterned bytes to a block.
    Write {
        /// Target block.
        block: usize,
        /// Pattern seed; the payload is `fill.wrapping_add(i)` per byte.
        fill: u8,
    },
    /// Read a block.
    Read {
        /// Target block.
        block: usize,
    },
    /// Schedule a crash `after` virtual ns from now.
    Crash {
        /// Node to crash.
        node: usize,
        /// Keep the disk across the crash?
        durable: bool,
        /// Virtual-time offset of the fault.
        after: u64,
    },
    /// Schedule the restart of a crashed node (`pick` selects among the
    /// currently-down set).
    Restart {
        /// Selector into the down set.
        pick: usize,
        /// Virtual-time offset of the fault.
        after: u64,
    },
    /// Partition a set of nodes in one direction.
    Partition {
        /// Affected nodes.
        nodes: Vec<usize>,
        /// `true` blocks replies (acks vanish, writes land); `false`
        /// blocks requests.
        replies: bool,
    },
    /// Heal all partitions.
    Heal,
    /// Quiesce (restart everything, heal, reliable links) and scrub
    /// every stripe group.
    Scrub,
    /// Jump virtual time forward.
    Advance {
        /// Virtual nanoseconds to skip.
        dt: u64,
    },
    /// Write several blocks in one batched call — on a sharded store
    /// the batch fans out across stripe groups through the router.
    WriteBatch {
        /// Distinct target blocks with their pattern seeds.
        blocks: Vec<(usize, u8)>,
    },
    /// Read several blocks in one batched call.
    ReadBatch {
        /// Distinct target blocks.
        blocks: Vec<usize>,
    },
    /// Quiesce, then scrub a single stripe group (shard-targeted
    /// anti-entropy); the other groups' stale replicas stay stale.
    ScrubShard {
        /// Stripe group selector (taken modulo the groups in play).
        shard: usize,
    },
    /// Turn a node gray: it stays up and keeps answering, just `factor`
    /// times slower — the straggler mode crash/partition axes cannot
    /// produce. A second degrade of the same node restores it instead.
    Degrade {
        /// Node to slow down (or restore).
        node: usize,
        /// Service-time multiplier while gray.
        factor: u64,
    },
}

/// Generates `count` workload steps from a seed. Truncating the count
/// yields a prefix of the longer workload — the property minimization
/// relies on.
pub fn generate_ops(seed: u64, scenario: &Scenario, count: usize) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total: u32 = scenario.weights.iter().sum();
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let mut pick = rng.random_range(0..total);
        let mut kind = 0usize;
        for (i, &w) in scenario.weights.iter().enumerate() {
            if pick < w {
                kind = i;
                break;
            }
            pick -= w;
        }
        ops.push(match kind {
            0 => WorkloadOp::Write {
                block: rng.random_range(0..TOTAL_BLOCKS),
                fill: rng.random_range(0..=u8::MAX),
            },
            1 => WorkloadOp::Read {
                block: rng.random_range(0..TOTAL_BLOCKS),
            },
            2 => WorkloadOp::Crash {
                node: rng.random_range(0..CLUSTER_NODES),
                durable: !rng.random_bool(scenario.wipe_prob),
                after: rng.random_range(0..5_000u64),
            },
            3 => WorkloadOp::Restart {
                pick: rng.random_range(0..CLUSTER_NODES),
                after: rng.random_range(0..5_000u64),
            },
            4 => {
                let count = rng.random_range(1..=2usize);
                let mut nodes = BTreeSet::new();
                while nodes.len() < count {
                    nodes.insert(rng.random_range(0..CLUSTER_NODES));
                }
                WorkloadOp::Partition {
                    nodes: nodes.into_iter().collect(),
                    replies: rng.random_bool(0.5),
                }
            }
            5 => WorkloadOp::Heal,
            6 => WorkloadOp::Scrub,
            7 => WorkloadOp::Advance {
                dt: rng.random_range(1_000..200_000u64),
            },
            8 => {
                let count = rng.random_range(2..=4usize);
                let mut picked = BTreeSet::new();
                while picked.len() < count {
                    picked.insert(rng.random_range(0..TOTAL_BLOCKS));
                }
                WorkloadOp::WriteBatch {
                    blocks: picked
                        .into_iter()
                        .map(|b| (b, rng.random_range(0..=u8::MAX)))
                        .collect(),
                }
            }
            9 => {
                let count = rng.random_range(2..=4usize);
                let mut picked = BTreeSet::new();
                while picked.len() < count {
                    picked.insert(rng.random_range(0..TOTAL_BLOCKS));
                }
                WorkloadOp::ReadBatch {
                    blocks: picked.into_iter().collect(),
                }
            }
            10 => WorkloadOp::ScrubShard {
                shard: rng.random_range(0..SHARDS),
            },
            _ => WorkloadOp::Degrade {
                node: rng.random_range(0..CLUSTER_NODES),
                factor: rng.random_range(10..=100u64),
            },
        });
    }
    ops
}

/// The `fill`-patterned payload a [`WorkloadOp::Write`] carries.
pub fn payload(fill: u8) -> Vec<u8> {
    (0..BLOCK_LEN).map(|i| fill.wrapping_add(i as u8)).collect()
}

// ---------------------------------------------------------------------
// The history checker.
// ---------------------------------------------------------------------

/// What a history violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A read returned a version below the latest completed write.
    StaleRead {
        /// Version floor at the time of the read.
        floor: u64,
        /// Version the read returned.
        got: u64,
    },
    /// A read returned bytes that were never written to the block.
    ForeignValue,
    /// Two observations of the same version carried different bytes
    /// while the block had no failed-write residue to explain it.
    VersionValueConflict {
        /// The version observed twice.
        version: u64,
    },
    /// A completed write did not advance the version.
    CommitRegression {
        /// Version floor before the write.
        floor: u64,
        /// Version the write reported.
        got: u64,
    },
    /// A scrub settled a block below the version floor.
    ScrubRegression {
        /// Version floor before the scrub.
        floor: u64,
        /// Version the scrub settled on.
        got: u64,
    },
}

/// A consistency violation, pinned to the op that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What rule broke.
    pub kind: ViolationKind,
    /// Which block.
    pub block: usize,
    /// Index of the workload op that observed the violation (the
    /// minimal repro is the op prefix of length `op_index + 1`).
    pub op_index: usize,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op {} block {}: {:?} — {}",
            self.op_index, self.block, self.kind, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// Per-block shadow state.
#[derive(Debug, Clone)]
struct BlockHistory {
    /// Version of the latest completed write or full-refresh settle.
    floor: u64,
    /// Every value that could legally surface: the initial content,
    /// committed writes, failed-write residues.
    ever: Vec<Vec<u8>>,
    /// First-observed bytes per version (reads, commits, settles).
    bindings: BTreeMap<u64, Vec<u8>>,
    /// `true` while a failed write's residue may be visible — version
    /// numbers can then legally be reused, so the one-value-per-version
    /// binding is suspended until the next full refresh.
    dirty: bool,
}

impl BlockHistory {
    fn knows(&self, bytes: &[u8]) -> bool {
        self.ever.iter().any(|v| v == bytes)
    }
    fn remember(&mut self, bytes: &[u8]) {
        if !self.knows(bytes) {
            self.ever.push(bytes.to_vec());
        }
    }
}

/// Online oracle validating a [`QuorumStore`] history against
/// regular-register semantics per block. See the [module docs](self)
/// for the exact rules and their justification.
#[derive(Debug, Clone)]
pub struct HistoryChecker {
    blocks: Vec<BlockHistory>,
}

impl HistoryChecker {
    /// Starts a history at the stripe's initial contents (version 0).
    pub fn new(initial: &[Vec<u8>]) -> Self {
        HistoryChecker {
            blocks: initial
                .iter()
                .map(|b| BlockHistory {
                    floor: 0,
                    ever: vec![b.clone()],
                    bindings: BTreeMap::from([(0, b.clone())]),
                    dirty: false,
                })
                .collect(),
        }
    }

    /// The latest completed-write version of a block.
    pub fn floor(&self, block: usize) -> u64 {
        self.blocks[block].floor
    }

    /// Number of blocks this history tracks — the workload driver
    /// derives the stripe-group count from it.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Records a *completed* write. Completed versions must strictly
    /// increase; the committed value becomes the binding for its
    /// version.
    ///
    /// # Errors
    /// [`ViolationKind::CommitRegression`] or
    /// [`ViolationKind::VersionValueConflict`].
    pub fn commit(
        &mut self,
        block: usize,
        bytes: &[u8],
        version: u64,
        op_index: usize,
    ) -> Result<(), Violation> {
        let b = &mut self.blocks[block];
        b.remember(bytes);
        if version <= b.floor {
            return Err(Violation {
                kind: ViolationKind::CommitRegression {
                    floor: b.floor,
                    got: version,
                },
                block,
                op_index,
                detail: format!("completed write reported v{version} at floor v{}", b.floor),
            });
        }
        if let Some(bound) = b.bindings.get(&version) {
            if bound != bytes && !b.dirty {
                return Err(Violation {
                    kind: ViolationKind::VersionValueConflict { version },
                    block,
                    op_index,
                    detail: "commit reused a version already observed with other bytes".to_string(),
                });
            }
        }
        b.bindings.insert(version, bytes.to_vec());
        b.floor = version;
        Ok(())
    }

    /// Records a *failed* write: its payload may still surface (partial
    /// write, lost ack), and its version stamp may collide with a later
    /// one — the block is dirty until the next full refresh.
    pub fn residue(&mut self, block: usize, bytes: &[u8]) {
        let b = &mut self.blocks[block];
        b.remember(bytes);
        b.dirty = true;
    }

    /// Validates a successful read.
    ///
    /// # Errors
    /// [`ViolationKind::StaleRead`], [`ViolationKind::ForeignValue`] or
    /// [`ViolationKind::VersionValueConflict`].
    pub fn observe_read(
        &mut self,
        block: usize,
        bytes: &[u8],
        version: u64,
        op_index: usize,
    ) -> Result<(), Violation> {
        let b = &mut self.blocks[block];
        if version < b.floor {
            return Err(Violation {
                kind: ViolationKind::StaleRead {
                    floor: b.floor,
                    got: version,
                },
                block,
                op_index,
                detail: format!(
                    "read served v{version} after a write completed at v{}",
                    b.floor
                ),
            });
        }
        if !b.knows(bytes) {
            return Err(Violation {
                kind: ViolationKind::ForeignValue,
                block,
                op_index,
                detail: format!("read returned bytes never written (v{version})"),
            });
        }
        match b.bindings.get(&version) {
            Some(bound) if bound != bytes => {
                if !b.dirty {
                    return Err(Violation {
                        kind: ViolationKind::VersionValueConflict { version },
                        block,
                        op_index,
                        detail: "two reads of one version disagreed on bytes".to_string(),
                    });
                }
            }
            Some(_) => {}
            None => {
                b.bindings.insert(version, bytes.to_vec());
            }
        }
        Ok(())
    }

    /// Notes blocks a scrub salvaged (rolled back to an older
    /// recoverable value at a superseding version): their bindings are
    /// suspect until the settle.
    pub fn note_salvaged(&mut self, blocks: &[usize]) {
        for &i in blocks {
            if let Some(b) = self.blocks.get_mut(i) {
                b.dirty = true;
            }
        }
    }

    /// Settles a block after a *full* refresh (every node acked the
    /// scrub): the settled value is the one plausible state, residues
    /// are gone, and the floor moves up to the settled version.
    ///
    /// # Errors
    /// [`ViolationKind::ScrubRegression`] if the settle went below the
    /// floor.
    pub fn settle(
        &mut self,
        block: usize,
        bytes: &[u8],
        version: u64,
        op_index: usize,
    ) -> Result<(), Violation> {
        let b = &mut self.blocks[block];
        if version < b.floor {
            return Err(Violation {
                kind: ViolationKind::ScrubRegression {
                    floor: b.floor,
                    got: version,
                },
                block,
                op_index,
                detail: format!("scrub settled on v{version} below floor v{}", b.floor),
            });
        }
        b.floor = version;
        b.ever = vec![bytes.to_vec()];
        b.bindings = BTreeMap::from([(version, bytes.to_vec())]);
        b.dirty = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The explorer.
// ---------------------------------------------------------------------

/// A fully-specified, replayable case. Equality of configs implies
/// equality of reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Seed for both the workload and the network schedule.
    pub seed: u64,
    /// Backend under test.
    pub backend: Backend,
    /// Adversarial regime.
    pub scenario: Scenario,
    /// Number of workload steps.
    pub ops: usize,
}

/// Aggregate outcome counters of one case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaseStats {
    /// Completed writes.
    pub commits: u64,
    /// Failed writes (potential residue).
    pub residues: u64,
    /// Successful reads.
    pub reads_ok: u64,
    /// Failed reads.
    pub reads_failed: u64,
    /// Scrubs that returned a report.
    pub scrubs_ok: u64,
    /// Scrubs that errored.
    pub scrubs_failed: u64,
    /// Per-block version floors at the end of the run.
    pub final_floors: Vec<u64>,
}

/// Everything one case produced; [`PartialEq`] so determinism is one
/// `assert_eq!` away.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseReport {
    /// The case that ran.
    pub config: CaseConfig,
    /// Outcome counters.
    pub stats: CaseStats,
    /// The simulation's network counters.
    pub sim: SimStats,
    /// Reads the storage fault axis served corrupted (bit-flipped or
    /// misdirected) — non-zero on a corruption-axis case proves the
    /// clean checker verdict was earned, not vacuous.
    pub corrupted_reads: u64,
    /// The first consistency violation, if any (the run stops there).
    pub violation: Option<Violation>,
}

/// Runs one case end to end: provision a [`SHARDS`]-group
/// [`ShardedStore`] under reliable links, drive the workload (including
/// cross-shard batches and shard-targeted scrubs) under the scenario's
/// model, settle with a final quiesced scrub of every group, and report.
pub fn run_case(cfg: &CaseConfig) -> CaseReport {
    let ops = generate_ops(cfg.seed, &cfg.scenario, cfg.ops);
    // Kept so the report can count how many reads the fault axis
    // actually corrupted — the proof the corruption runs are not
    // vacuously clean.
    let mut fault_backends: Vec<Arc<FaultingBackend>> = Vec::new();
    // Node read-verification is pinned ON rather than inherited from
    // `TQ_NODE_VERIFY`: a `CaseConfig` replay must be bit-for-bit
    // identical in any environment, and the replication baselines have
    // no client-side cross-checksum layer, so the self-check is their
    // only defense on the corrupting axis.
    let cluster = match cfg.scenario.storage_faults {
        // The storage fault axis: every node's map sits behind a seeded
        // faulting wrapper, each node with its own fault stream derived
        // from the case seed so the whole case stays replayable.
        Some(faults) => Cluster::with_node_builders(CLUSTER_NODES, |i, b| {
            let backend = Arc::new(FaultingBackend::new(
                Arc::new(MemoryBackend::new()),
                faults,
                cfg.seed
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(i as u64),
            ));
            fault_backends.push(Arc::clone(&backend));
            b.backend(backend).verify_reads(true)
        }),
        None => Cluster::with_node_builders(CLUSTER_NODES, |_, b| b.verify_reads(true)),
    };
    let sim = Arc::new(SimTransport::with_model(
        cluster,
        cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        NetworkModel::reliable(),
    ));
    let store = cfg.backend.build_sharded(Arc::clone(&sim));
    let initial: Vec<Vec<u8>> = (0..TOTAL_BLOCKS).map(|i| payload(i as u8)).collect();
    for group in 0..SHARDS {
        store
            .create(
                STRIPE + group as u64,
                initial[group * BLOCKS..(group + 1) * BLOCKS].to_vec(),
            )
            .expect("provisioning under reliable links succeeds");
    }
    // Hedging arms *after* provisioning (whose require-every-ack rounds
    // would turn any adaptively-timed-out slow disk into a provisioning
    // failure) and is pinned ON (P99) rather than inherited from
    // `TQ_HEDGE`, for the same reason read verification is pinned: a
    // `CaseConfig` replay must be bit-for-bit identical in any
    // environment. The dormant registry sampled RTTs throughout
    // provisioning, so the estimator starts the workload warm. The
    // matrices thereby double as the adaptive-robustness soak — hedge
    // re-issues, adaptive deadlines and retry-budget spends all run
    // under the checker, and `CaseReport::sim` counts what fired.
    sim.health_registry().set_policy(HedgePolicy::P99);
    sim.set_model(cfg.scenario.model.clone());

    let mut checker = HistoryChecker::new(&initial);
    let (stats, violation) = run_workload(store.as_ref(), &sim, &cfg.scenario, &ops, &mut checker);
    CaseReport {
        config: cfg.clone(),
        stats,
        sim: sim.stats(),
        corrupted_reads: fault_backends.iter().map(|b| b.corrupted_reads()).sum(),
        violation,
    }
}

/// Shrinks a failing case to the shortest op prefix that still produces
/// a violation (workload generation is prefix-stable, so the prefix of
/// length `op_index + 1` is the canonical minimum). Returns `None` if
/// the case does not fail.
pub fn minimize(cfg: &CaseConfig) -> Option<CaseReport> {
    let report = run_case(cfg);
    let violation = report.violation.as_ref()?;
    let truncated = CaseConfig {
        ops: (violation.op_index + 1).min(cfg.ops),
        ..cfg.clone()
    };
    let minimal = run_case(&truncated);
    if minimal.violation.is_some() {
        Some(minimal)
    } else {
        Some(report)
    }
}

/// Drives one workload against one store and settles with a final
/// quiesced scrub — the driver both [`run_case`] and tests use; it is
/// public so tests can inject instrumented [`QuorumStore`] wrappers
/// (e.g. the deliberate version-regression bug demo).
pub fn run_workload(
    store: &dyn QuorumStore,
    sim: &SimTransport,
    scenario: &Scenario,
    ops: &[WorkloadOp],
    checker: &mut HistoryChecker,
) -> (CaseStats, Option<Violation>) {
    let mut stats = CaseStats::default();
    let mut runner = Runner {
        sim,
        store,
        scenario,
        down: BTreeSet::new(),
        wiped: BTreeSet::new(),
        partitioned: BTreeSet::new(),
        degraded: BTreeSet::new(),
        fault_horizon: 0,
    };
    let mut violation = None;
    for (op_index, op) in ops.iter().enumerate() {
        if let Err(v) = runner.step(op, op_index, checker, &mut stats) {
            violation = Some(v);
            break;
        }
    }
    if violation.is_none() {
        if let Err(v) = runner.scrub(ops.len(), checker, &mut stats) {
            violation = Some(v);
        }
    }
    stats.final_floors = (0..checker.block_count())
        .map(|b| checker.floor(b))
        .collect();
    (stats, violation)
}

/// Stripe groups a checker's address space spans.
fn group_count(checker: &HistoryChecker) -> usize {
    checker.block_count().div_ceil(BLOCKS).max(1)
}

/// Workload-driver state: which faults are outstanding, so fault
/// pressure stays within the scenario's bounds.
struct Runner<'a> {
    sim: &'a SimTransport,
    store: &'a dyn QuorumStore,
    scenario: &'a Scenario,
    down: BTreeSet<usize>,
    wiped: BTreeSet<usize>,
    partitioned: BTreeSet<usize>,
    degraded: BTreeSet<usize>,
    fault_horizon: u64,
}

/// Max simultaneously-gray nodes: degrades do not count against
/// `max_down` (a gray node is up and still acks), but unbounded graying
/// would starve the run of fast quorums and make it vacuous.
const MAX_DEGRADED: usize = 2;

impl Runner<'_> {
    fn pressure(&self) -> usize {
        self.down.union(&self.partitioned).count()
    }

    fn step(
        &mut self,
        op: &WorkloadOp,
        op_index: usize,
        checker: &mut HistoryChecker,
        stats: &mut CaseStats,
    ) -> Result<(), Violation> {
        match op {
            WorkloadOp::Write { block, fill } => {
                let bytes = payload(*fill);
                match self.store.write(addr_of(*block), &bytes) {
                    Ok(out) => {
                        stats.commits += 1;
                        checker.commit(*block, &bytes, out.version, op_index)?;
                    }
                    // The embedded read failed before anything was sent:
                    // no residue exists.
                    Err(ProtocolError::OldValueUnreadable(_)) => {}
                    Err(_) => {
                        stats.residues += 1;
                        checker.residue(*block, &bytes);
                    }
                }
            }
            WorkloadOp::Read { block } => match self.store.read(addr_of(*block)) {
                Ok(out) => {
                    stats.reads_ok += 1;
                    checker.observe_read(*block, &out.bytes, out.version, op_index)?;
                }
                Err(_) => stats.reads_failed += 1,
            },
            WorkloadOp::WriteBatch { blocks } => {
                let payloads: Vec<Vec<u8>> =
                    blocks.iter().map(|&(_, fill)| payload(fill)).collect();
                let items: Vec<BatchWrite<'_>> = blocks
                    .iter()
                    .zip(&payloads)
                    .map(|(&(block, _), bytes)| BatchWrite {
                        addr: addr_of(block),
                        bytes,
                    })
                    .collect();
                let batch = self.store.write_batch(&items);
                for ((&(block, _), bytes), outcome) in
                    blocks.iter().zip(&payloads).zip(&batch.outcomes)
                {
                    match outcome {
                        Ok(out) => {
                            stats.commits += 1;
                            checker.commit(block, bytes, out.version, op_index)?;
                        }
                        Err(ProtocolError::OldValueUnreadable(_)) => {}
                        Err(_) => {
                            stats.residues += 1;
                            checker.residue(block, bytes);
                        }
                    }
                }
            }
            WorkloadOp::ReadBatch { blocks } => {
                let addrs: Vec<BlockAddr> = blocks.iter().map(|&b| addr_of(b)).collect();
                let batch = self.store.read_batch(&addrs);
                for (&block, outcome) in blocks.iter().zip(&batch.outcomes) {
                    match outcome {
                        Ok(out) => {
                            stats.reads_ok += 1;
                            checker.observe_read(block, &out.bytes, out.version, op_index)?;
                        }
                        Err(_) => stats.reads_failed += 1,
                    }
                }
            }
            WorkloadOp::Crash {
                node,
                durable,
                after,
            } => {
                let wiping = !durable;
                if !self.down.contains(node)
                    && self.pressure() < self.scenario.max_down
                    && (!wiping || self.wiped.len() < self.scenario.max_wiped)
                {
                    let at = self.sim.now() + after;
                    self.sim.schedule(
                        at,
                        SimFault::Crash {
                            node: *node,
                            durable: *durable,
                        },
                    );
                    self.fault_horizon = self.fault_horizon.max(at);
                    self.down.insert(*node);
                    if wiping {
                        self.wiped.insert(*node);
                    }
                }
            }
            WorkloadOp::Restart { pick, after } => {
                if let Some(&node) = self.down.iter().nth(pick % self.down.len().max(1)) {
                    // Never before the crash itself fires.
                    let at = (self.sim.now() + after).max(self.fault_horizon + 1);
                    self.sim.schedule(at, SimFault::Restart { node });
                    self.fault_horizon = self.fault_horizon.max(at);
                    self.down.remove(&node);
                }
            }
            WorkloadOp::Partition { nodes, replies } => {
                let fresh: Vec<usize> = nodes
                    .iter()
                    .copied()
                    .filter(|n| !self.partitioned.contains(n))
                    .collect();
                if !fresh.is_empty() && self.pressure() + fresh.len() <= self.scenario.max_down {
                    self.partitioned.extend(fresh.iter().copied());
                    let fault = if *replies {
                        SimFault::PartitionReplies { nodes: fresh }
                    } else {
                        SimFault::PartitionRequests { nodes: fresh }
                    };
                    self.sim.apply(fault);
                }
            }
            WorkloadOp::Heal => {
                self.sim.apply(SimFault::HealPartitions);
                self.partitioned.clear();
            }
            WorkloadOp::Degrade { node, factor } => {
                if self.degraded.contains(node) {
                    self.sim.apply(SimFault::Degrade {
                        node: *node,
                        factor: 1,
                    });
                    self.degraded.remove(node);
                } else if self.degraded.len() < MAX_DEGRADED {
                    self.sim.apply(SimFault::Degrade {
                        node: *node,
                        factor: *factor,
                    });
                    self.degraded.insert(*node);
                }
            }
            WorkloadOp::Scrub => self.scrub(op_index, checker, stats)?,
            WorkloadOp::ScrubShard { shard } => {
                let group = shard % group_count(checker);
                self.scrub_groups(&[group], op_index, checker, stats)?;
            }
            WorkloadOp::Advance { dt } => self.sim.advance(*dt),
        }
        Ok(())
    }

    /// Quiesce and scrub every stripe group.
    fn scrub(
        &mut self,
        op_index: usize,
        checker: &mut HistoryChecker,
        stats: &mut CaseStats,
    ) -> Result<(), Violation> {
        let groups: Vec<usize> = (0..group_count(checker)).collect();
        self.scrub_groups(&groups, op_index, checker, stats)
    }

    /// Quiesce and scrub the given stripe groups: fire outstanding
    /// scheduled faults, restart every node, heal partitions, wait out
    /// every in-flight cross-round message (anti-entropy runs behind a
    /// quiet network — a stale write landing *after* the scrub settled
    /// would undo the settle), run each group's scrub over reliable
    /// links, settle the checker from a read-back, then restore the
    /// scenario. A group's blocks settle only when *its* scrub refreshed
    /// every node the stripe spans ([`QuorumStore::stripe_nodes`] — on a
    /// sharded store that is the owning shard's node count, not the
    /// router-wide sum).
    fn scrub_groups(
        &mut self,
        groups: &[usize],
        op_index: usize,
        checker: &mut HistoryChecker,
        stats: &mut CaseStats,
    ) -> Result<(), Violation> {
        while let Some(t) = self.sim.next_planned_fault() {
            self.sim.advance_to(t);
        }
        for node in 0..CLUSTER_NODES {
            if !self.sim.cluster().node(node).is_up() {
                self.sim.apply(SimFault::Restart { node });
            }
        }
        self.sim.apply(SimFault::HealPartitions);
        // Gray nodes clear too: anti-entropy reads every member, and a
        // 100× straggler under the quiesced window would stall the
        // settle for no adversarial value the workload phase didn't
        // already extract.
        for &node in &self.degraded {
            self.sim.apply(SimFault::Degrade { node, factor: 1 });
        }
        self.degraded.clear();
        self.sim.flush_inflight();
        let saved = self.sim.model();
        self.sim.set_model(NetworkModel::reliable());

        for &group in groups {
            let stripe = STRIPE + group as u64;
            match self.store.scrub(stripe) {
                Ok(report) => {
                    stats.scrubs_ok += 1;
                    let salvaged: Vec<usize> = report
                        .salvaged
                        .iter()
                        .map(|&b| group * BLOCKS + b)
                        .collect();
                    checker.note_salvaged(&salvaged);
                    let full = report.refreshed.len() == self.store.stripe_nodes(stripe);
                    for index in 0..BLOCKS {
                        let block = group * BLOCKS + index;
                        if block >= checker.block_count() {
                            break;
                        }
                        match self.store.read(BlockAddr::new(stripe, index)) {
                            Ok(out) => {
                                stats.reads_ok += 1;
                                checker.observe_read(block, &out.bytes, out.version, op_index)?;
                                if full {
                                    checker.settle(block, &out.bytes, out.version, op_index)?;
                                }
                            }
                            Err(_) => stats.reads_failed += 1,
                        }
                    }
                }
                Err(_) => stats.scrubs_failed += 1,
            }
        }

        self.sim.set_model(saved);
        self.down.clear();
        self.wiped.clear();
        self.partitioned.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_prefix_stable() {
        let scenario = Scenario::chaos();
        let long = generate_ops(9, &scenario, 40);
        let short = generate_ops(9, &scenario, 15);
        assert_eq!(&long[..15], &short[..]);
    }

    #[test]
    fn checker_accepts_a_clean_history() {
        let initial: Vec<Vec<u8>> = (0..2).map(|i| payload(i as u8)).collect();
        let mut c = HistoryChecker::new(&initial);
        c.observe_read(0, &initial[0], 0, 0).unwrap();
        let w = payload(0xAA);
        c.commit(0, &w, 1, 1).unwrap();
        c.observe_read(0, &w, 1, 2).unwrap();
        assert_eq!(c.floor(0), 1);
        c.settle(0, &w, 1, 3).unwrap();
    }

    #[test]
    fn checker_flags_stale_reads_and_regressions() {
        let initial = vec![payload(0)];
        let mut c = HistoryChecker::new(&initial);
        let w = payload(0xBB);
        c.commit(0, &w, 1, 0).unwrap();
        let v = c.observe_read(0, &initial[0], 0, 1).unwrap_err();
        assert!(matches!(
            v.kind,
            ViolationKind::StaleRead { floor: 1, got: 0 }
        ));
        let v = c.commit(0, &w, 1, 2).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::CommitRegression { .. }));
        let v = c.settle(0, &w, 0, 3).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::ScrubRegression { .. }));
    }

    #[test]
    fn checker_flags_foreign_values_and_version_conflicts() {
        let initial = vec![payload(0)];
        let mut c = HistoryChecker::new(&initial);
        let v = c.observe_read(0, &payload(0xCC), 0, 0).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::ForeignValue));
        // Same version, two different known values, no residue: conflict.
        let a = payload(1);
        let b = payload(2);
        c.commit(0, &a, 1, 1).unwrap();
        c.residue(0, &b); // dirty: conflict tolerated
        c.observe_read(0, &b, 1, 2).unwrap();
        let mut clean = HistoryChecker::new(&initial);
        clean.commit(0, &a, 1, 0).unwrap();
        clean.remember_for_test(0, &b);
        let v = clean.observe_read(0, &b, 1, 1).unwrap_err();
        assert!(matches!(
            v.kind,
            ViolationKind::VersionValueConflict { version: 1 }
        ));
    }

    #[test]
    fn residue_then_full_settle_clears_dirtiness() {
        let initial = vec![payload(0)];
        let mut c = HistoryChecker::new(&initial);
        c.residue(0, &payload(9));
        c.observe_read(0, &payload(9), 1, 0).unwrap();
        c.settle(0, &payload(9), 2, 1).unwrap();
        // After the settle the old initial value is gone for good.
        let v = c.observe_read(0, &initial[0], 2, 2).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::ForeignValue));
    }

    #[test]
    fn every_backend_survives_a_reliable_workload() {
        for backend in Backend::ALL {
            let cfg = CaseConfig {
                seed: 5,
                backend,
                scenario: Scenario {
                    name: "calm",
                    model: NetworkModel::reliable(),
                    weights: [10, 10, 0, 0, 0, 0, 1, 2, 5, 5, 1, 0],
                    wipe_prob: 0.0,
                    max_down: 0,
                    max_wiped: 0,
                    storage_faults: None,
                },
                ops: 30,
            };
            let report = run_case(&cfg);
            assert!(
                report.violation.is_none(),
                "{}: {:?}",
                backend.label(),
                report.violation
            );
            assert!(report.stats.commits > 0, "{}", backend.label());
            assert!(report.stats.reads_ok > 0, "{}", backend.label());
        }
    }

    impl HistoryChecker {
        /// Test hook: mark bytes as known without dirtying the block.
        fn remember_for_test(&mut self, block: usize, bytes: &[u8]) {
            self.blocks[block].remember(bytes);
        }
    }
}
