//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p tq-sim --bin figures -- all
//! cargo run --release -p tq-sim --bin figures -- fig3 --steps 20 --trials 4000
//! ```
//!
//! Markdown goes to stdout; CSV + markdown files land in `--out`
//! (default `figures/`).

use std::path::PathBuf;
use std::process::ExitCode;

use tq_sim::experiments;
use tq_sim::report;

struct Args {
    targets: Vec<String>,
    out: PathBuf,
    steps: usize,
    trials: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut targets = Vec::new();
    let mut out = PathBuf::from("figures");
    let mut steps = 20usize;
    let mut trials = 2000usize;
    let mut seed = 0xE5C0DEu64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--steps" => {
                steps = it
                    .next()
                    .ok_or("--steps needs a value")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--trials" => {
                trials = it
                    .next()
                    .ok_or("--trials needs a value")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            t @ ("fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "validate" | "baselines" | "all") => {
                targets.push(t.to_string())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Ok(Args {
        targets,
        out,
        steps,
        trials,
        seed,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: figures [fig1|fig2|fig3|fig4|fig5|baselines|validate|all]... \
                 [--out DIR] [--steps N] [--trials N] [--seed N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let all = args.targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || args.targets.iter().any(|t| t == name);

    let mut figures = Vec::new();
    if wants("fig1") {
        figures.push(experiments::fig1_layout());
    }
    if wants("fig2") {
        eprintln!("[figures] fig2: write availability sweep...");
        figures.push(experiments::fig2_write_availability(
            args.steps,
            args.trials,
            args.seed,
        ));
    }
    if wants("fig3") {
        eprintln!("[figures] fig3: read availability FR vs ERC...");
        figures.push(experiments::fig3_read_availability(
            args.steps,
            args.trials,
            args.seed + 1,
        ));
    }
    if wants("fig4") {
        eprintln!("[figures] fig4: redundancy sweep...");
        figures.push(experiments::fig4_read_redundancy(
            args.steps,
            args.trials,
            args.seed + 2,
        ));
    }
    if wants("fig5") {
        eprintln!("[figures] fig5: storage accounting...");
        figures.push(experiments::fig5_storage(4096));
    }
    if wants("baselines") {
        eprintln!("[figures] baselines: related-work quorum systems...");
        figures.push(experiments::baselines_comparison(args.steps));
    }
    if wants("validate") {
        eprintln!("[figures] validate: closed forms vs exact vs protocol...");
        figures.push(experiments::validation_table(args.trials, args.seed + 3));
    }

    for fig in &figures {
        print!("{}", report::to_markdown(fig));
        if let Err(e) = report::write_files(fig, &args.out) {
            eprintln!("error writing {}: {e}", fig.id);
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "[figures] wrote {} figure(s) to {}",
        figures.len(),
        args.out.display()
    );
    ExitCode::SUCCESS
}
