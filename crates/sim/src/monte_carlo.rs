//! Monte-Carlo availability estimation, at two fidelities.
//!
//! * [`MonteCarlo::estimate_predicate`] samples availability patterns and
//!   evaluates a structural [`tq_quorum::system::QuorumSystem`]-style
//!   predicate — cheap, for wide sweeps.
//! * The `protocol_*` functions run the actual `tq-trapezoid` clients
//!   against a real cluster per sample — the ground truth for what the
//!   executable protocol delivers, including every behaviour the paper's
//!   closed forms abstract away (embedded reads, version guards,
//!   staleness after partial writes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tq_cluster::{Cluster, FaultInjector, LocalTransport};
use tq_quorum::trapezoid::{TrapezoidShape, WriteThresholds};
use tq_quorum::NodeSet;
use tq_trapezoid::{ProtocolConfig, Store, TrapErcClient, TrapFrClient};

/// A Bernoulli estimate with its sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Number of successful trials.
    pub successes: usize,
    /// Total trials.
    pub trials: usize,
}

impl Estimate {
    /// Point estimate `successes / trials`.
    pub fn mean(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.successes as f64 / self.trials as f64
    }

    /// Standard error of the mean (binomial).
    pub fn stderr(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let m = self.mean();
        (m * (1.0 - m) / self.trials as f64).sqrt()
    }

    /// `true` iff `analytic` lies within `z` standard errors of the
    /// estimate (with a small absolute floor for near-0/1 probabilities,
    /// where the binomial stderr collapses).
    pub fn consistent_with(&self, analytic: f64, z: f64) -> bool {
        let tol = (z * self.stderr()).max(2.5 / self.trials.max(1) as f64 + 1e-9);
        (self.mean() - analytic).abs() <= tol
    }
}

/// Seeded sampler for structural predicates.
#[derive(Debug)]
pub struct MonteCarlo {
    rng: StdRng,
    trials: usize,
}

impl MonteCarlo {
    /// `trials` samples per estimate, deterministic in `seed`.
    pub fn new(seed: u64, trials: usize) -> Self {
        assert!(trials > 0, "at least one trial");
        MonteCarlo {
            rng: StdRng::seed_from_u64(seed),
            trials,
        }
    }

    /// Estimates `P[predicate(up)]` under i.i.d. Bernoulli(`p`) node
    /// states for `n` nodes.
    pub fn estimate_predicate(
        &mut self,
        n: usize,
        p: f64,
        mut predicate: impl FnMut(NodeSet) -> bool,
    ) -> Estimate {
        let mut successes = 0;
        for _ in 0..self.trials {
            let mut up = NodeSet::EMPTY;
            for i in 0..n {
                if self.rng.random_bool(p) {
                    up.insert(i);
                }
            }
            if predicate(up) {
                successes += 1;
            }
        }
        Estimate {
            successes,
            trials: self.trials,
        }
    }
}

const MC_BLOCK_LEN: usize = 8;

fn tiny_blocks(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..MC_BLOCK_LEN).map(|b| (i * 31 + b) as u8).collect())
        .collect()
}

/// Binds an already-validated config to a fresh cluster through the
/// unified store builder; the concrete client is kept because the
/// hinted-write extension surface is what the eq. 8/9 validation needs.
fn erc_client(config: &ProtocolConfig, cluster: &Cluster) -> TrapErcClient<LocalTransport> {
    Store::from_config(config.clone())
        .transport(LocalTransport::new(cluster.clone()))
        .build_trap_erc()
        .expect("transport sized to n")
}

/// The TRAP-FR deployment for a (shape, thresholds) pair. The typed
/// constructor is used (not the builder's `.thresholds(..)`, which
/// re-derives the eq. 6 majority `w_0`) so a caller-supplied custom
/// `w_0` reaches the simulated protocol verbatim.
fn fr_client(
    shape: &TrapezoidShape,
    thresholds: &WriteThresholds,
    cluster: &Cluster,
) -> TrapFrClient<LocalTransport> {
    TrapFrClient::with_stripe(
        *shape,
        thresholds.clone(),
        shape.node_count(),
        1,
        LocalTransport::new(cluster.clone()),
    )
    .expect("transport sized to shape")
}

fn all_up(cluster: &Cluster) {
    for i in 0..cluster.len() {
        cluster.revive(i);
    }
}

/// Protocol-level TRAP-ERC **write** availability: per trial, a fresh
/// stripe is provisioned with all nodes up, the Bernoulli(p) pattern is
/// applied, and Algorithm 1 runs against block 0.
///
/// With `hinted = true` the writer supplies the old chunk/version
/// (skipping the embedded READBLOCK), which makes success *exactly* the
/// eq. 8/9 predicate. With `hinted = false` the full Algorithm 1 runs,
/// READBLOCK included — the gap between the two is a finding recorded in
/// EXPERIMENTS.md.
pub fn protocol_write_availability(
    config: &ProtocolConfig,
    p: f64,
    trials: usize,
    seed: u64,
    hinted: bool,
) -> Estimate {
    let n = config.params().n();
    let cluster = Cluster::new(n);
    let client = erc_client(config, &cluster);
    let mut injector = FaultInjector::new(seed);
    let data = tiny_blocks(config.params().k());
    let new_value = vec![0xD7u8; MC_BLOCK_LEN];
    let mut successes = 0;
    for trial in 0..trials {
        let id = trial as u64;
        all_up(&cluster);
        client
            .create_stripe(id, data.clone())
            .expect("all nodes up");
        injector.sample_bernoulli(&cluster, p);
        let ok = if hinted {
            client
                .write_block_with_hint(id, 0, &new_value, &data[0], 0)
                .is_ok()
        } else {
            client.write_block(id, 0, &new_value).is_ok()
        };
        if ok {
            successes += 1;
        }
    }
    Estimate { successes, trials }
}

/// Protocol-level TRAP-ERC **read** availability: one stripe is
/// provisioned and written once with every node up (so all replicas are
/// current — the steady state the paper's formulas model); each trial
/// applies a fresh Bernoulli(p) pattern and runs Algorithm 2 on block 0.
pub fn protocol_read_availability(
    config: &ProtocolConfig,
    p: f64,
    trials: usize,
    seed: u64,
) -> Estimate {
    let n = config.params().n();
    let cluster = Cluster::new(n);
    let client = erc_client(config, &cluster);
    let mut injector = FaultInjector::new(seed);
    client
        .create_stripe(1, tiny_blocks(config.params().k()))
        .expect("all nodes up");
    client
        .write_block(1, 0, &[0x42u8; MC_BLOCK_LEN])
        .expect("all nodes up");
    let mut successes = 0;
    for _ in 0..trials {
        injector.sample_bernoulli(&cluster, p);
        if client.read_block(1, 0).is_ok() {
            successes += 1;
        }
    }
    all_up(&cluster);
    Estimate { successes, trials }
}

/// Protocol-level TRAP-FR read availability (same steady-state setup).
pub fn protocol_fr_read_availability(
    shape: &TrapezoidShape,
    thresholds: &WriteThresholds,
    p: f64,
    trials: usize,
    seed: u64,
) -> Estimate {
    let cluster = Cluster::new(shape.node_count());
    let client = fr_client(shape, thresholds, &cluster);
    let mut injector = FaultInjector::new(seed);
    client.create(1, &[0u8; MC_BLOCK_LEN]).expect("all up");
    client.write(1, &[0x42u8; MC_BLOCK_LEN]).expect("all up");
    let mut successes = 0;
    for _ in 0..trials {
        injector.sample_bernoulli(&cluster, p);
        if client.read(1).is_ok() {
            successes += 1;
        }
    }
    Estimate { successes, trials }
}

/// Protocol-level TRAP-FR write availability (hinted version supply, so
/// the estimate matches the eq. 8 predicate; the FR embedded read is
/// provably never the limiting factor — see `trap_fr` tests).
pub fn protocol_fr_write_availability(
    shape: &TrapezoidShape,
    thresholds: &WriteThresholds,
    p: f64,
    trials: usize,
    seed: u64,
) -> Estimate {
    let cluster = Cluster::new(shape.node_count());
    let client = fr_client(shape, thresholds, &cluster);
    let mut injector = FaultInjector::new(seed);
    client.create(1, &[0u8; MC_BLOCK_LEN]).expect("all up");
    let mut successes = 0;
    for trial in 0..trials {
        injector.sample_bernoulli(&cluster, p);
        if client
            .write_with_version(1, &[0x42u8; MC_BLOCK_LEN], trial as u64 + 1)
            .is_ok()
        {
            successes += 1;
        }
    }
    Estimate { successes, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_quorum::availability;
    use tq_quorum::system::QuorumSystem;
    use tq_quorum::trapezoid::TrapErcSystem;

    fn fig3_config() -> ProtocolConfig {
        ProtocolConfig::with_uniform_w(15, 8, 0, 4, 1, 2).unwrap()
    }

    #[test]
    fn estimate_arithmetic() {
        let e = Estimate {
            successes: 50,
            trials: 100,
        };
        assert!((e.mean() - 0.5).abs() < 1e-12);
        assert!((e.stderr() - 0.05).abs() < 1e-12);
        assert!(e.consistent_with(0.55, 2.0));
        assert!(!e.consistent_with(0.8, 2.0));
        let zero = Estimate {
            successes: 0,
            trials: 0,
        };
        assert_eq!(zero.mean(), 0.0);
        assert_eq!(zero.stderr(), 0.0);
    }

    #[test]
    fn predicate_mc_matches_phi() {
        // P[≥ 6 of 10 live] must match Φ_10(6, 10).
        let mut mc = MonteCarlo::new(7, 4000);
        for &p in &[0.3, 0.6, 0.9] {
            let est = mc.estimate_predicate(10, p, |up| up.len() >= 6);
            let analytic = availability::phi(10, 6, 10, p);
            assert!(
                est.consistent_with(analytic, 4.0),
                "p={p}: {} vs {analytic}",
                est.mean()
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = MonteCarlo::new(99, 500);
        let mut b = MonteCarlo::new(99, 500);
        let ea = a.estimate_predicate(8, 0.5, |up| up.len() >= 4);
        let eb = b.estimate_predicate(8, 0.5, |up| up.len() >= 4);
        assert_eq!(ea, eb);
    }

    #[test]
    fn predicate_mc_matches_structural_erc_read() {
        let config = fig3_config();
        let sys = config.system_for_block(0);
        let mut mc = MonteCarlo::new(11, 4000);
        let est = mc.estimate_predicate(15, 0.6, |up| sys.is_read_available(up));
        let exact = tq_quorum::exact::exact_availability(15, 0.6, |up| sys.is_read_available(up));
        assert!(est.consistent_with(exact, 4.0), "{} vs {exact}", est.mean());
    }

    #[test]
    fn hinted_protocol_write_matches_eq9() {
        let config = fig3_config();
        for &p in &[0.5, 0.8] {
            let est = protocol_write_availability(&config, p, 600, 42, true);
            let analytic = availability::write_availability(config.shape(), config.thresholds(), p);
            assert!(
                est.consistent_with(analytic, 4.5),
                "p={p}: protocol {} vs eq9 {analytic}",
                est.mean()
            );
        }
    }

    #[test]
    fn protocol_read_matches_structural_predicate() {
        // In the steady state (every node current) Algorithm 2 succeeds
        // exactly when the structural predicate holds.
        let config = fig3_config();
        let sys: TrapErcSystem = config.system_for_block(0);
        for &p in &[0.4, 0.7] {
            let est = protocol_read_availability(&config, p, 600, 23);
            let exact = tq_quorum::exact::exact_availability(15, p, |up| sys.is_read_available(up));
            assert!(
                est.consistent_with(exact, 4.5),
                "p={p}: protocol {} vs structural {exact}",
                est.mean()
            );
        }
    }

    #[test]
    fn fr_protocol_matches_eq8_and_eq10() {
        let shape = TrapezoidShape::new(0, 4, 1).unwrap();
        let th = WriteThresholds::paper_default(&shape, 2).unwrap();
        for &p in &[0.5, 0.85] {
            let w = protocol_fr_write_availability(&shape, &th, p, 600, 5);
            let analytic_w = availability::write_availability(&shape, &th, p);
            assert!(
                w.consistent_with(analytic_w, 4.5),
                "write p={p}: {} vs {analytic_w}",
                w.mean()
            );
            let r = protocol_fr_read_availability(&shape, &th, p, 600, 6);
            let analytic_r = availability::read_availability_fr(&shape, &th, p);
            assert!(
                r.consistent_with(analytic_r, 4.5),
                "read p={p}: {} vs {analytic_r}",
                r.mean()
            );
        }
    }

    #[test]
    fn faithful_write_no_higher_than_hinted() {
        // Algorithm 1's embedded READBLOCK can only remove successes.
        let config = fig3_config();
        let p = 0.5;
        let hinted = protocol_write_availability(&config, p, 500, 77, true);
        let faithful = protocol_write_availability(&config, p, 500, 77, false);
        assert!(
            faithful.mean() <= hinted.mean() + 3.0 * hinted.stderr(),
            "faithful {} vs hinted {}",
            faithful.mean(),
            hinted.mean()
        );
    }
}
