//! # tq-sim — Monte-Carlo validation and figure regeneration
//!
//! The paper's §IV-D evaluates the closed forms of §IV-A/B/C numerically
//! (Figs. 2–5). This crate regenerates every one of those figures and
//! goes two steps further, cross-validating each closed form against:
//!
//! 1. **exact enumeration** (`tq_quorum::exact`) of the structural
//!    predicates — feasible for the paper's n = 15;
//! 2. **protocol-level Monte-Carlo** — the *real* Algorithms 1/2 from
//!    `tq-trapezoid` executed against a `tq-cluster` whose availability
//!    pattern is re-sampled i.i.d. Bernoulli(p) per trial, exactly the
//!    model the formulas integrate over.
//!
//! Layer 2 is where the paper's approximations become visible: eq. 13's
//! P2 term drops the version check, and eq. 9 ignores Algorithm 1's
//! embedded READBLOCK. [`monte_carlo`] measures both gaps;
//! EXPERIMENTS.md records them.
//!
//! Beyond the paper's evaluation, [`dst`] adds deterministic simulation
//! testing: seeded adversarial network schedules (loss, duplication,
//! reordering, partitions, crash-restart) driven through
//! `tq_cluster::SimTransport`, with every operation checked online
//! against regular-register semantics and failing seeds replayable
//! bit-for-bit.
//!
//! The `figures` binary (`cargo run -p tq-sim --bin figures -- all`)
//! renders every figure as markdown + CSV.

// unsafe_code is denied workspace-wide (see [workspace.lints] in the root
// Cargo.toml); tq-lint's `unsafe-allow` pass guards the allow sites.
#![warn(missing_docs)]

pub mod dst;
pub mod experiments;
pub mod monte_carlo;
pub mod report;

pub use dst::{CaseConfig, CaseReport, HistoryChecker, Scenario, Violation};
pub use experiments::FigureData;
pub use monte_carlo::{Estimate, MonteCarlo};
