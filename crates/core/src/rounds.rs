//! Crate-internal helpers for the fan-out shapes every client shares.

use bytes::Bytes;
use tq_cluster::{NodeId, QuorumRound, Request, RoundOutcome, Transport};

use crate::errors::ProtocolError;
use crate::trap_erc::WriteOutcome;

/// Extracts the `(node, version)` pairs from a version-poll round's
/// successes, in arrival order.
pub(crate) fn version_responders(outcome: &RoundOutcome) -> Vec<(usize, u64)> {
    outcome
        .accepted
        .iter()
        .filter_map(|a| match a.response {
            tq_cluster::Response::Version(v) => Some((a.node.0, v)),
            _ => None,
        })
        .collect()
}

/// Grades a round that required every member: `Ok` iff nothing was
/// rejected, otherwise the lowest-indexed rejection's error — the one a
/// sequential walk would have tripped on first.
pub(crate) fn require_all(outcome: &RoundOutcome) -> Result<(), ProtocolError> {
    match outcome.first_rejection() {
        None => Ok(()),
        Some(rejected) => Err(ProtocolError::Node(rejected.error.clone())),
    }
}

/// One provisioning fan-out: install the object on nodes `0..n`; any
/// failure fails the operation.
pub(crate) fn provision<T: Transport>(
    transport: &T,
    n: usize,
    id: u64,
    bytes: &[u8],
) -> Result<(), ProtocolError> {
    // One shared allocation; per-node clones are O(1) Arc bumps.
    let payload = Bytes::copy_from_slice(bytes);
    let calls: Vec<(NodeId, Request)> = (0..n)
        .map(|node| {
            (
                NodeId(node),
                Request::InitData {
                    id,
                    bytes: payload.clone(),
                },
            )
        })
        .collect();
    require_all(&QuorumRound::await_all(n).run(transport, calls))
}

/// Runs one graded write level: await-all round, validated members
/// appended in issue order, [`ProtocolError::WriteQuorumNotMet`] if
/// fewer than `needed` acks arrive.
pub(crate) fn graded_write_level<T: Transport>(
    transport: &T,
    level: usize,
    needed: usize,
    calls: Vec<(NodeId, Request)>,
    validated: &mut Vec<usize>,
) -> Result<(), ProtocolError> {
    let outcome = QuorumRound::await_all(needed).run(transport, calls);
    validated.extend(outcome.accepted_in_issue_order().iter().map(|a| a.node.0));
    if !outcome.quorum_met() {
        return Err(ProtocolError::WriteQuorumNotMet {
            level,
            needed,
            achieved: outcome.validations(),
        });
    }
    Ok(())
}

/// One write fan-out over nodes `0..n` requiring `needed` acks.
pub(crate) fn write_all<T: Transport>(
    transport: &T,
    n: usize,
    needed: usize,
    id: u64,
    new: &[u8],
    version: u64,
) -> Result<WriteOutcome, ProtocolError> {
    // One shared allocation; per-node clones are O(1) Arc bumps.
    let payload = Bytes::copy_from_slice(new);
    let calls: Vec<(NodeId, Request)> = (0..n)
        .map(|node| {
            (
                NodeId(node),
                Request::WriteData {
                    id,
                    bytes: payload.clone(),
                    version,
                },
            )
        })
        .collect();
    let mut validated = Vec::with_capacity(n);
    graded_write_level(transport, 0, needed, calls, &mut validated)?;
    Ok(WriteOutcome { version, validated })
}
