//! Crate-internal helpers for the fan-out shapes every client shares.
//!
//! Every round runs through these helpers so that [`OpReport`]
//! accounting is uniform across protocols: single rounds via
//! [`run_recorded`], fused multi-op rounds via [`run_fused`].

use bytes::Bytes;
use tq_cluster::{MultiRound, NodeId, PlanOp, QuorumRound, Request, RoundOutcome, Transport};

use crate::errors::ProtocolError;
use crate::store::OpReport;

/// Runs one single-op round and records it in `report`.
pub(crate) fn run_recorded<T: Transport>(
    transport: &T,
    round: QuorumRound,
    level: Option<usize>,
    calls: Vec<(NodeId, Request)>,
    report: &mut OpReport,
) -> RoundOutcome {
    let outcome = round.run(transport, calls);
    report.absorb(level, &outcome);
    outcome
}

/// Runs one fused multi-op round and records it in `report` as a single
/// network round covering `ops.len()` logical operations.
pub(crate) fn run_fused<T: Transport>(
    transport: &T,
    level: Option<usize>,
    ops: Vec<PlanOp>,
    report: &mut OpReport,
) -> Vec<RoundOutcome> {
    let outcomes = MultiRound::run(transport, ops);
    report.absorb_fused(level, &outcomes);
    outcomes
}

/// Extracts the `(node, version)` pairs from a version-poll round's
/// successes, in arrival order.
pub(crate) fn version_responders(outcome: &RoundOutcome) -> Vec<(usize, u64)> {
    outcome
        .accepted
        .iter()
        .filter_map(|a| match a.response {
            tq_cluster::Response::Version(v) => Some((a.node.0, v)),
            _ => None,
        })
        .collect()
}

/// Grades a round that required every member: `Ok` iff nothing was
/// rejected, otherwise the lowest-indexed rejection's error — the one a
/// sequential walk would have tripped on first.
pub(crate) fn require_all(outcome: &RoundOutcome) -> Result<(), ProtocolError> {
    match outcome.first_rejection() {
        None => Ok(()),
        Some(rejected) => Err(ProtocolError::Node(rejected.error.clone())),
    }
}

/// One provisioning fan-out: install the object on nodes `0..n`; any
/// failure fails the operation.
pub(crate) fn provision<T: Transport>(
    transport: &T,
    n: usize,
    id: u64,
    bytes: &[u8],
    report: &mut OpReport,
) -> Result<(), ProtocolError> {
    // One shared allocation; per-node clones are O(1) Arc bumps.
    let payload = Bytes::copy_from_slice(bytes);
    let calls: Vec<(NodeId, Request)> = (0..n)
        .map(|node| {
            (
                NodeId(node),
                Request::InitData {
                    id,
                    bytes: payload.clone(),
                },
            )
        })
        .collect();
    require_all(&run_recorded(
        transport,
        QuorumRound::await_all(n),
        None,
        calls,
        report,
    ))
}

/// Flags duplicate batch keys: every occurrence of a key after its
/// first gets the per-item `Misconfigured` error (duplicate addresses
/// in one fused write have no single-op-equivalent ordering).
pub(crate) fn flag_duplicates<K: Eq + std::hash::Hash, T>(
    keys: impl Iterator<Item = K>,
    results: &mut [Option<Result<T, ProtocolError>>],
) {
    let mut seen = std::collections::HashSet::new();
    for (idx, key) in keys.enumerate() {
        if !seen.insert(key) {
            results[idx] = Some(Err(ProtocolError::Misconfigured(
                "duplicate address in write batch",
            )));
        }
    }
}

/// Unwraps a fully-resolved batch result table into per-item results.
pub(crate) fn finish_batch<T>(
    results: Vec<Option<Result<T, ProtocolError>>>,
) -> Vec<Result<T, ProtocolError>> {
    results
        .into_iter()
        .map(|r| r.expect("every item resolved"))
        .collect()
}

/// Fused provisioning for many objects: one [`MultiRound`] scatter of
/// all-replica `InitData` fan-outs, every op requiring all `n` acks.
pub(crate) fn provision_many<T: Transport>(
    transport: &T,
    n: usize,
    items: &[(u64, &[u8])],
    report: &mut OpReport,
) -> Result<(), ProtocolError> {
    let ops: Vec<PlanOp> = items
        .iter()
        .map(|(id, bytes)| {
            let payload = Bytes::copy_from_slice(bytes);
            PlanOp {
                round: QuorumRound::await_all(n),
                calls: (0..n)
                    .map(|node| {
                        (
                            NodeId(node),
                            Request::InitData {
                                id: *id,
                                bytes: payload.clone(),
                            },
                        )
                    })
                    .collect(),
            }
        })
        .collect();
    for outcome in run_fused(transport, None, ops, report) {
        require_all(&outcome)?;
    }
    Ok(())
}

/// Grades one write level's outcome: validated members appended in issue
/// order, [`ProtocolError::WriteQuorumNotMet`] if fewer than `needed`
/// acks arrived.
pub(crate) fn grade_write_level(
    outcome: &RoundOutcome,
    level: usize,
    needed: usize,
    validated: &mut Vec<usize>,
) -> Result<(), ProtocolError> {
    validated.extend(outcome.accepted_in_issue_order().iter().map(|a| a.node.0));
    if !outcome.quorum_met() {
        return Err(ProtocolError::WriteQuorumNotMet {
            level,
            needed,
            achieved: outcome.validations(),
        });
    }
    Ok(())
}

/// Runs one graded write level, recorded in `report`, then graded via
/// [`grade_write_level`].
///
/// By default the round awaits every member: the validated write *set*
/// is the durability statement. When the transport carries an armed
/// health registry (hedging on), the level completes on the first
/// `needed` acks instead — stragglers are hedged by the transport and
/// their requests still execute, but the round's tail is the quorum's
/// tail, not the slowest member's. The validated set then underreports
/// the stragglers that applied the write after abandonment, which is
/// the safe direction: version polls rediscover them.
pub(crate) fn graded_write_level<T: Transport>(
    transport: &T,
    level: usize,
    needed: usize,
    calls: Vec<(NodeId, Request)>,
    validated: &mut Vec<usize>,
    report: &mut OpReport,
) -> Result<(), ProtocolError> {
    let round = if transport.health().is_some_and(|h| h.hedging_enabled()) {
        QuorumRound::first_quorum(needed)
    } else {
        QuorumRound::await_all(needed)
    };
    let outcome = run_recorded(transport, round, Some(level), calls, report);
    grade_write_level(&outcome, level, needed, validated)
}

/// One write fan-out over nodes `0..n` requiring `needed` acks.
pub(crate) fn write_all<T: Transport>(
    transport: &T,
    n: usize,
    needed: usize,
    id: u64,
    new: &[u8],
    version: u64,
    report: &mut OpReport,
) -> Result<(u64, Vec<usize>), ProtocolError> {
    let calls = write_calls(n, id, new, version);
    let mut validated = Vec::with_capacity(n);
    graded_write_level(transport, 0, needed, calls, &mut validated, report)?;
    Ok((version, validated))
}

/// The full-replication write batch for one object: `WriteData` to every
/// node `0..n`, sharing one payload allocation.
pub(crate) fn write_calls(n: usize, id: u64, new: &[u8], version: u64) -> Vec<(NodeId, Request)> {
    let payload = Bytes::copy_from_slice(new);
    (0..n)
        .map(|node| {
            (
                NodeId(node),
                Request::WriteData {
                    id,
                    bytes: payload.clone(),
                    version,
                },
            )
        })
        .collect()
}
