//! Replication-control baselines from §II: ROWA and Majority quorum.
//!
//! Both manage one fully-replicated object over `n` nodes; they exist so
//! the benches can place the trapezoid protocols on the availability
//! spectrum the paper sketches (ROWA: perfect reads / fragile writes;
//! Majority: balanced; trapezoid: tunable between them).

use tq_cluster::{NodeError, NodeId, QuorumRound, Request, Response, Transport};

use crate::errors::ProtocolError;
use crate::rounds::{provision, write_all};
use crate::trap_erc::{ReadOutcome, ReadPath, WriteOutcome};

/// Read One, Write All.
#[derive(Debug)]
pub struct RowaClient<T: Transport> {
    n: usize,
    transport: T,
}

impl<T: Transport> RowaClient<T> {
    /// Binds `n` replicas to a transport.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn new(n: usize, transport: T) -> Result<Self, ProtocolError> {
        if transport.node_count() < n || n == 0 {
            return Err(ProtocolError::Node(NodeError::TransportClosed));
        }
        Ok(RowaClient { n, transport })
    }

    /// Installs the object everywhere (provisioning).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-indexed failing node's
    /// error.
    pub fn create(&self, id: u64, bytes: &[u8]) -> Result<(), ProtocolError> {
        provision(&self.transport, self.n, id, bytes)
    }

    /// Reads from the first live replica — "any single block read will
    /// give the latest value" because writes reach all replicas. A
    /// first-quorum round with threshold 1 over `ReadData`: on the
    /// sequential transport this is exactly the seed's one-RPC walk
    /// (ROWA's defining read cost); on a concurrent transport the
    /// fastest replica serves, trading the fan-out's extra payload
    /// reads on abandoned stragglers for one-responder latency — the
    /// same bandwidth-for-latency trade every first-quorum round makes.
    ///
    /// # Errors
    /// [`ProtocolError::VersionCheckFailed`] if every replica is down.
    pub fn read(&self, id: u64) -> Result<ReadOutcome, ProtocolError> {
        let calls: Vec<(NodeId, Request)> = (0..self.n)
            .map(|node| (NodeId(node), Request::ReadData { id }))
            .collect();
        let outcome = QuorumRound::first_quorum(1).run(&self.transport, calls);
        for accepted in &outcome.accepted {
            if let Response::Data { bytes, version } = &accepted.response {
                return Ok(ReadOutcome {
                    bytes: bytes.to_vec(),
                    version: *version,
                    path: ReadPath::Direct,
                });
            }
        }
        Err(ProtocolError::VersionCheckFailed)
    }

    /// Writes to *all* replicas; a single failure fails the operation
    /// (the paper's "any failure prevent[s] these operations").
    ///
    /// # Errors
    /// [`ProtocolError::WriteQuorumNotMet`] with `needed = n` on any
    /// replica failure; [`ProtocolError::OldValueUnreadable`] if no
    /// replica serves the current version.
    pub fn write(&self, id: u64, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read(id)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        write_all(&self.transport, self.n, self.n, id, new, old.version + 1)
    }
}

/// Majority quorum consensus (Thomas 1979).
#[derive(Debug)]
pub struct MajorityClient<T: Transport> {
    n: usize,
    transport: T,
}

impl<T: Transport> MajorityClient<T> {
    /// Binds `n` replicas to a transport.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn new(n: usize, transport: T) -> Result<Self, ProtocolError> {
        if transport.node_count() < n || n == 0 {
            return Err(ProtocolError::Node(NodeError::TransportClosed));
        }
        Ok(MajorityClient { n, transport })
    }

    /// The quorum size `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }

    /// Installs the object everywhere (provisioning).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-indexed failing node's
    /// error.
    pub fn create(&self, id: u64, bytes: &[u8]) -> Result<(), ProtocolError> {
        provision(&self.transport, self.n, id, bytes)
    }

    /// Polls versions in a first-quorum round until a majority answers,
    /// then serves the bytes from a replica holding the maximum version
    /// seen.
    ///
    /// # Errors
    /// [`ProtocolError::VersionCheckFailed`] without a live majority.
    pub fn read(&self, id: u64) -> Result<ReadOutcome, ProtocolError> {
        let calls: Vec<(NodeId, Request)> = (0..self.n)
            .map(|node| (NodeId(node), Request::VersionData { id }))
            .collect();
        let outcome = QuorumRound::first_quorum(self.quorum()).run(&self.transport, calls);
        if !outcome.quorum_met() {
            return Err(ProtocolError::VersionCheckFailed);
        }
        let responders = crate::rounds::version_responders(&outcome);
        let latest = responders.iter().map(|&(_, v)| v).max().expect("non-empty");
        for &(node, v) in &responders {
            if v != latest {
                continue;
            }
            if let Ok(Response::Data { bytes, version }) =
                self.transport.call(NodeId(node), Request::ReadData { id })
            {
                return Ok(ReadOutcome {
                    bytes: bytes.to_vec(),
                    version,
                    path: ReadPath::Direct,
                });
            }
        }
        Err(ProtocolError::VersionCheckFailed)
    }

    /// Reads the current version from a majority, then writes
    /// `version + 1` to every replica, requiring a majority of acks.
    ///
    /// # Errors
    /// [`ProtocolError::OldValueUnreadable`] /
    /// [`ProtocolError::WriteQuorumNotMet`].
    pub fn write(&self, id: u64, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read(id)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        write_all(
            &self.transport,
            self.n,
            self.quorum(),
            id,
            new,
            old.version + 1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_cluster::{Cluster, LocalTransport};

    #[test]
    fn rowa_read_one_write_all() {
        let cluster = Cluster::new(5);
        let c = RowaClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        c.create(1, b"init").unwrap();
        c.write(1, b"next").unwrap();
        // Any single live node serves reads.
        for dead in 0..4 {
            cluster.kill(dead);
        }
        assert_eq!(c.read(1).unwrap().bytes, b"next");
        // A single dead node fails writes.
        for node in 0..5 {
            cluster.revive(node);
        }
        cluster.kill(3);
        let err = c.write(1, b"nope").unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::WriteQuorumNotMet {
                needed: 5,
                achieved: 4,
                ..
            }
        ));
    }

    #[test]
    fn rowa_partial_write_is_visible() {
        // The classic ROWA anomaly the paper alludes to: a failed write
        // already reached the live replicas.
        let cluster = Cluster::new(3);
        let c = RowaClient::new(3, LocalTransport::new(cluster.clone())).unwrap();
        c.create(1, b"old").unwrap();
        cluster.kill(2);
        let _ = c.write(1, b"new").unwrap_err();
        cluster.revive(2);
        assert_eq!(c.read(1).unwrap().bytes, b"new");
    }

    #[test]
    fn majority_survives_minority_failures() {
        let cluster = Cluster::new(5);
        let c = MajorityClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        assert_eq!(c.quorum(), 3);
        c.create(1, b"m0").unwrap();
        cluster.kill(0);
        cluster.kill(4);
        let w = c.write(1, b"m1").unwrap();
        assert_eq!(w.version, 1);
        assert_eq!(w.validated, vec![1, 2, 3]);
        assert_eq!(c.read(1).unwrap().bytes, b"m1");
        // One more failure: no majority.
        cluster.kill(1);
        assert!(c.write(1, b"m2").is_err());
        assert!(c.read(1).is_err());
    }

    #[test]
    fn majority_reads_see_latest_despite_stale_minority() {
        let cluster = Cluster::new(5);
        let c = MajorityClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        c.create(1, b"v0").unwrap();
        // Nodes 0 and 1 miss the write.
        cluster.kill(0);
        cluster.kill(1);
        c.write(1, b"v1").unwrap();
        cluster.revive(0);
        cluster.revive(1);
        // Reads poll nodes in index order, so the majority {0, 1, 2}
        // contains two stale replicas — the max-version rule must still
        // surface v1 from node 2.
        let out = c.read(1).unwrap();
        assert_eq!(out.bytes, b"v1");
        assert_eq!(out.version, 1);
    }

    #[test]
    fn constructor_bounds() {
        let t = LocalTransport::new(Cluster::new(2));
        assert!(RowaClient::new(3, t.clone()).is_err());
        assert!(MajorityClient::new(0, t.clone()).is_err());
        assert!(MajorityClient::new(2, t).is_ok());
    }
}
