//! Replication-control baselines from §II: ROWA and Majority quorum.
//!
//! Both manage fully-replicated objects over `n` nodes; they exist so
//! the benches can place the trapezoid protocols on the availability
//! spectrum the paper sketches (ROWA: perfect reads / fragile writes;
//! Majority: balanced; trapezoid: tunable between them).
//!
//! The create/read/write scaffolding both clients share — provisioning
//! fan-outs, graded write rounds, anti-entropy pushes, fused batches —
//! lives in one crate-internal `ReplicaSet`; the clients differ only
//! in their read strategy and quorum size. Both populate the unified
//! [`ReadOutcome`] fully (quorum-time version, path, round accounting),
//! so cross-protocol assertions through
//! [`QuorumStore`](crate::store::QuorumStore) are possible.

use std::collections::BTreeSet;

use bytes::Bytes;
use tq_cluster::{NodeError, NodeId, PlanOp, QuorumRound, Request, Response, Transport};

use crate::errors::ProtocolError;
use crate::rounds::{self, run_fused, run_recorded};
use crate::store::{BatchReads, BatchWrites, OpReport, OBJECTS_PER_STRIPE};
use crate::trap_erc::{ReadOutcome, ReadPath, ScrubReport, WriteOutcome};

/// The replica scaffolding ROWA and Majority share: `n` replicas on one
/// transport, provisioning, graded write fan-outs and batch plumbing.
#[derive(Debug)]
struct ReplicaSet<T: Transport> {
    n: usize,
    transport: T,
}

impl<T: Transport> ReplicaSet<T> {
    fn new(n: usize, transport: T) -> Result<Self, ProtocolError> {
        if transport.node_count() < n || n == 0 {
            return Err(ProtocolError::Node(NodeError::TransportClosed));
        }
        Ok(ReplicaSet { n, transport })
    }

    /// Installs one object everywhere (provisioning).
    fn create(&self, id: u64, bytes: &[u8]) -> Result<OpReport, ProtocolError> {
        let mut report = OpReport::default();
        rounds::provision(&self.transport, self.n, id, bytes, &mut report)?;
        Ok(report)
    }

    /// Installs many objects everywhere in one fused fan-out round.
    fn create_many(&self, items: &[(u64, &[u8])]) -> Result<OpReport, ProtocolError> {
        let mut report = OpReport::default();
        rounds::provision_many(&self.transport, self.n, items, &mut report)?;
        Ok(report)
    }

    /// One graded write fan-out to all replicas, requiring `needed` acks.
    fn write(
        &self,
        id: u64,
        new: &[u8],
        version: u64,
        needed: usize,
        report: &mut OpReport,
    ) -> Result<WriteOutcome, ProtocolError> {
        let (version, validated) =
            rounds::write_all(&self.transport, self.n, needed, id, new, version, report)?;
        Ok(WriteOutcome {
            version,
            validated,
            report: OpReport::default(),
        })
    }

    /// One *fused* write round for many objects, each graded against
    /// `needed` acks.
    fn write_many(
        &self,
        items: &[(u64, &[u8], u64)],
        needed: usize,
        report: &mut OpReport,
    ) -> Vec<Result<WriteOutcome, ProtocolError>> {
        let ops: Vec<PlanOp> = items
            .iter()
            .map(|&(id, new, version)| PlanOp {
                round: QuorumRound::await_all(needed),
                calls: rounds::write_calls(self.n, id, new, version),
            })
            .collect();
        run_fused(&self.transport, Some(0), ops, report)
            .into_iter()
            .zip(items)
            .map(|(outcome, &(_, _, version))| {
                let mut validated = Vec::new();
                rounds::grade_write_level(&outcome, 0, needed, &mut validated)?;
                Ok(WriteOutcome {
                    version,
                    validated,
                    report: OpReport::default(),
                })
            })
            .collect()
    }
}

/// Anti-entropy pass shared by every replication backend (ROWA,
/// Majority, TRAP-FR): for each object of the stripe's contiguous block
/// prefix, read the latest state with the protocol's own quorum read and
/// push it back to all `n` replicas — stale replicas catch up, wiped
/// replacements are re-initialised. `refreshed` reports the replicas
/// that acked every push.
pub(crate) fn repair_contiguous_objects<T: Transport>(
    transport: &T,
    n: usize,
    stripe: u64,
    read: impl Fn(u64, &mut OpReport) -> Result<ReadOutcome, ProtocolError>,
) -> Result<ScrubReport, ProtocolError> {
    let mut report = OpReport::default();
    let mut refreshed: Option<BTreeSet<usize>> = None;
    for block in 0..OBJECTS_PER_STRIPE {
        let id = stripe * OBJECTS_PER_STRIPE + block;
        let out = match read(id, &mut report) {
            Ok(out) => out,
            Err(ProtocolError::StripeMissing) => break,
            Err(e) => return Err(e),
        };
        // Residue guard: a failed write may have stamped a *higher*
        // version on some replicas than the quorum read served, and a
        // client may have observed it. Versions must never regress —
        // and the node-side `WriteData` guard enforces that, acking a
        // stale push without applying it — so poll every live replica
        // and, like the TRAP-ERC scrub, install the settled value at a
        // version superseding any residue: that is what makes the push
        // dominate (and therefore actually land on) every live replica.
        let calls: Vec<(NodeId, Request)> = (0..n)
            .map(|node| (NodeId(node), Request::VersionData { id }))
            .collect();
        let poll = run_recorded(
            transport,
            QuorumRound::await_all(0),
            None,
            calls,
            &mut report,
        );
        let vmax = rounds::version_responders(&poll)
            .iter()
            .map(|&(_, v)| v)
            .max()
            .map_or(out.version, |v| v.max(out.version));
        let install = if out.version < vmax {
            vmax + 1
        } else {
            out.version
        };
        let acked = push_state(transport, n, id, &out.bytes, install, &mut report);
        refreshed = Some(match refreshed {
            None => acked,
            Some(prev) => prev.intersection(&acked).copied().collect(),
        });
    }
    Ok(ScrubReport {
        refreshed: refreshed.unwrap_or_default().into_iter().collect(),
        salvaged: Vec::new(),
        // Replication repair heals corrupt replicas by re-pushing full
        // state; attribution needs the erasure cross-checksum machinery
        // and is reported only by the TRAP-ERC scrub.
        corrupt: Vec::new(),
        report,
    })
}

/// Pushes `(bytes, version)` to all `n` replicas; replicas that lost the
/// object entirely (wiped replacements answer `NotFound`) get an
/// init-then-write follow-up. Returns the replicas holding the state.
fn push_state<T: Transport>(
    transport: &T,
    n: usize,
    id: u64,
    bytes: &[u8],
    version: u64,
    report: &mut OpReport,
) -> BTreeSet<usize> {
    let calls = rounds::write_calls(n, id, bytes, version);
    let outcome = run_recorded(transport, QuorumRound::await_all(0), None, calls, report);
    let mut acked: BTreeSet<usize> = outcome.accepted.iter().map(|a| a.node.0).collect();
    let missing: Vec<usize> = outcome
        .rejected
        .iter()
        .filter(|r| matches!(r.error, NodeError::NotFound))
        .map(|r| r.node.0)
        .collect();
    if !missing.is_empty() {
        let payload = Bytes::copy_from_slice(bytes);
        let init: Vec<(NodeId, Request)> = missing
            .iter()
            .map(|&node| {
                (
                    NodeId(node),
                    Request::InitData {
                        id,
                        bytes: payload.clone(),
                    },
                )
            })
            .collect();
        run_recorded(transport, QuorumRound::await_all(0), None, init, report);
        let stamp: Vec<(NodeId, Request)> = missing
            .iter()
            .map(|&node| {
                (
                    NodeId(node),
                    Request::WriteData {
                        id,
                        bytes: payload.clone(),
                        version,
                    },
                )
            })
            .collect();
        let outcome = run_recorded(transport, QuorumRound::await_all(0), None, stamp, report);
        acked.extend(outcome.accepted.iter().map(|a| a.node.0));
    }
    acked
}

/// Grades a read round's liveness evidence into the unified error: a
/// stripe no contacted node knows is [`ProtocolError::StripeMissing`],
/// anything else is [`ProtocolError::VersionCheckFailed`].
fn read_failure(saw_not_found: bool, saw_success: bool) -> ProtocolError {
    if saw_not_found && !saw_success {
        ProtocolError::StripeMissing
    } else {
        ProtocolError::VersionCheckFailed
    }
}

/// Read One, Write All.
#[derive(Debug)]
pub struct RowaClient<T: Transport> {
    replicas: ReplicaSet<T>,
}

impl<T: Transport> RowaClient<T> {
    /// Binds `n` replicas to a transport.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn new(n: usize, transport: T) -> Result<Self, ProtocolError> {
        Ok(RowaClient {
            replicas: ReplicaSet::new(n, transport)?,
        })
    }

    /// The replica count n.
    pub fn replicas(&self) -> usize {
        self.replicas.n
    }

    /// Installs the object everywhere (provisioning).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-indexed failing node's
    /// error.
    pub fn create(&self, id: u64, bytes: &[u8]) -> Result<OpReport, ProtocolError> {
        self.replicas.create(id, bytes)
    }

    /// Installs many objects in one fused provisioning round.
    ///
    /// # Errors
    /// See [`RowaClient::create`].
    pub fn create_many(&self, items: &[(u64, &[u8])]) -> Result<OpReport, ProtocolError> {
        self.replicas.create_many(items)
    }

    /// Reads from the first live replica — "any single block read will
    /// give the latest value" because writes reach all replicas. A
    /// first-quorum round with threshold 1 over `ReadData`: on the
    /// sequential transport this is exactly the seed's one-RPC walk
    /// (ROWA's defining read cost); on a concurrent transport the
    /// fastest replica serves. The outcome carries the serving replica's
    /// version — under ROWA's invariant that *is* the quorum-time latest.
    ///
    /// # Errors
    /// [`ProtocolError::StripeMissing`] if replicas answer but none
    /// stores the object; [`ProtocolError::VersionCheckFailed`] if every
    /// replica is down.
    pub fn read(&self, id: u64) -> Result<ReadOutcome, ProtocolError> {
        let mut report = OpReport::default();
        let result = self.read_recorded(id, &mut report);
        result.map(|mut out| {
            out.report = report;
            out
        })
    }

    fn read_recorded(&self, id: u64, report: &mut OpReport) -> Result<ReadOutcome, ProtocolError> {
        let calls: Vec<(NodeId, Request)> = (0..self.replicas.n)
            .map(|node| (NodeId(node), Request::ReadData { id }))
            .collect();
        let outcome = run_recorded(
            &self.replicas.transport,
            QuorumRound::first_quorum(1),
            Some(0),
            calls,
            report,
        );
        Self::serve_first(&outcome)
    }

    /// Extracts the first `Data` answer of a ROWA read round.
    fn serve_first(outcome: &tq_cluster::RoundOutcome) -> Result<ReadOutcome, ProtocolError> {
        for accepted in &outcome.accepted {
            if let Response::Data { bytes, version, .. } = &accepted.response {
                return Ok(ReadOutcome {
                    bytes: bytes.to_vec(),
                    version: *version,
                    path: ReadPath::Direct,
                    report: OpReport::default(),
                });
            }
        }
        Err(read_failure(
            outcome.saw_error(|e| matches!(e, NodeError::NotFound)),
            false,
        ))
    }

    /// Batched ROWA read: one fused round carrying every object's
    /// first-live-replica poll.
    pub fn read_many(&self, ids: &[u64]) -> BatchReads {
        let mut report = OpReport::default();
        let ops: Vec<PlanOp> = ids
            .iter()
            .map(|&id| PlanOp {
                round: QuorumRound::first_quorum(1),
                calls: (0..self.replicas.n)
                    .map(|node| (NodeId(node), Request::ReadData { id }))
                    .collect(),
            })
            .collect();
        let outcomes = run_fused(&self.replicas.transport, Some(0), ops, &mut report);
        BatchReads {
            outcomes: outcomes.iter().map(Self::serve_first).collect(),
            report,
        }
    }

    /// Writes to *all* replicas; a single failure fails the operation
    /// (the paper's "any failure prevent\[s\] these operations").
    ///
    /// # Errors
    /// [`ProtocolError::WriteQuorumNotMet`] with `needed = n` on any
    /// replica failure; [`ProtocolError::OldValueUnreadable`] if no
    /// replica serves the current version.
    pub fn write(&self, id: u64, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read(id)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        let mut report = old.report;
        let mut out =
            self.replicas
                .write(id, new, old.version + 1, self.replicas.n, &mut report)?;
        out.report = report;
        Ok(out)
    }

    /// Batched ROWA write: one fused read round for current versions,
    /// one fused all-replica write round.
    pub fn write_many(&self, items: &[(u64, &[u8])]) -> BatchWrites {
        write_many_via(&self.replicas, items, self.replicas.n, |ids| {
            self.read_many(ids)
        })
    }

    /// Anti-entropy for the store facade (see
    /// [`repair_contiguous_objects`]).
    pub(crate) fn repair_stripe_objects(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        repair_contiguous_objects(
            &self.replicas.transport,
            self.replicas.n,
            stripe,
            |id, report| self.read_recorded(id, report),
        )
    }
}

/// Majority quorum consensus (Thomas 1979).
#[derive(Debug)]
pub struct MajorityClient<T: Transport> {
    replicas: ReplicaSet<T>,
}

impl<T: Transport> MajorityClient<T> {
    /// Binds `n` replicas to a transport.
    ///
    /// # Errors
    /// [`ProtocolError::Node`] if the transport is too small.
    pub fn new(n: usize, transport: T) -> Result<Self, ProtocolError> {
        Ok(MajorityClient {
            replicas: ReplicaSet::new(n, transport)?,
        })
    }

    /// The replica count n.
    pub fn replicas(&self) -> usize {
        self.replicas.n
    }

    /// The quorum size `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.replicas.n / 2 + 1
    }

    /// Installs the object everywhere (provisioning).
    ///
    /// # Errors
    /// [`ProtocolError::Node`] with the lowest-indexed failing node's
    /// error.
    pub fn create(&self, id: u64, bytes: &[u8]) -> Result<OpReport, ProtocolError> {
        self.replicas.create(id, bytes)
    }

    /// Installs many objects in one fused provisioning round.
    ///
    /// # Errors
    /// See [`MajorityClient::create`].
    pub fn create_many(&self, items: &[(u64, &[u8])]) -> Result<OpReport, ProtocolError> {
        self.replicas.create_many(items)
    }

    /// Polls versions in a first-quorum round until a majority answers,
    /// then serves the bytes from a replica holding the maximum version
    /// seen — the outcome's `version` is that quorum-time maximum (or
    /// newer, if the replica advanced between the two rounds), never a
    /// stale replica's private version.
    ///
    /// # Errors
    /// [`ProtocolError::StripeMissing`] if replicas answer but none
    /// stores the object; [`ProtocolError::VersionCheckFailed`] without
    /// a live majority.
    pub fn read(&self, id: u64) -> Result<ReadOutcome, ProtocolError> {
        let mut report = OpReport::default();
        let result = self.read_recorded(id, &mut report);
        result.map(|mut out| {
            out.report = report;
            out
        })
    }

    fn read_recorded(&self, id: u64, report: &mut OpReport) -> Result<ReadOutcome, ProtocolError> {
        let calls: Vec<(NodeId, Request)> = (0..self.replicas.n)
            .map(|node| (NodeId(node), Request::VersionData { id }))
            .collect();
        let outcome = run_recorded(
            &self.replicas.transport,
            QuorumRound::first_quorum(self.quorum()),
            Some(0),
            calls,
            report,
        );
        let (latest, holders) = Self::quorum_versions(&outcome)?;
        for &node in &holders {
            let result = self
                .replicas
                .transport
                .call(NodeId(node), Request::ReadData { id });
            report.absorb_call(result.is_ok());
            if let Ok(Response::Data { bytes, version, .. }) = result {
                if version >= latest {
                    return Ok(ReadOutcome {
                        bytes: bytes.to_vec(),
                        version,
                        path: ReadPath::Direct,
                        report: OpReport::default(),
                    });
                }
            }
        }
        Err(ProtocolError::VersionCheckFailed)
    }

    /// Grades a version-poll round: quorum-time latest version plus the
    /// replicas known to hold it.
    fn quorum_versions(
        outcome: &tq_cluster::RoundOutcome,
    ) -> Result<(u64, Vec<usize>), ProtocolError> {
        if !outcome.quorum_met() {
            return Err(read_failure(
                outcome.saw_error(|e| matches!(e, NodeError::NotFound)),
                !outcome.accepted.is_empty(),
            ));
        }
        let responders = rounds::version_responders(outcome);
        let latest = responders.iter().map(|&(_, v)| v).max().expect("non-empty");
        let holders = responders
            .iter()
            .filter(|&&(_, v)| v == latest)
            .map(|&(node, _)| node)
            .collect();
        Ok((latest, holders))
    }

    /// Batched Majority read: one fused version-poll round, one fused
    /// fetch round from each object's first latest holder, per-object
    /// fallback only when that holder died in between.
    pub fn read_many(&self, ids: &[u64]) -> BatchReads {
        let mut report = OpReport::default();
        let ops: Vec<PlanOp> = ids
            .iter()
            .map(|&id| PlanOp {
                round: QuorumRound::first_quorum(self.quorum()),
                calls: (0..self.replicas.n)
                    .map(|node| (NodeId(node), Request::VersionData { id }))
                    .collect(),
            })
            .collect();
        let polls = run_fused(&self.replicas.transport, Some(0), ops, &mut report);
        let graded: Vec<Result<(u64, Vec<usize>), ProtocolError>> =
            polls.iter().map(Self::quorum_versions).collect();

        // One fused fetch from the first latest holder of each object.
        let fetch: Vec<usize> = (0..ids.len()).filter(|&i| graded[i].is_ok()).collect();
        let fetch_ops: Vec<PlanOp> = fetch
            .iter()
            .map(|&i| {
                let (_, holders) = graded[i].as_ref().expect("filtered Ok");
                PlanOp {
                    round: QuorumRound::await_all(0),
                    calls: vec![(NodeId(holders[0]), Request::ReadData { id: ids[i] })],
                }
            })
            .collect();
        let fetched = run_fused(&self.replicas.transport, None, fetch_ops, &mut report);

        let mut outcomes: Vec<Option<Result<ReadOutcome, ProtocolError>>> = graded
            .iter()
            .map(|g| match g {
                Err(e) => Some(Err(e.clone())),
                Ok(_) => None,
            })
            .collect();
        for (&i, outcome) in fetch.iter().zip(&fetched) {
            let (latest, holders) = graded[i].as_ref().expect("filtered Ok");
            if let Some(accepted) = outcome.accepted.first() {
                if let Response::Data { bytes, version, .. } = &accepted.response {
                    if version >= latest {
                        outcomes[i] = Some(Ok(ReadOutcome {
                            bytes: bytes.to_vec(),
                            version: *version,
                            path: ReadPath::Direct,
                            report: OpReport::default(),
                        }));
                    }
                }
            }
            if outcomes[i].is_none() {
                // The first holder died between the rounds: walk the
                // remaining holders one call at a time.
                let mut served = None;
                for &node in &holders[1..] {
                    let result = self
                        .replicas
                        .transport
                        .call(NodeId(node), Request::ReadData { id: ids[i] });
                    report.absorb_call(result.is_ok());
                    if let Ok(Response::Data { bytes, version, .. }) = result {
                        if version >= *latest {
                            served = Some(ReadOutcome {
                                bytes: bytes.to_vec(),
                                version,
                                path: ReadPath::Direct,
                                report: OpReport::default(),
                            });
                            break;
                        }
                    }
                }
                outcomes[i] = Some(served.ok_or(ProtocolError::VersionCheckFailed));
            }
        }
        BatchReads {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every item resolved"))
                .collect(),
            report,
        }
    }

    /// Reads the current version from a majority, then writes
    /// `version + 1` to every replica, requiring a majority of acks.
    ///
    /// # Errors
    /// [`ProtocolError::OldValueUnreadable`] /
    /// [`ProtocolError::WriteQuorumNotMet`].
    pub fn write(&self, id: u64, new: &[u8]) -> Result<WriteOutcome, ProtocolError> {
        let old = self
            .read(id)
            .map_err(|e| ProtocolError::OldValueUnreadable(Box::new(e)))?;
        let mut report = old.report;
        let mut out = self
            .replicas
            .write(id, new, old.version + 1, self.quorum(), &mut report)?;
        out.report = report;
        Ok(out)
    }

    /// Batched Majority write: one fused version-discovery pass, one
    /// fused all-replica write round graded against the majority.
    pub fn write_many(&self, items: &[(u64, &[u8])]) -> BatchWrites {
        write_many_via(&self.replicas, items, self.quorum(), |ids| {
            self.read_many(ids)
        })
    }

    /// Anti-entropy for the store facade (see
    /// [`repair_contiguous_objects`]).
    pub(crate) fn repair_stripe_objects(&self, stripe: u64) -> Result<ScrubReport, ProtocolError> {
        repair_contiguous_objects(
            &self.replicas.transport,
            self.replicas.n,
            stripe,
            |id, report| self.read_recorded(id, report),
        )
    }
}

/// The shared batched-write shape: fused version discovery through the
/// protocol's own batched read, then one fused graded write round.
fn write_many_via<T: Transport>(
    replicas: &ReplicaSet<T>,
    items: &[(u64, &[u8])],
    needed: usize,
    read_many: impl FnOnce(&[u64]) -> BatchReads,
) -> BatchWrites {
    let mut results: Vec<Option<Result<WriteOutcome, ProtocolError>>> = vec![None; items.len()];
    rounds::flag_duplicates(items.iter().map(|&(id, _)| id), &mut results);
    let read_idx: Vec<usize> = (0..items.len())
        .filter(|&idx| results[idx].is_none())
        .collect();
    let ids: Vec<u64> = read_idx.iter().map(|&idx| items[idx].0).collect();
    let reads = read_many(&ids);
    let mut report = reads.report;

    let mut writable: Vec<(usize, u64)> = Vec::with_capacity(read_idx.len());
    for (&idx, old) in read_idx.iter().zip(reads.outcomes) {
        match old {
            Ok(old) => writable.push((idx, old.version + 1)),
            Err(e) => results[idx] = Some(Err(ProtocolError::OldValueUnreadable(Box::new(e)))),
        }
    }
    let write_items: Vec<(u64, &[u8], u64)> = writable
        .iter()
        .map(|&(idx, version)| (items[idx].0, items[idx].1, version))
        .collect();
    let written = replicas.write_many(&write_items, needed, &mut report);
    for (&(idx, _), result) in writable.iter().zip(written) {
        results[idx] = Some(result);
    }
    BatchWrites {
        outcomes: rounds::finish_batch(results),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_cluster::{Cluster, LocalTransport};

    #[test]
    fn rowa_read_one_write_all() {
        let cluster = Cluster::new(5);
        let c = RowaClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        c.create(1, b"init").unwrap();
        c.write(1, b"next").unwrap();
        // Any single live node serves reads.
        for dead in 0..4 {
            cluster.kill(dead);
        }
        assert_eq!(c.read(1).unwrap().bytes, b"next");
        // A single dead node fails writes.
        for node in 0..5 {
            cluster.revive(node);
        }
        cluster.kill(3);
        let err = c.write(1, b"nope").unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::WriteQuorumNotMet {
                needed: 5,
                achieved: 4,
                ..
            }
        ));
    }

    #[test]
    fn rowa_partial_write_is_visible() {
        // The classic ROWA anomaly the paper alludes to: a failed write
        // already reached the live replicas.
        let cluster = Cluster::new(3);
        let c = RowaClient::new(3, LocalTransport::new(cluster.clone())).unwrap();
        c.create(1, b"old").unwrap();
        cluster.kill(2);
        let _ = c.write(1, b"new").unwrap_err();
        cluster.revive(2);
        assert_eq!(c.read(1).unwrap().bytes, b"new");
    }

    #[test]
    fn majority_survives_minority_failures() {
        let cluster = Cluster::new(5);
        let c = MajorityClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        assert_eq!(c.quorum(), 3);
        c.create(1, b"m0").unwrap();
        cluster.kill(0);
        cluster.kill(4);
        let w = c.write(1, b"m1").unwrap();
        assert_eq!(w.version, 1);
        assert_eq!(w.validated, vec![1, 2, 3]);
        assert_eq!(c.read(1).unwrap().bytes, b"m1");
        // One more failure: no majority.
        cluster.kill(1);
        assert!(c.write(1, b"m2").is_err());
        assert!(c.read(1).is_err());
    }

    #[test]
    fn majority_reads_see_latest_despite_stale_minority() {
        let cluster = Cluster::new(5);
        let c = MajorityClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        c.create(1, b"v0").unwrap();
        // Nodes 0 and 1 miss the write.
        cluster.kill(0);
        cluster.kill(1);
        c.write(1, b"v1").unwrap();
        cluster.revive(0);
        cluster.revive(1);
        // Reads poll nodes in index order, so the majority {0, 1, 2}
        // contains two stale replicas — the max-version rule must still
        // surface v1 from node 2.
        let out = c.read(1).unwrap();
        assert_eq!(out.bytes, b"v1");
        assert_eq!(out.version, 1);
    }

    #[test]
    fn reads_report_quorum_time_version_and_accounting() {
        let cluster = Cluster::new(5);
        let rowa = RowaClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        rowa.create(7, b"r0").unwrap();
        let out = rowa.read(7).unwrap();
        assert_eq!(out.version, 0);
        assert_eq!(out.path, ReadPath::Direct);
        assert_eq!(out.report.network_rounds(), 1, "one first-quorum round");
        assert_eq!(out.report.messages(), 1, "ROWA's defining one-RPC read");

        let majority = MajorityClient::new(5, LocalTransport::new(cluster)).unwrap();
        majority.create(8, b"m0").unwrap();
        majority.write(8, b"m1").unwrap();
        let out = majority.read(8).unwrap();
        assert_eq!(out.version, 1, "quorum-time latest, not first responder");
        // One version-poll round + one data fetch call.
        assert_eq!(out.report.network_rounds(), 2);
        assert_eq!(out.report.messages(), majority.quorum() + 1);
    }

    #[test]
    fn missing_objects_are_distinguished_from_dead_clusters() {
        let cluster = Cluster::new(3);
        let rowa = RowaClient::new(3, LocalTransport::new(cluster.clone())).unwrap();
        let majority = MajorityClient::new(3, LocalTransport::new(cluster.clone())).unwrap();
        assert_eq!(rowa.read(99).unwrap_err(), ProtocolError::StripeMissing);
        assert_eq!(majority.read(99).unwrap_err(), ProtocolError::StripeMissing);
        for n in 0..3 {
            cluster.kill(n);
        }
        assert_eq!(
            rowa.read(99).unwrap_err(),
            ProtocolError::VersionCheckFailed
        );
        assert_eq!(
            majority.read(99).unwrap_err(),
            ProtocolError::VersionCheckFailed
        );
    }

    #[test]
    fn batched_ops_fuse_rounds() {
        let cluster = Cluster::new(5);
        let c = MajorityClient::new(5, LocalTransport::new(cluster.clone())).unwrap();
        let initial: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 16]).collect();
        let items: Vec<(u64, &[u8])> = (0..6u64)
            .map(|i| (i, initial[i as usize].as_slice()))
            .collect();
        let report = c.create_many(&items).unwrap();
        assert_eq!(report.network_rounds(), 1, "fused provisioning");

        let payloads: Vec<Vec<u8>> = (0..6).map(|i| vec![0x40 + i as u8; 16]).collect();
        let write_items: Vec<(u64, &[u8])> = (0..6u64)
            .map(|i| (i, payloads[i as usize].as_slice()))
            .collect();
        let batch = c.write_many(&write_items);
        assert!(batch.all_ok());
        // One fused poll + one fused fetch + one fused write — not 6×3.
        assert_eq!(batch.report.network_rounds(), 3);

        let ids: Vec<u64> = (0..6).collect();
        let reads = c.read_many(&ids);
        assert!(reads.all_ok());
        assert_eq!(reads.report.network_rounds(), 2, "fused poll + fetch");
        for (i, out) in reads.outcomes.iter().enumerate() {
            assert_eq!(out.as_ref().unwrap().bytes, payloads[i]);
            assert_eq!(out.as_ref().unwrap().version, 1);
        }

        let rowa = RowaClient::new(5, LocalTransport::new(cluster)).unwrap();
        rowa.create_many(&items).unwrap();
        let reads = rowa.read_many(&ids);
        assert!(reads.all_ok());
        assert_eq!(reads.report.network_rounds(), 1, "one fused ROWA round");
    }

    #[test]
    fn repair_supersedes_residue_instead_of_regressing_versions() {
        // A failed ROWA write leaves residue v1 on the live replicas;
        // with the writer's replica down, clients can observe v1. The
        // repair pass must never re-stamp a version below anything
        // observable — like the TRAP-ERC salvage, it installs the
        // settled value at a version superseding the residue.
        let cluster = Cluster::new(3);
        let c = RowaClient::new(3, LocalTransport::new(cluster.clone())).unwrap();
        c.create(0, b"old").unwrap(); // object 0 = (stripe 0, block 0)
        cluster.kill(0);
        let _ = c.write(0, b"new").unwrap_err(); // residue v1 on nodes 1, 2
        let observed = c.read(0).unwrap();
        assert_eq!(observed.version, 1, "residue is client-visible");
        cluster.revive(0);
        // The repair's own read serves stale node 0 (v0) — the settled
        // value — but must install it above the v1 residue.
        c.repair_stripe_objects(0).unwrap();
        let out = c.read(0).unwrap();
        assert_eq!(out.bytes, b"old", "settled on the quorum-read value");
        assert_eq!(out.version, 2, "residue superseded, never regressed");
    }

    #[test]
    fn duplicate_batch_addresses_rejected() {
        let cluster = Cluster::new(3);
        let c = RowaClient::new(3, LocalTransport::new(cluster)).unwrap();
        c.create(1, b"x").unwrap();
        let batch = c.write_many(&[(1, b"a".as_slice()), (1, b"b".as_slice())]);
        assert!(batch.outcomes[0].is_ok());
        assert!(matches!(
            batch.outcomes[1],
            Err(ProtocolError::Misconfigured(_))
        ));
    }

    #[test]
    fn constructor_bounds() {
        let t = LocalTransport::new(Cluster::new(2));
        assert!(RowaClient::new(3, t.clone()).is_err());
        assert!(MajorityClient::new(0, t.clone()).is_err());
        assert!(MajorityClient::new(2, t).is_ok());
    }
}
